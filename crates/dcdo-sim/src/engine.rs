//! The discrete-event engine: actors, timers, and the event loop.
//!
//! Every active entity of the simulated system — hosts, class objects,
//! binding agents, DCDOs, ICOs, managers, clients — is an [`Actor`] placed on
//! a [`NodeId`] of the simulated network. Actors interact only through
//! messages (routed through the [`Network`](crate::net::Network) model) and
//! timers. The engine is single-threaded and processes events in a total
//! order keyed by `(time, sequence-number)`, which together with the single
//! seeded RNG makes whole simulations deterministic.

use std::any::Any;
use std::fmt;

use dcdo_trace::{SendVerdict, SpanId, SpanKind, TraceLog};

use crate::metrics::Metrics;
use crate::net::{DeliveryPlan, LinkFault, NetConfig, Network, NodeId};
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};

/// Identifies an actor within one [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

impl ActorId {
    /// Creates an actor id from a raw index (normally produced by
    /// [`Simulation::spawn`]).
    pub const fn from_raw(raw: u32) -> Self {
        ActorId(raw)
    }

    /// Returns the raw index.
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor:{}", self.0)
    }
}

/// Identifies a scheduled timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A message type routable by the engine.
///
/// `wire_size` is the payload size the network model charges for; the
/// default of 64 bytes approximates an empty RPC header.
pub trait Payload: 'static {
    /// Returns the on-the-wire size of this message in bytes.
    fn wire_size(&self) -> u64 {
        64
    }

    /// Clones the message for duplicate delivery (fault injection).
    ///
    /// The default returns `None`, keeping `Clone` optional for payload
    /// types: the engine then models a planned duplicate as a single
    /// delivery at the later of the two arrival times. Types that are
    /// cheaply clonable (e.g. with `Arc`-shared bodies) should return
    /// `Some(clone)` to get true double delivery.
    fn clone_for_redelivery(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// An active entity of the simulation.
///
/// Actors own their state and react to messages and timers via the [`Ctx`]
/// handle, which exposes the clock, the network, randomness, metrics, and
/// actor management. `Actor` requires [`Any`] so drivers can downcast actors
/// for inspection between events.
pub trait Actor<M: Payload>: Any {
    /// Handles a message delivered to this actor.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ActorId, msg: M);

    /// Handles a timer scheduled by this actor. `token` is the value passed
    /// to [`Ctx::schedule_timer`].
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64) {
        let _ = (ctx, token);
    }

    /// A short human-readable name used in traces.
    fn name(&self) -> &str {
        "actor"
    }
}

enum EventKind<M> {
    Deliver {
        src: ActorId,
        dst: ActorId,
        msg: M,
        /// The span of the send that put this delivery in flight (only set
        /// while structured tracing is enabled).
        cause: Option<SpanId>,
    },
    Timer {
        dst: ActorId,
        id: TimerId,
        token: u64,
        /// The span of the event whose handler scheduled this timer (only
        /// set while structured tracing is enabled).
        cause: Option<SpanId>,
    },
}

/// The handle through which an actor (or a driver) interacts with the engine.
pub struct Ctx<'a, M: Payload> {
    sim: &'a mut Simulation<M>,
    self_id: ActorId,
    killed_self: bool,
}

impl<'a, M: Payload> Ctx<'a, M> {
    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.time
    }

    /// Returns the id of the actor being executed.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Returns the node this actor is placed on.
    pub fn node(&self) -> NodeId {
        self.sim.node_of(self.self_id)
    }

    /// Returns the node an arbitrary actor is placed on.
    pub fn node_of(&self, actor: ActorId) -> NodeId {
        self.sim.node_of(actor)
    }

    /// Sends `msg` to `dst` through the network model.
    ///
    /// Delivery time accounts for protocol overhead, serialization,
    /// latency, egress contention, and fault injection. Messages to dead
    /// actors become dead letters (counted in metrics, otherwise dropped) —
    /// this is how a stale physical address behaves.
    pub fn send(&mut self, dst: ActorId, msg: M) {
        self.sim.route(self.self_id, dst, msg);
    }

    /// Schedules a timer `delay` from now; `token` is handed back to
    /// [`Actor::on_timer`]. Returns an id usable with [`Ctx::cancel_timer`].
    pub fn schedule_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.sim.schedule_timer_for(self.self_id, delay, token)
    }

    /// Cancels a previously scheduled timer, removing it from the event
    /// queue immediately. Cancelling an already-fired or unknown timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.sim.queue.cancel_timer(id.0);
    }

    /// Returns the simulation's random-number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.sim.rng
    }

    /// Returns the simulation's metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.sim.metrics
    }

    /// Mints a fresh unique `u64` (for object ids, call ids, …).
    pub fn fresh_u64(&mut self) -> u64 {
        self.sim.fresh_u64()
    }

    /// Spawns a new actor on `node` and returns its id.
    pub fn spawn(&mut self, node: NodeId, actor: Box<dyn Actor<M>>) -> ActorId {
        self.sim.spawn_boxed(node, actor)
    }

    /// Kills an actor. Pending messages to it become dead letters. Killing
    /// the running actor defers removal until its handler returns.
    pub fn kill(&mut self, actor: ActorId) {
        if actor == self.self_id {
            self.killed_self = true;
        } else {
            self.sim.kill(actor);
        }
    }

    /// Returns `true` if the actor exists (has been spawned and not killed).
    pub fn is_alive(&self, actor: ActorId) -> bool {
        self.sim.is_alive(actor)
    }

    /// Crashes a node (see [`Simulation::crash_node`]). If the executing
    /// actor itself lives on the node, it dies too — removal is deferred
    /// until its handler returns, like [`Ctx::kill`].
    pub fn crash_node(&mut self, node: NodeId) -> usize {
        if self.sim.node_of(self.self_id) == node {
            self.killed_self = true;
        }
        self.sim.crash_node(node)
    }

    /// Restarts a crashed node (see [`Simulation::restart_node`]).
    pub fn restart_node(&mut self, node: NodeId) {
        self.sim.restart_node(node);
    }

    /// Returns `true` if the node is up.
    pub fn is_node_up(&self, node: NodeId) -> bool {
        self.sim.is_node_up(node)
    }

    /// Returns the network model mutably (partitions, link faults, stats).
    pub fn network_mut(&mut self) -> &mut Network {
        self.sim.network_mut()
    }

    /// Returns the network model.
    pub fn network(&self) -> &Network {
        self.sim.network()
    }

    /// Returns `true` if structured span tracing is recording. Callers with
    /// expensive span construction should gate on this.
    #[inline(always)]
    pub fn tracing_enabled(&self) -> bool {
        self.sim.spans.is_enabled()
    }

    /// Records a structured span at the current time on this actor's node,
    /// causally parented to the event being handled. Returns `None` when
    /// tracing is disabled.
    #[inline]
    pub fn emit_span(&mut self, kind: SpanKind) -> Option<SpanId> {
        if !self.sim.spans.is_enabled() {
            return None;
        }
        let at = self.sim.time.as_nanos();
        let node = self.sim.node_of(self.self_id).as_raw();
        let parent = self.sim.current_span;
        self.sim.spans.emit(at, node, parent, kind)
    }

    /// Records a structured span with an explicit causal parent (e.g. the
    /// span that opened a multi-event protocol exchange). Returns `None`
    /// when tracing is disabled.
    #[inline]
    pub fn emit_span_under(&mut self, parent: Option<SpanId>, kind: SpanKind) -> Option<SpanId> {
        if !self.sim.spans.is_enabled() {
            return None;
        }
        let at = self.sim.time.as_nanos();
        let node = self.sim.node_of(self.self_id).as_raw();
        self.sim.spans.emit(at, node, parent, kind)
    }

    /// The span of the event currently being dispatched, if traced.
    pub fn current_span(&self) -> Option<SpanId> {
        self.sim.current_span
    }

    /// Installs a partition (see [`Network::set_partition`]), recording the
    /// topology change in the structured trace.
    pub fn set_partition(&mut self, partition_groups: &[Vec<NodeId>]) {
        self.sim.set_partition(partition_groups);
    }

    /// Heals any installed partition (see [`Network::heal_partition`]),
    /// recording the topology change in the structured trace.
    pub fn heal_partition(&mut self) {
        self.sim.heal_partition();
    }

    /// Installs a directed link fault (see [`Network::set_link_fault`]),
    /// recording it in the structured trace.
    pub fn set_link_fault(&mut self, src: NodeId, dst: NodeId, fault: LinkFault) {
        self.sim.set_link_fault(src, dst, fault);
    }

    /// Clears a directed link fault (see [`Network::clear_link_fault`]),
    /// recording it in the structured trace.
    pub fn clear_link_fault(&mut self, src: NodeId, dst: NodeId) {
        self.sim.clear_link_fault(src, dst);
    }
}

enum Slot<M> {
    Occupied(Box<dyn Actor<M>>),
    Running,
    Vacant,
}

/// The discrete-event simulation engine.
///
/// # Examples
///
/// ```
/// use dcdo_sim::{Actor, ActorId, Ctx, NetConfig, NodeId, Payload, Simulation};
///
/// struct Ping;
/// struct Echo;
///
/// impl Payload for Ping {}
///
/// impl Actor<Ping> for Echo {
///     fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: ActorId, _msg: Ping) {
///         ctx.metrics().incr("echoed");
///         let _ = from;
///     }
/// }
///
/// let mut sim = Simulation::<Ping>::new(NetConfig::centurion(), 42);
/// let node = NodeId::from_raw(0);
/// let echo = sim.spawn(node, Echo);
/// sim.post(echo, echo, Ping);
/// sim.run_until_idle();
/// assert_eq!(sim.metrics().counter("echoed"), 1);
/// ```
pub struct Simulation<M: Payload> {
    time: SimTime,
    seq: u64,
    queue: EventQueue<EventKind<M>>,
    actors: Vec<Slot<M>>,
    placements: Vec<NodeId>,
    network: Network,
    rng: SimRng,
    metrics: Metrics,
    next_timer: u64,
    fresh: u64,
    events_processed: u64,
    trace: Trace,
    spans: TraceLog,
    /// The span of the event currently being dispatched — the causal parent
    /// of everything its handler emits. `None` outside dispatch or when
    /// tracing is disabled.
    current_span: Option<SpanId>,
}

impl<M: Payload> Simulation<M> {
    /// Creates a simulation with the given network configuration and RNG
    /// seed.
    pub fn new(net: NetConfig, seed: u64) -> Self {
        Simulation {
            time: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(),
            actors: Vec::new(),
            placements: Vec::new(),
            network: Network::new(net),
            rng: SimRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            next_timer: 0,
            fresh: 0,
            events_processed: 0,
            trace: Trace::new(),
            spans: TraceLog::new(),
            current_span: None,
        }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Returns the metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Returns the metrics registry mutably.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Returns the network model.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Returns the network model mutably (for fault-injection tests).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Returns the number of events processed so far.
    ///
    /// Cancelled timers are removed from the queue at cancellation time and
    /// never surface here.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Returns the number of pending events: live timers plus undelivered
    /// messages. Cancelled timers leave this count immediately.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Returns the high-water mark of [`pending_events`]
    /// (memory-boundedness witness for cancel-heavy workloads).
    ///
    /// [`pending_events`]: Simulation::pending_events
    pub fn peak_pending_events(&self) -> usize {
        self.queue.peak_len()
    }

    /// The execution trace (disabled by default; see [`Trace::enable`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the execution trace, e.g. to enable it.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The structured span log (disabled by default; see
    /// [`TraceLog::enable`]).
    pub fn spans(&self) -> &TraceLog {
        &self.spans
    }

    /// Mutable access to the structured span log, e.g. to enable it before a
    /// run or export it afterwards.
    pub fn spans_mut(&mut self) -> &mut TraceLog {
        &mut self.spans
    }

    /// Records a structured span at the current time with no node
    /// attribution (driver-side). Returns `None` when tracing is disabled.
    pub fn emit_span(&mut self, kind: SpanKind) -> Option<SpanId> {
        if !self.spans.is_enabled() {
            return None;
        }
        let at = self.time.as_nanos();
        self.spans
            .emit(at, dcdo_trace::NO_NODE, self.current_span, kind)
    }

    /// Installs a partition and records the topology change in the
    /// structured trace (prefer this over
    /// [`network_mut`](Simulation::network_mut) + `set_partition` so the
    /// trace-invariant checker can replay reachability).
    pub fn set_partition(&mut self, partition_groups: &[Vec<NodeId>]) {
        self.network.set_partition(partition_groups);
        if self.spans.is_enabled() {
            let groups = self.network.partition_groups().to_vec();
            self.emit_span(SpanKind::PartitionChanged { groups });
        }
    }

    /// Heals any installed partition, recording the change in the
    /// structured trace.
    pub fn heal_partition(&mut self) {
        self.network.heal_partition();
        self.emit_span(SpanKind::PartitionHealed);
    }

    /// Installs a directed link fault, recording it in the structured trace.
    pub fn set_link_fault(&mut self, src: NodeId, dst: NodeId, fault: LinkFault) {
        self.network.set_link_fault(src, dst, fault);
        self.emit_span(SpanKind::LinkFaultSet {
            src_node: src.as_raw(),
            dst_node: dst.as_raw(),
        });
    }

    /// Clears a directed link fault, recording it in the structured trace.
    pub fn clear_link_fault(&mut self, src: NodeId, dst: NodeId) {
        self.network.clear_link_fault(src, dst);
        self.emit_span(SpanKind::LinkFaultCleared {
            src_node: src.as_raw(),
            dst_node: dst.as_raw(),
        });
    }

    /// Mints a fresh unique `u64`.
    pub fn fresh_u64(&mut self) -> u64 {
        self.fresh += 1;
        self.fresh
    }

    /// Spawns an actor on `node` and returns its id.
    pub fn spawn(&mut self, node: NodeId, actor: impl Actor<M>) -> ActorId {
        self.spawn_boxed(node, Box::new(actor))
    }

    /// Spawns a boxed actor on `node` and returns its id.
    pub fn spawn_boxed(&mut self, node: NodeId, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(Slot::Occupied(actor));
        self.placements.push(node);
        self.trace
            .record(self.time, TraceEvent::Spawned { actor: id, node });
        if self.spans.is_enabled() {
            self.spans.emit(
                self.time.as_nanos(),
                node.as_raw(),
                self.current_span,
                SpanKind::ActorSpawned {
                    actor: id.as_raw(),
                    node: node.as_raw(),
                },
            );
        }
        id
    }

    /// Kills an actor; subsequent messages to it are dead letters.
    pub fn kill(&mut self, actor: ActorId) {
        if let Some(slot) = self.actors.get_mut(actor.index()) {
            *slot = Slot::Vacant;
            self.trace.record(self.time, TraceEvent::Killed { actor });
            if self.spans.is_enabled() {
                self.spans.emit(
                    self.time.as_nanos(),
                    self.placements[actor.index()].as_raw(),
                    self.current_span,
                    SpanKind::ActorKilled {
                        actor: actor.as_raw(),
                    },
                );
            }
        }
    }

    /// Returns `true` if the actor is alive.
    pub fn is_alive(&self, actor: ActorId) -> bool {
        matches!(
            self.actors.get(actor.index()),
            Some(Slot::Occupied(_) | Slot::Running)
        )
    }

    /// Returns the node an actor is placed on.
    ///
    /// # Panics
    ///
    /// Panics if the actor id was never spawned.
    pub fn node_of(&self, actor: ActorId) -> NodeId {
        self.placements[actor.index()]
    }

    /// Downcasts an actor to a concrete type for inspection.
    pub fn actor<T: Actor<M>>(&self, id: ActorId) -> Option<&T> {
        match self.actors.get(id.index())? {
            Slot::Occupied(a) => (a.as_ref() as &dyn Any).downcast_ref::<T>(),
            _ => None,
        }
    }

    /// Downcasts an actor to a concrete type for mutation between events.
    pub fn actor_mut<T: Actor<M>>(&mut self, id: ActorId) -> Option<&mut T> {
        match self.actors.get_mut(id.index())? {
            Slot::Occupied(a) => (a.as_mut() as &mut dyn Any).downcast_mut::<T>(),
            _ => None,
        }
    }

    /// Runs `f` against a concrete actor with a live [`Ctx`], letting drivers
    /// initiate activity (e.g. start a client) at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the actor is dead or not of type `T`.
    pub fn with_actor<T: Actor<M>, R>(
        &mut self,
        id: ActorId,
        f: impl FnOnce(&mut T, &mut Ctx<'_, M>) -> R,
    ) -> R {
        let slot = std::mem::replace(&mut self.actors[id.index()], Slot::Running);
        let Slot::Occupied(mut actor) = slot else {
            panic!("with_actor: {id} is not alive");
        };
        let (out, killed) = {
            let mut ctx = Ctx {
                sim: self,
                self_id: id,
                killed_self: false,
            };
            let t = (actor.as_mut() as &mut dyn Any)
                .downcast_mut::<T>()
                .expect("with_actor: actor has a different concrete type");
            let out = f(t, &mut ctx);
            (out, ctx.killed_self)
        };
        self.actors[id.index()] = if killed {
            Slot::Vacant
        } else {
            Slot::Occupied(actor)
        };
        out
    }

    /// Posts a message from `src` to `dst` through the network at the
    /// current time (driver-side injection).
    pub fn post(&mut self, src: ActorId, dst: ActorId, msg: M) {
        self.route(src, dst, msg);
    }

    /// Schedules a timer for an actor (driver-side).
    pub fn schedule_timer_for(
        &mut self,
        actor: ActorId,
        delay: SimDuration,
        token: u64,
    ) -> TimerId {
        self.next_timer += 1;
        let id = TimerId(self.next_timer);
        let at = self.time + delay;
        // `current_span` is only ever set while tracing is enabled, so this
        // costs nothing in the disabled case.
        let cause = self.current_span;
        self.push(
            at,
            EventKind::Timer {
                dst: actor,
                id,
                token,
                cause,
            },
        );
        id
    }

    /// Cancels a timer (driver-side). The entry is removed from the queue
    /// immediately; a cancelled or already-fired timer id is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.queue.cancel_timer(id.0);
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        self.seq += 1;
        let timer_id = match &kind {
            EventKind::Timer { id, .. } => Some(id.0),
            EventKind::Deliver { .. } => None,
        };
        match timer_id {
            // Timers always go through the heap — even zero-delay ones —
            // so every timer stays cancellable until it fires.
            Some(id) => self.queue.push_timer(at, self.seq, id, kind),
            None if at == self.time => self.queue.push_same_tick(at, self.seq, kind),
            None => self.queue.push(at, self.seq, kind),
        }
    }

    fn route(&mut self, src: ActorId, dst: ActorId, msg: M) {
        let bytes = msg.wire_size();
        let (src_node, dst_node) = (self.node_of(src), self.node_of(dst));
        let now = self.time;
        let plan = self
            .network
            .plan(now, src_node, dst_node, bytes, &mut self.rng);
        let cause = if self.spans.is_enabled() {
            let verdict = match plan {
                DeliveryPlan::Deliver(_) => SendVerdict::Sent,
                DeliveryPlan::DeliverTwice(..) => SendVerdict::SentTwice,
                DeliveryPlan::Lost => SendVerdict::Lost,
                DeliveryPlan::Unreachable => SendVerdict::Unreachable,
            };
            self.spans.emit(
                now.as_nanos(),
                src_node.as_raw(),
                self.current_span,
                SpanKind::MsgSent {
                    src: src.as_raw(),
                    dst: dst.as_raw(),
                    src_node: src_node.as_raw(),
                    dst_node: dst_node.as_raw(),
                    verdict,
                    bytes,
                },
            )
        } else {
            None
        };
        match plan {
            DeliveryPlan::Deliver(at) => self.push(
                at,
                EventKind::Deliver {
                    src,
                    dst,
                    msg,
                    cause,
                },
            ),
            DeliveryPlan::DeliverTwice(first, second) => {
                self.metrics.incr("sim.duplicates_planned");
                match msg.clone_for_redelivery() {
                    // True double delivery for payloads that opt in.
                    Some(dup) => {
                        self.push(
                            first,
                            EventKind::Deliver {
                                src,
                                dst,
                                msg,
                                cause,
                            },
                        );
                        self.push(
                            second,
                            EventKind::Deliver {
                                src,
                                dst,
                                msg: dup,
                                cause,
                            },
                        );
                    }
                    // Non-clonable payloads degrade to the old model: one
                    // delivery at the later of the two arrival times. The
                    // dropped second delivery is counted, not silent.
                    None => {
                        self.metrics.incr("sim.duplicates_degraded");
                        self.network.note_duplicate_degraded();
                        self.push(
                            second,
                            EventKind::Deliver {
                                src,
                                dst,
                                msg,
                                cause,
                            },
                        );
                    }
                }
            }
            DeliveryPlan::Lost => {
                self.metrics.incr("sim.messages_lost");
            }
            DeliveryPlan::Unreachable => {
                self.metrics.incr("sim.unreachable_drops");
                self.trace
                    .record(self.time, TraceEvent::Unreachable { src, dst });
            }
        }
    }

    /// Crashes a node: marks it down in the network (traffic to or from it
    /// is dropped as unreachable), kills every actor placed on it, and
    /// cancels all their pending timers so nothing owned by a dead actor
    /// ever fires. Messages already in flight toward the node dead-letter
    /// on arrival. Returns the number of actors killed.
    ///
    /// Crashing an already-down node is a no-op. The currently executing
    /// actor (if any) is not touched — use [`Ctx::crash_node`] from inside
    /// a handler, which also handles self-destruction.
    pub fn crash_node(&mut self, node: NodeId) -> usize {
        if !self.network.is_node_up(node) {
            return 0;
        }
        self.network.set_node_down(node);
        self.metrics.incr("sim.node_crashes");
        self.trace.record(self.time, TraceEvent::NodeDown { node });
        let crash_span = if self.spans.is_enabled() {
            self.spans.emit(
                self.time.as_nanos(),
                node.as_raw(),
                self.current_span,
                SpanKind::NodeCrashed {
                    node: node.as_raw(),
                },
            )
        } else {
            None
        };
        let mut killed = 0;
        for idx in 0..self.actors.len() {
            if self.placements[idx] == node && matches!(self.actors[idx], Slot::Occupied(_)) {
                self.actors[idx] = Slot::Vacant;
                self.trace.record(
                    self.time,
                    TraceEvent::Killed {
                        actor: ActorId(idx as u32),
                    },
                );
                if self.spans.is_enabled() {
                    self.spans.emit(
                        self.time.as_nanos(),
                        node.as_raw(),
                        crash_span,
                        SpanKind::ActorKilled { actor: idx as u32 },
                    );
                }
                killed += 1;
            }
        }
        let placements = &self.placements;
        let cancelled = self.queue.cancel_timers_where(
            |kind| matches!(kind, EventKind::Timer { dst, .. } if placements[dst.index()] == node),
        );
        self.metrics
            .add("sim.timers_cancelled_by_crash", cancelled as u64);
        killed
    }

    /// Brings a crashed node back up: traffic can reach it again. Actors
    /// that died in the crash stay dead — recovery layers spawn fresh ones.
    /// Restarting a node that is up is a no-op.
    pub fn restart_node(&mut self, node: NodeId) {
        if self.network.is_node_up(node) {
            return;
        }
        self.network.set_node_up(node);
        self.metrics.incr("sim.node_restarts");
        self.trace.record(self.time, TraceEvent::NodeUp { node });
        if self.spans.is_enabled() {
            self.spans.emit(
                self.time.as_nanos(),
                node.as_raw(),
                self.current_span,
                SpanKind::NodeRestarted {
                    node: node.as_raw(),
                },
            );
        }
    }

    /// Returns `true` if the node is up (never crashed, or restarted).
    pub fn is_node_up(&self, node: NodeId) -> bool {
        self.network.is_node_up(node)
    }

    /// Returns the live actors placed on `node`, in spawn order.
    pub fn actors_on(&self, node: NodeId) -> Vec<ActorId> {
        (0..self.actors.len())
            .filter(|&idx| self.placements[idx] == node && self.is_alive(ActorId(idx as u32)))
            .map(|idx| ActorId(idx as u32))
            .collect()
    }

    /// Processes the next event. Returns `false` if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, kind)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.time, "time cannot go backwards");
        self.time = at;
        self.events_processed += 1;
        match kind {
            EventKind::Deliver {
                src,
                dst,
                msg,
                cause,
            } => self.dispatch_message(src, dst, msg, cause),
            EventKind::Timer {
                dst, token, cause, ..
            } => self.dispatch_timer(dst, token, cause),
        }
        true
    }

    fn dispatch_message(&mut self, src: ActorId, dst: ActorId, msg: M, cause: Option<SpanId>) {
        let dst_node = self
            .placements
            .get(dst.index())
            .copied()
            .unwrap_or(NodeId::from_raw(dcdo_trace::NO_NODE));
        let Some(slot) = self.actors.get_mut(dst.index()) else {
            self.metrics.incr("sim.dead_letters");
            self.trace
                .record(self.time, TraceEvent::DeadLetter { src, dst });
            return;
        };
        let slot = std::mem::replace(slot, Slot::Running);
        let Slot::Occupied(mut actor) = slot else {
            self.actors[dst.index()] = Slot::Vacant;
            self.metrics.incr("sim.dead_letters");
            self.trace
                .record(self.time, TraceEvent::DeadLetter { src, dst });
            if self.spans.is_enabled() {
                self.spans.emit(
                    self.time.as_nanos(),
                    dst_node.as_raw(),
                    cause,
                    SpanKind::MsgDeadLetter {
                        src: src.as_raw(),
                        dst: dst.as_raw(),
                        dst_node: dst_node.as_raw(),
                    },
                );
            }
            return;
        };
        self.trace
            .record(self.time, TraceEvent::Delivered { src, dst });
        if self.spans.is_enabled() {
            self.current_span = self.spans.emit(
                self.time.as_nanos(),
                dst_node.as_raw(),
                cause,
                SpanKind::MsgDelivered {
                    src: src.as_raw(),
                    dst: dst.as_raw(),
                    dst_node: dst_node.as_raw(),
                },
            );
        }
        let killed;
        {
            let mut ctx = Ctx {
                sim: self,
                self_id: dst,
                killed_self: false,
            };
            actor.on_message(&mut ctx, src, msg);
            killed = ctx.killed_self;
        }
        self.current_span = None;
        self.actors[dst.index()] = if killed {
            Slot::Vacant
        } else {
            Slot::Occupied(actor)
        };
    }

    fn dispatch_timer(&mut self, dst: ActorId, token: u64, cause: Option<SpanId>) {
        self.trace
            .record(self.time, TraceEvent::TimerFired { actor: dst, token });
        let Some(slot) = self.actors.get_mut(dst.index()) else {
            return;
        };
        let slot = std::mem::replace(slot, Slot::Running);
        let Slot::Occupied(mut actor) = slot else {
            self.actors[dst.index()] = Slot::Vacant;
            return;
        };
        if self.spans.is_enabled() {
            self.current_span = self.spans.emit(
                self.time.as_nanos(),
                self.placements[dst.index()].as_raw(),
                cause,
                SpanKind::TimerFired {
                    actor: dst.as_raw(),
                    token,
                },
            );
        }
        let killed;
        {
            let mut ctx = Ctx {
                sim: self,
                self_id: dst,
                killed_self: false,
            };
            actor.on_timer(&mut ctx, token);
            killed = ctx.killed_self;
        }
        self.current_span = None;
        self.actors[dst.index()] = if killed {
            Slot::Vacant
        } else {
            Slot::Occupied(actor)
        };
    }

    /// Runs until the queue is empty. Returns the number of events
    /// processed.
    ///
    /// # Panics
    ///
    /// Panics after 100 million events as a runaway-loop backstop.
    pub fn run_until_idle(&mut self) -> u64 {
        self.run_with_budget(100_000_000)
    }

    /// Runs until the queue is empty or `budget` events have been processed;
    /// returns the number processed.
    ///
    /// # Panics
    ///
    /// Panics if the budget is exhausted with events still pending — a
    /// deterministic simulation that exceeds its budget is a bug, not load.
    pub fn run_with_budget(&mut self, budget: u64) -> u64 {
        let mut n = 0;
        while n < budget {
            if !self.step() {
                return n;
            }
            n += 1;
        }
        if self.queue.is_empty() {
            n
        } else {
            panic!("simulation exceeded event budget of {budget}");
        }
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue empties. Returns events
    /// processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some((at, _)) = self.queue.peek_key() {
            if at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        if self.time < deadline {
            self.time = deadline;
        }
        n
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.time + d;
        self.run_until(deadline)
    }
}

impl<M: Payload> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("time", &self.time)
            .field("actors", &self.actors.len())
            .field("pending_events", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }

    impl Payload for TestMsg {
        fn wire_size(&self) -> u64 {
            32
        }
    }

    /// Replies to every Ping with a Pong carrying the same tag.
    struct Responder;

    impl Actor<TestMsg> for Responder {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, from: ActorId, msg: TestMsg) {
            if let TestMsg::Ping(tag) = msg {
                ctx.send(from, TestMsg::Pong(tag));
            }
        }

        fn name(&self) -> &str {
            "responder"
        }
    }

    /// Records received pongs and the times they arrived.
    #[derive(Default)]
    struct Collector {
        pongs: Vec<(u32, SimTime)>,
    }

    impl Actor<TestMsg> for Collector {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: ActorId, msg: TestMsg) {
            if let TestMsg::Pong(tag) = msg {
                let now = ctx.now();
                self.pongs.push((tag, now));
            }
        }
    }

    fn two_node_sim() -> (Simulation<TestMsg>, ActorId, ActorId) {
        let mut sim = Simulation::new(NetConfig::centurion(), 1);
        let client = sim.spawn(NodeId::from_raw(0), Collector::default());
        let server = sim.spawn(NodeId::from_raw(1), Responder);
        (sim, client, server)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, client, server) = two_node_sim();
        sim.post(client, server, TestMsg::Ping(7));
        sim.run_until_idle();
        let c = sim.actor::<Collector>(client).expect("alive");
        assert_eq!(c.pongs.len(), 1);
        assert_eq!(c.pongs[0].0, 7);
        assert!(c.pongs[0].1 > SimTime::ZERO);
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let (mut sim, client, server) = two_node_sim();
        for tag in 0..10 {
            sim.post(client, server, TestMsg::Ping(tag));
        }
        sim.run_until_idle();
        let c = sim.actor::<Collector>(client).expect("alive");
        let tags: Vec<u32> = c.pongs.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
        let times: Vec<SimTime> = c.pongs.iter().map(|(_, t)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dead_actor_messages_become_dead_letters() {
        let (mut sim, client, server) = two_node_sim();
        sim.kill(server);
        sim.post(client, server, TestMsg::Ping(1));
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("sim.dead_letters"), 1);
        let c = sim.actor::<Collector>(client).expect("alive");
        assert!(c.pongs.is_empty());
    }

    /// An actor that kills itself upon the first message.
    struct SelfDestruct;

    impl Actor<TestMsg> for SelfDestruct {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: ActorId, _msg: TestMsg) {
            let me = ctx.self_id();
            ctx.kill(me);
        }
    }

    #[test]
    fn self_kill_takes_effect_after_handler() {
        let mut sim = Simulation::new(NetConfig::instant(), 2);
        let a = sim.spawn(NodeId::from_raw(0), SelfDestruct);
        let b = sim.spawn(NodeId::from_raw(0), Collector::default());
        sim.post(b, a, TestMsg::Ping(0));
        sim.post(b, a, TestMsg::Ping(1));
        sim.run_until_idle();
        assert!(!sim.is_alive(a));
        assert_eq!(sim.metrics().counter("sim.dead_letters"), 1);
    }

    /// Fires a timer chain: each on_timer schedules the next until 5 fired.
    #[derive(Default)]
    struct TimerChain {
        fired: Vec<(u64, SimTime)>,
    }

    impl Actor<TestMsg> for TimerChain {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: ActorId, _msg: TestMsg) {
            ctx.schedule_timer(SimDuration::from_millis(10), 0);
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, token: u64) {
            let now = ctx.now();
            self.fired.push((token, now));
            if token < 4 {
                ctx.schedule_timer(SimDuration::from_millis(10), token + 1);
            }
        }
    }

    #[test]
    fn timer_chains_advance_the_clock() {
        let mut sim = Simulation::new(NetConfig::instant(), 3);
        let a = sim.spawn(NodeId::from_raw(0), TimerChain::default());
        sim.post(a, a, TestMsg::Ping(0));
        sim.run_until_idle();
        let chain = sim.actor::<TimerChain>(a).expect("alive");
        assert_eq!(chain.fired.len(), 5);
        assert_eq!(
            chain.fired.last().expect("five").1,
            SimTime::ZERO + SimDuration::from_millis(50)
        );
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut sim = Simulation::new(NetConfig::instant(), 4);
        let a = sim.spawn(NodeId::from_raw(0), TimerChain::default());
        let id = sim.schedule_timer_for(a, SimDuration::from_secs(1), 99);
        sim.with_actor::<TimerChain, _>(a, |_, ctx| ctx.cancel_timer(id));
        sim.run_until_idle();
        let chain = sim.actor::<TimerChain>(a).expect("alive");
        assert!(chain.fired.is_empty());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(NetConfig::instant(), 5);
        let a = sim.spawn(NodeId::from_raw(0), TimerChain::default());
        sim.post(a, a, TestMsg::Ping(0));
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(25));
        let fired = sim.actor::<TimerChain>(a).expect("alive").fired.len();
        assert_eq!(fired, 2, "only timers at 10ms and 20ms fire by 25ms");
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(25));
        sim.run_until_idle();
        assert_eq!(sim.actor::<TimerChain>(a).expect("alive").fired.len(), 5);
    }

    #[test]
    fn with_actor_returns_closure_result() {
        let mut sim = Simulation::new(NetConfig::instant(), 6);
        let a = sim.spawn(NodeId::from_raw(0), Collector::default());
        let n = sim.with_actor::<Collector, _>(a, |c, _ctx| c.pongs.len());
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "not alive")]
    fn with_actor_panics_on_dead_actor() {
        let mut sim = Simulation::new(NetConfig::instant(), 7);
        let a = sim.spawn(NodeId::from_raw(0), Collector::default());
        sim.kill(a);
        sim.with_actor::<Collector, _>(a, |_, _| ());
    }

    #[test]
    fn fresh_u64_is_monotonic() {
        let mut sim = Simulation::<TestMsg>::new(NetConfig::instant(), 8);
        let a = sim.fresh_u64();
        let b = sim.fresh_u64();
        assert!(b > a);
    }

    #[test]
    fn crash_kills_actors_cancels_timers_and_blocks_traffic() {
        let mut sim = Simulation::new(NetConfig::centurion(), 9);
        let n0 = NodeId::from_raw(0);
        let n1 = NodeId::from_raw(1);
        let client = sim.spawn(n0, Collector::default());
        let server = sim.spawn(n1, Responder);
        let chain = sim.spawn(n1, TimerChain::default());
        sim.post(chain, chain, TestMsg::Ping(0));
        sim.run_for(SimDuration::from_millis(1));
        assert!(sim.pending_events() > 0, "a chain timer is pending");

        let killed = sim.crash_node(n1);
        assert_eq!(killed, 2);
        assert!(!sim.is_alive(server));
        assert!(!sim.is_alive(chain));
        assert!(sim.is_alive(client));
        assert!(!sim.is_node_up(n1));
        assert_eq!(
            sim.pending_events(),
            0,
            "dead actors' timers are swept from the queue"
        );
        assert_eq!(sim.metrics().counter("sim.timers_cancelled_by_crash"), 1);

        // New traffic toward the dead node is dropped as unreachable, with
        // a counted reason — not a dead letter (it never reached the node).
        sim.post(client, server, TestMsg::Ping(1));
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("sim.unreachable_drops"), 1);
        assert_eq!(sim.network().stats().unreachable, 1);
        assert_eq!(sim.metrics().counter("sim.dead_letters"), 0);

        // Restart: the node is reachable again, but old actors stay dead —
        // deliveries to them now dead-letter.
        sim.restart_node(n1);
        assert!(sim.is_node_up(n1));
        sim.post(client, server, TestMsg::Ping(2));
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("sim.dead_letters"), 1);

        // A replacement spawned after the restart serves traffic.
        let server2 = sim.spawn(n1, Responder);
        sim.post(client, server2, TestMsg::Ping(3));
        sim.run_until_idle();
        let c = sim.actor::<Collector>(client).expect("alive");
        assert_eq!(c.pongs.len(), 1);
        assert_eq!(sim.actors_on(n1), vec![server2]);
    }

    #[test]
    fn crash_of_a_down_node_is_a_noop() {
        let mut sim = Simulation::<TestMsg>::new(NetConfig::instant(), 10);
        let n = NodeId::from_raw(3);
        sim.spawn(n, Responder);
        assert_eq!(sim.crash_node(n), 1);
        assert_eq!(sim.crash_node(n), 0, "second crash is a no-op");
        assert_eq!(sim.metrics().counter("sim.node_crashes"), 1);
        sim.restart_node(n);
        sim.restart_node(n);
        assert_eq!(sim.metrics().counter("sim.node_restarts"), 1);
    }

    #[test]
    fn partitioned_nodes_drop_cross_group_traffic() {
        let mut sim = Simulation::new(NetConfig::centurion(), 11);
        let a = sim.spawn(NodeId::from_raw(0), Collector::default());
        let b = sim.spawn(NodeId::from_raw(1), Responder);
        sim.network_mut()
            .set_partition(&[vec![NodeId::from_raw(0)], vec![NodeId::from_raw(1)]]);
        sim.post(a, b, TestMsg::Ping(1));
        sim.run_until_idle();
        assert!(sim.actor::<Collector>(a).expect("alive").pongs.is_empty());
        assert_eq!(sim.metrics().counter("sim.unreachable_drops"), 1);
        sim.network_mut().heal_partition();
        sim.post(a, b, TestMsg::Ping(2));
        sim.run_until_idle();
        assert_eq!(sim.actor::<Collector>(a).expect("alive").pongs.len(), 1);
    }

    #[test]
    fn degraded_duplicates_are_counted() {
        // TestMsg does not implement clone_for_redelivery, so a planned
        // duplicate degrades to one late delivery — and is counted.
        let mut cfg = NetConfig::centurion();
        cfg.duplicate_rate = 1.0;
        let mut sim = Simulation::new(cfg, 12);
        let a = sim.spawn(NodeId::from_raw(0), Collector::default());
        let b = sim.spawn(NodeId::from_raw(1), Collector::default());
        sim.post(a, b, TestMsg::Pong(1));
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("sim.duplicates_planned"), 1);
        assert_eq!(sim.metrics().counter("sim.duplicates_degraded"), 1);
        let stats = sim.network().stats();
        assert_eq!(stats.duplicates_planned, 1);
        assert_eq!(stats.duplicates_degraded, 1);
        assert_eq!(
            sim.actor::<Collector>(b).expect("alive").pongs.len(),
            1,
            "degraded duplicate still delivers exactly once"
        );
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let run = |seed: u64| -> Vec<(u32, SimTime)> {
            let mut sim = Simulation::new(NetConfig::centurion(), seed);
            let client = sim.spawn(NodeId::from_raw(0), Collector::default());
            let server = sim.spawn(NodeId::from_raw(1), Responder);
            for tag in 0..20 {
                sim.post(client, server, TestMsg::Ping(tag));
            }
            sim.run_until_idle();
            sim.actor::<Collector>(client).expect("alive").pongs.clone()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(
            run(42),
            run(43),
            "different seeds should jitter differently"
        );
    }
}

//! The discrete-event engine: actors, timers, and the event loop.
//!
//! Every active entity of the simulated system — hosts, class objects,
//! binding agents, DCDOs, ICOs, managers, clients — is an [`Actor`] placed on
//! a [`NodeId`] of the simulated network. Actors interact only through
//! messages (routed through the [`Network`](crate::net::Network) model) and
//! timers.
//!
//! Events execute in a total order keyed by `(time, lane, lane-seq)`, where
//! a *lane* is one execution context: lane 0 is the driver, lane `u + 1` is
//! the handlers of node `u`. Every name the engine mints — event sequence
//! numbers, timer ids, fresh `u64`s, span ids, actor ids, RNG draws — comes
//! from a per-lane counter or a per-lane RNG stream split deterministically
//! from the run seed. Because a lane's counters advance only with that
//! lane's own activity, the whole keyed event history is independent of
//! *which thread* executed an event, which is what lets the sharded
//! parallel engine (see [`crate::parallel`]) reproduce byte-identical
//! traces at any worker count. A `Simulation` doubles as the shard unit:
//! the parallel runner splits one simulation into per-shard sub-simulations
//! that each own a disjoint set of nodes, runs them a bounded lookahead
//! window ahead, and merges their buffered traces back by event key.
use std::any::Any;
use std::collections::HashSet;
use std::fmt;

use dcdo_trace::{FlightFrame, FlightRecorder, SendVerdict, SpanEvent, SpanId, SpanKind, TraceLog};

use crate::metrics::Metrics;
use crate::net::{DeliveryPlan, LinkFault, NetConfig, Network, NodeId};
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::timeline::Timeline;
use crate::trace::{Trace, TraceEntry, TraceEvent};

/// Bit position splitting a lane from a per-lane counter in 64-bit ids.
pub(crate) const LANE_SHIFT: u32 = 48;

/// `splitmix64` finalizer — mixes a lane index into the run seed to derive
/// statistically independent per-lane RNG streams.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of one lane, a pure function of the run seed and the lane.
fn lane_seed(run_seed: u64, lane: u16) -> u64 {
    splitmix64(run_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(lane as u64 + 1))
}

/// Salt separating flight-recorder head-sampling streams from the lanes'
/// main RNG streams: sampling draws come from `lane_seed(run_seed ^
/// FLIGHT_SALT, lane)`, so enabling sampling cannot shift any draw the
/// simulated system itself observes.
const FLIGHT_SALT: u64 = 0x0F11_6817_0DEC_0DE5;

/// Identifies an actor within one [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(u32);

impl ActorId {
    /// Creates an actor id from a raw value (normally produced by
    /// [`Simulation::spawn`]).
    pub const fn from_raw(raw: u32) -> Self {
        ActorId(raw)
    }

    /// Returns the raw value. The high 16 bits are the lane that allocated
    /// the id (0 for driver-side spawns), the low 16 bits its per-lane
    /// spawn counter — driver-spawned actors keep the dense ids 0, 1, 2, …
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    const fn from_parts(lane: u16, ctr: u16) -> Self {
        ActorId(((lane as u32) << 16) | ctr as u32)
    }

    fn lane_index(self) -> usize {
        (self.0 >> 16) as usize
    }

    fn ctr_index(self) -> usize {
        (self.0 & 0xFFFF) as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor:{}", self.0)
    }
}

/// Identifies a scheduled timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// A message type routable by the engine.
///
/// `wire_size` is the payload size the network model charges for; the
/// default of 64 bytes approximates an empty RPC header. `Send` is required
/// so simulations can be executed by the sharded parallel runner.
pub trait Payload: 'static + Send {
    /// Returns the on-the-wire size of this message in bytes.
    fn wire_size(&self) -> u64 {
        64
    }

    /// Clones the message for duplicate delivery (fault injection).
    ///
    /// The default returns `None`, keeping `Clone` optional for payload
    /// types: the engine then models a planned duplicate as a single
    /// delivery at the later of the two arrival times. Types that are
    /// cheaply clonable (e.g. with `Arc`-shared bodies) should return
    /// `Some(clone)` to get true double delivery.
    fn clone_for_redelivery(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// An active entity of the simulation.
///
/// Actors own their state and react to messages and timers via the [`Ctx`]
/// handle, which exposes the clock, the network, randomness, metrics, and
/// actor management. `Actor` requires [`Any`] so drivers can downcast actors
/// for inspection between events, and `Send` so a shard (and the actors it
/// owns) can be handed to a worker thread.
pub trait Actor<M: Payload>: Any + Send {
    /// Handles a message delivered to this actor.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ActorId, msg: M);

    /// Handles a timer scheduled by this actor. `token` is the value passed
    /// to [`Ctx::schedule_timer`].
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, token: u64) {
        let _ = (ctx, token);
    }

    /// A short human-readable name used in traces.
    fn name(&self) -> &str {
        "actor"
    }
}

pub(crate) enum EventKind<M> {
    Deliver {
        src: ActorId,
        dst: ActorId,
        msg: M,
        /// The span of the send that put this delivery in flight (only set
        /// while structured tracing is enabled).
        cause: Option<SpanId>,
    },
    Timer {
        dst: ActorId,
        id: TimerId,
        token: u64,
        /// The span of the event whose handler scheduled this timer (only
        /// set while structured tracing is enabled).
        cause: Option<SpanId>,
    },
}

impl<M> EventKind<M> {
    fn dst(&self) -> ActorId {
        match self {
            EventKind::Deliver { dst, .. } | EventKind::Timer { dst, .. } => *dst,
        }
    }
}

/// Mutable name-allocation state of one lane: its RNG stream and the
/// counters behind event keys, timer ids, fresh `u64`s, span ids, and actor
/// ids. Created lazily from [`lane_seed`] the first time a lane acts, so a
/// lane's history is identical whether or not other lanes exist.
pub(crate) struct LaneState {
    rng: SimRng,
    /// Event sub-key counter (48 bits used).
    seq: u64,
    next_timer: u64,
    fresh: u64,
    span_ctr: u64,
    actor_ctr: u32,
    /// Flight-recorder head-sampling stream, split from a salted run seed
    /// so sampling draws never perturb the lane's main RNG stream. Created
    /// only when sampling is actually configured (`flight_sample_n > 1`),
    /// so the default always-on path makes no draws at all.
    flight_rng: Option<SimRng>,
}

impl LaneState {
    fn new(seed: u64) -> Self {
        LaneState {
            rng: SimRng::seed_from_u64(seed),
            seq: 0,
            next_timer: 0,
            fresh: 0,
            span_ctr: 0,
            actor_ctr: 0,
            flight_rng: None,
        }
    }
}

/// Which slice of the node space a shard sub-simulation owns.
#[derive(Clone, Copy)]
pub(crate) struct ShardRole {
    idx: u32,
    nshards: u32,
}

/// The handle through which an actor (or a driver) interacts with the engine.
pub struct Ctx<'a, M: Payload> {
    sim: &'a mut Simulation<M>,
    self_id: ActorId,
    killed_self: bool,
}

impl<'a, M: Payload> Ctx<'a, M> {
    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.time
    }

    /// Returns the id of the actor being executed.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Returns the node this actor is placed on.
    pub fn node(&self) -> NodeId {
        self.sim.node_of(self.self_id)
    }

    /// Returns the node an arbitrary actor is placed on.
    pub fn node_of(&self, actor: ActorId) -> NodeId {
        self.sim.node_of(actor)
    }

    /// Sends `msg` to `dst` through the network model.
    ///
    /// Delivery time accounts for protocol overhead, serialization,
    /// latency, egress contention, and fault injection. Messages to dead
    /// actors become dead letters (counted in metrics, otherwise dropped) —
    /// this is how a stale physical address behaves.
    pub fn send(&mut self, dst: ActorId, msg: M) {
        self.sim.route(self.self_id, dst, msg);
    }

    /// Schedules a timer `delay` from now; `token` is handed back to
    /// [`Actor::on_timer`]. Returns an id usable with [`Ctx::cancel_timer`].
    pub fn schedule_timer(&mut self, delay: SimDuration, token: u64) -> TimerId {
        self.sim.schedule_timer_for(self.self_id, delay, token)
    }

    /// Cancels a previously scheduled timer, removing it from the event
    /// queue immediately. Cancelling an already-fired or unknown timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.sim.queue.cancel_timer(id.0);
    }

    /// Returns the RNG stream of the executing lane (this actor's node).
    pub fn rng(&mut self) -> &mut SimRng {
        let lane = self.sim.cur_lane;
        &mut self.sim.lane_state(lane).rng
    }

    /// Returns the simulation's metrics registry.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.sim.metrics
    }

    /// Mints a fresh unique `u64` (for object ids, call ids, …).
    pub fn fresh_u64(&mut self) -> u64 {
        self.sim.fresh_u64()
    }

    /// Spawns a new actor on `node` and returns its id.
    pub fn spawn(&mut self, node: NodeId, actor: Box<dyn Actor<M>>) -> ActorId {
        self.sim.spawn_boxed(node, actor)
    }

    /// Kills an actor. Pending messages to it become dead letters. Killing
    /// the running actor defers removal until its handler returns.
    pub fn kill(&mut self, actor: ActorId) {
        if actor == self.self_id {
            self.killed_self = true;
        } else {
            self.sim.kill(actor);
        }
    }

    /// Returns `true` if the actor exists (has been spawned and not killed).
    pub fn is_alive(&self, actor: ActorId) -> bool {
        self.sim.is_alive(actor)
    }

    /// Crashes a node (see [`Simulation::crash_node`]). If the executing
    /// actor itself lives on the node, it dies too — removal is deferred
    /// until its handler returns, like [`Ctx::kill`].
    pub fn crash_node(&mut self, node: NodeId) -> usize {
        if self.sim.node_of(self.self_id) == node {
            self.killed_self = true;
        }
        self.sim.crash_node(node)
    }

    /// Restarts a crashed node (see [`Simulation::restart_node`]).
    pub fn restart_node(&mut self, node: NodeId) {
        self.sim.restart_node(node);
    }

    /// Returns `true` if the node is up.
    pub fn is_node_up(&self, node: NodeId) -> bool {
        self.sim.is_node_up(node)
    }

    /// Returns the network model mutably (partitions, link faults, stats).
    pub fn network_mut(&mut self) -> &mut Network {
        self.sim.network_mut()
    }

    /// Returns the network model.
    pub fn network(&self) -> &Network {
        self.sim.network()
    }

    /// Returns `true` if structured span tracing is recording. Callers with
    /// expensive span construction should gate on this.
    #[inline(always)]
    pub fn tracing_enabled(&self) -> bool {
        self.sim.spans.is_enabled()
    }

    /// Records a structured span at the current time on this actor's node,
    /// causally parented to the event being handled. Returns `None` when
    /// tracing is disabled.
    #[inline]
    pub fn emit_span(&mut self, kind: SpanKind) -> Option<SpanId> {
        let node = self.sim.node_of(self.self_id).as_raw();
        let parent = self.sim.current_span;
        self.sim.span_emit(node, parent, kind)
    }

    /// Records a structured span with an explicit causal parent (e.g. the
    /// span that opened a multi-event protocol exchange). Returns `None`
    /// when tracing is disabled.
    #[inline]
    pub fn emit_span_under(&mut self, parent: Option<SpanId>, kind: SpanKind) -> Option<SpanId> {
        let node = self.sim.node_of(self.self_id).as_raw();
        self.sim.span_emit(node, parent, kind)
    }

    /// The span of the event currently being dispatched, if traced.
    pub fn current_span(&self) -> Option<SpanId> {
        self.sim.current_span
    }

    /// Installs a partition (see [`Network::set_partition`]), recording the
    /// topology change in the structured trace.
    pub fn set_partition(&mut self, partition_groups: &[Vec<NodeId>]) {
        self.sim.set_partition(partition_groups);
    }

    /// Heals any installed partition (see [`Network::heal_partition`]),
    /// recording the topology change in the structured trace.
    pub fn heal_partition(&mut self) {
        self.sim.heal_partition();
    }

    /// Installs a directed link fault (see [`Network::set_link_fault`]),
    /// recording it in the structured trace.
    pub fn set_link_fault(&mut self, src: NodeId, dst: NodeId, fault: LinkFault) {
        self.sim.set_link_fault(src, dst, fault);
    }

    /// Clears a directed link fault (see [`Network::clear_link_fault`]),
    /// recording it in the structured trace.
    pub fn clear_link_fault(&mut self, src: NodeId, dst: NodeId) {
        self.sim.clear_link_fault(src, dst);
    }
}

enum Slot<M> {
    Occupied(Box<dyn Actor<M>>),
    Running,
    Vacant,
    /// The actor exists but is owned by a different shard of a parallel
    /// window; only placement queries are valid here. Dispatching to a
    /// `Remote` slot is a routing bug and panics.
    Remote,
}

/// The discrete-event simulation engine.
///
/// # Examples
///
/// ```
/// use dcdo_sim::{Actor, ActorId, Ctx, NetConfig, NodeId, Payload, Simulation};
///
/// struct Ping;
/// struct Echo;
///
/// impl Payload for Ping {}
///
/// impl Actor<Ping> for Echo {
///     fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: ActorId, _msg: Ping) {
///         ctx.metrics().incr("echoed");
///         let _ = from;
///     }
/// }
///
/// let mut sim = Simulation::<Ping>::new(NetConfig::centurion(), 42);
/// let node = NodeId::from_raw(0);
/// let echo = sim.spawn(node, Echo);
/// sim.post(echo, echo, Ping);
/// sim.run_until_idle();
/// assert_eq!(sim.metrics().counter("echoed"), 1);
/// ```
pub struct Simulation<M: Payload> {
    time: SimTime,
    run_seed: u64,
    queue: EventQueue<EventKind<M>>,
    /// Actor slots, indexed `[allocating lane][per-lane spawn counter]`.
    actors: Vec<Vec<Slot<M>>>,
    /// Placements, parallel to `actors`.
    placements: Vec<Vec<NodeId>>,
    /// Per-lane allocation state, created lazily (index = lane).
    lanes: Vec<Option<LaneState>>,
    network: Network,
    metrics: Metrics,
    events_processed: u64,
    trace: Trace,
    spans: TraceLog,
    /// The span of the event currently being dispatched — the causal parent
    /// of everything its handler emits. `None` outside dispatch or when
    /// tracing is disabled.
    current_span: Option<SpanId>,
    /// The lane charged for names minted right now: 0 driver-side, node + 1
    /// while that node's handler runs.
    cur_lane: u16,
    /// Key of the event being executed; tags buffered emissions so per-shard
    /// logs merge back into execution order.
    cur_key: u128,
    /// Actors registered as structural-fault drivers (see
    /// [`Simulation::mark_structural`]): their events always execute at a
    /// global barrier, never inside a parallel window.
    structural: HashSet<u32>,
    /// Per-instance worker-thread override (see [`Simulation::set_threads`]).
    threads: Option<u32>,
    /// `Some` while this simulation is a shard of a parallel window.
    shard: Option<ShardRole>,
    /// Cross-shard (or structural-bound) sends deferred to the next barrier.
    outbox: Vec<(u128, EventKind<M>)>,
    /// Buffered trace entries, tagged with the emitting event's key.
    trace_buf: Vec<(u128, TraceEntry)>,
    /// Buffered span events, tagged with the emitting event's key.
    span_buf: Vec<(u128, SpanEvent)>,
    /// Actors spawned inside the current window, to register with every
    /// other shard at the barrier.
    new_actors: Vec<(ActorId, NodeId)>,
    /// Actors spawned inside the current window whose placement belongs to
    /// another shard: the boxed actor travels to its owner at the barrier.
    exported: Vec<(ActorId, Box<dyn Actor<M>>)>,
    /// The always-on flight recorder: a bounded ring of compact frames per
    /// executed event. Shards never push into their own ring — see
    /// `flight_buf`.
    flight: FlightRecorder,
    /// Shard-side flight frames, tagged with the emitting event's key and
    /// merged into the root ring at the window barrier so eviction order is
    /// the sequential execution order.
    flight_buf: Vec<(u128, FlightFrame)>,
    /// Head-sampling rate: keep 1 in `n` delivered/timer frames (1 = all).
    /// Draws come from per-lane `flight_rng` streams, so the retained set
    /// is identical at any worker-thread count.
    flight_sample_n: u64,
    /// The always-on windowed time-series registry.
    timeline: Timeline,
}

impl<M: Payload> Simulation<M> {
    /// Creates a simulation with the given network configuration and RNG
    /// seed.
    pub fn new(net: NetConfig, seed: u64) -> Self {
        Simulation {
            time: SimTime::ZERO,
            run_seed: seed,
            queue: EventQueue::new(),
            actors: Vec::new(),
            placements: Vec::new(),
            lanes: Vec::new(),
            network: Network::new(net),
            metrics: Metrics::new(),
            events_processed: 0,
            trace: Trace::new(),
            spans: TraceLog::new(),
            current_span: None,
            cur_lane: 0,
            cur_key: 0,
            structural: HashSet::new(),
            threads: None,
            shard: None,
            outbox: Vec::new(),
            trace_buf: Vec::new(),
            span_buf: Vec::new(),
            new_actors: Vec::new(),
            exported: Vec::new(),
            flight: FlightRecorder::new(),
            flight_buf: Vec::new(),
            flight_sample_n: 1,
            timeline: Timeline::new(),
        }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Returns the metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Returns the metrics registry mutably.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Returns the network model.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Returns the network model mutably (for fault-injection tests).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Returns the number of events processed so far.
    ///
    /// Cancelled timers are removed from the queue at cancellation time and
    /// never surface here.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Returns the number of pending events: live timers plus undelivered
    /// messages. Cancelled timers leave this count immediately.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Returns the high-water mark of [`pending_events`]
    /// (memory-boundedness witness for cancel-heavy workloads). Under
    /// parallel execution this is the root queue's own high-water mark;
    /// events resident in per-shard queues during a window are not counted.
    ///
    /// [`pending_events`]: Simulation::pending_events
    pub fn peak_pending_events(&self) -> usize {
        self.queue.peak_len()
    }

    /// The execution trace (disabled by default; see [`Trace::enable`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the execution trace, e.g. to enable it.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// The structured span log (disabled by default; see
    /// [`TraceLog::enable`]).
    pub fn spans(&self) -> &TraceLog {
        &self.spans
    }

    /// Mutable access to the structured span log, e.g. to enable it before a
    /// run or export it afterwards.
    pub fn spans_mut(&mut self) -> &mut TraceLog {
        &mut self.spans
    }

    /// The always-on flight recorder (enabled by default; see
    /// [`FlightRecorder`]).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Mutable access to the flight recorder, e.g. to disable it or resize
    /// the ring before a run.
    pub fn flight_mut(&mut self) -> &mut FlightRecorder {
        &mut self.flight
    }

    /// The windowed time-series registry (enabled by default; see
    /// [`Timeline`]).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Mutable access to the timeline, e.g. to change the bucket width
    /// before a run or export it afterwards.
    pub fn timeline_mut(&mut self) -> &mut Timeline {
        &mut self.timeline
    }

    /// Configures flight-recorder head sampling: keep 1 in `n` delivered
    /// and timer frames (`n` = 1, the default, keeps everything).
    /// Dead letters, crashes, and restarts are always recorded. Draws come
    /// from dedicated per-lane RNG streams split from a salted run seed, so
    /// the retained set is byte-identical at any worker-thread count and
    /// the engine's main RNG streams are never perturbed.
    pub fn set_flight_sampling(&mut self, n: u64) {
        self.flight_sample_n = n.max(1);
    }

    /// Overrides the worker-thread count for this simulation's `run_*`
    /// entry points (1 = sequential). Without an override, runs consult
    /// [`crate::set_default_threads`] and then the `DCDO_SIM_THREADS`
    /// environment variable.
    pub fn set_threads(&mut self, n: u32) {
        self.threads = Some(n.max(1));
    }

    /// The worker-thread count `run_*` entry points will use.
    pub fn threads(&self) -> u32 {
        self.threads
            .unwrap_or_else(crate::parallel::default_threads)
            .max(1)
    }

    /// Registers an actor as a structural-fault driver: every event
    /// delivered to it executes at a global barrier with all shards merged,
    /// so its handler may crash/restart nodes, install partitions or link
    /// faults, and touch any actor. The chaos controller registers itself
    /// automatically; custom fault-driving actors must call this before the
    /// run or their structural calls panic inside parallel windows.
    pub fn mark_structural(&mut self, actor: ActorId) {
        assert!(
            self.shard.is_none(),
            "mark_structural may not be called inside a parallel window"
        );
        self.structural.insert(actor.as_raw());
    }

    /// Records a structured span at the current time with no node
    /// attribution (driver-side). Returns `None` when tracing is disabled.
    pub fn emit_span(&mut self, kind: SpanKind) -> Option<SpanId> {
        let parent = self.current_span;
        self.span_emit(dcdo_trace::NO_NODE, parent, kind)
    }

    /// Installs a partition and records the topology change in the
    /// structured trace (prefer this over
    /// [`network_mut`](Simulation::network_mut) + `set_partition` so the
    /// trace-invariant checker can replay reachability).
    pub fn set_partition(&mut self, partition_groups: &[Vec<NodeId>]) {
        self.assert_sole("set_partition");
        self.network.set_partition(partition_groups);
        if self.spans.is_enabled() {
            let groups = self.network.partition_groups().to_vec();
            self.emit_span(SpanKind::PartitionChanged { groups });
        }
    }

    /// Heals any installed partition, recording the change in the
    /// structured trace.
    pub fn heal_partition(&mut self) {
        self.assert_sole("heal_partition");
        self.network.heal_partition();
        self.emit_span(SpanKind::PartitionHealed);
    }

    /// Installs a directed link fault, recording it in the structured trace.
    pub fn set_link_fault(&mut self, src: NodeId, dst: NodeId, fault: LinkFault) {
        self.assert_sole("set_link_fault");
        self.network.set_link_fault(src, dst, fault);
        self.emit_span(SpanKind::LinkFaultSet {
            src_node: src.as_raw(),
            dst_node: dst.as_raw(),
        });
    }

    /// Clears a directed link fault, recording it in the structured trace.
    pub fn clear_link_fault(&mut self, src: NodeId, dst: NodeId) {
        self.assert_sole("clear_link_fault");
        self.network.clear_link_fault(src, dst);
        self.emit_span(SpanKind::LinkFaultCleared {
            src_node: src.as_raw(),
            dst_node: dst.as_raw(),
        });
    }

    /// Mints a fresh unique `u64`. Values carry the minting lane in the
    /// high bits; driver-side values stay the dense 1, 2, 3, …
    pub fn fresh_u64(&mut self) -> u64 {
        let lane = self.cur_lane;
        let ls = self.lane_state(lane);
        ls.fresh += 1;
        debug_assert!(ls.fresh < 1 << LANE_SHIFT);
        ((lane as u64) << LANE_SHIFT) | ls.fresh
    }

    /// Driver-side access to the deterministic RNG stream of `node`'s lane —
    /// the same stream [`Ctx::rng`] hands an actor executing on that node.
    ///
    /// Draws advance only that lane's state, so they are byte-identical at
    /// every worker-thread count (the per-lane streams are the engine's
    /// determinism backbone; see the module docs). Scenario drivers use this
    /// for weighted workload selection: the traffic mix a seed produces is
    /// the same whether the run is sequential or sharded.
    pub fn rng_for(&mut self, node: NodeId) -> &mut SimRng {
        assert!(
            node.as_raw() < u16::MAX as u32,
            "node ids must fit the engine's 16-bit lane space"
        );
        let lane = node.as_raw() as u16 + 1;
        &mut self.lane_state(lane).rng
    }

    /// Spawns an actor on `node` and returns its id.
    pub fn spawn(&mut self, node: NodeId, actor: impl Actor<M>) -> ActorId {
        self.spawn_boxed(node, Box::new(actor))
    }

    /// Spawns a boxed actor on `node` and returns its id.
    pub fn spawn_boxed(&mut self, node: NodeId, actor: Box<dyn Actor<M>>) -> ActorId {
        assert!(
            node.as_raw() < 0xFFFF,
            "node ids must fit the engine's 16-bit lane space"
        );
        let lane = self.cur_lane;
        let ls = self.lane_state(lane);
        let ctr = ls.actor_ctr;
        assert!(
            ctr < u16::MAX as u32,
            "lane {lane} exhausted its 16-bit actor-id space"
        );
        ls.actor_ctr += 1;
        let id = ActorId::from_parts(lane, ctr as u16);
        self.ensure_lane_slots(lane);
        debug_assert_eq!(self.actors[lane as usize].len(), ctr as usize);
        if self.owns_node(node) {
            self.actors[lane as usize].push(Slot::Occupied(actor));
        } else {
            // Spawned from inside a window onto a node another shard owns:
            // the box travels to its owner at the barrier.
            self.actors[lane as usize].push(Slot::Remote);
            self.exported.push((id, actor));
        }
        self.placements[lane as usize].push(node);
        if self.shard.is_some() {
            self.new_actors.push((id, node));
        }
        self.trace_record(TraceEvent::Spawned { actor: id, node });
        let parent = self.current_span;
        self.span_emit(
            node.as_raw(),
            parent,
            SpanKind::ActorSpawned {
                actor: id.as_raw(),
                node: node.as_raw(),
            },
        );
        id
    }

    /// Kills an actor; subsequent messages to it are dead letters.
    pub fn kill(&mut self, actor: ActorId) {
        let Some(&node) = self
            .placements
            .get(actor.lane_index())
            .and_then(|v| v.get(actor.ctr_index()))
        else {
            return;
        };
        let slot = self.slot_mut(actor).expect("placement implies slot");
        assert!(
            !matches!(slot, Slot::Remote),
            "kill({actor}) targets an actor owned by another shard during a parallel window"
        );
        *slot = Slot::Vacant;
        self.trace_record(TraceEvent::Killed { actor });
        let parent = self.current_span;
        self.span_emit(
            node.as_raw(),
            parent,
            SpanKind::ActorKilled {
                actor: actor.as_raw(),
            },
        );
    }

    /// Returns `true` if the actor is alive.
    pub fn is_alive(&self, actor: ActorId) -> bool {
        match self.slot(actor) {
            Some(Slot::Occupied(_) | Slot::Running) => true,
            Some(Slot::Remote) => panic!(
                "is_alive({actor}) asked about an actor owned by another shard \
                 during a parallel window"
            ),
            _ => false,
        }
    }

    /// Returns the node an actor is placed on.
    ///
    /// # Panics
    ///
    /// Panics if the actor id was never spawned.
    pub fn node_of(&self, actor: ActorId) -> NodeId {
        self.placements[actor.lane_index()][actor.ctr_index()]
    }

    /// Downcasts an actor to a concrete type for inspection.
    pub fn actor<T: Actor<M>>(&self, id: ActorId) -> Option<&T> {
        match self.slot(id)? {
            Slot::Occupied(a) => (a.as_ref() as &dyn Any).downcast_ref::<T>(),
            _ => None,
        }
    }

    /// Downcasts an actor to a concrete type for mutation between events.
    pub fn actor_mut<T: Actor<M>>(&mut self, id: ActorId) -> Option<&mut T> {
        match self.slot_mut(id)? {
            Slot::Occupied(a) => (a.as_mut() as &mut dyn Any).downcast_mut::<T>(),
            _ => None,
        }
    }

    /// Runs `f` against a concrete actor with a live [`Ctx`], letting drivers
    /// initiate activity (e.g. start a client) at the current time.
    ///
    /// # Panics
    ///
    /// Panics if the actor is dead or not of type `T`.
    pub fn with_actor<T: Actor<M>, R>(
        &mut self,
        id: ActorId,
        f: impl FnOnce(&mut T, &mut Ctx<'_, M>) -> R,
    ) -> R {
        let Some(slot_ref) = self.slot_mut(id) else {
            panic!("with_actor: {id} is not alive");
        };
        let slot = std::mem::replace(slot_ref, Slot::Running);
        let Slot::Occupied(mut actor) = slot else {
            panic!("with_actor: {id} is not alive");
        };
        let node = self.node_of(id);
        let prev_lane = self.cur_lane;
        self.cur_lane = node.as_raw() as u16 + 1;
        let (out, killed) = {
            let mut ctx = Ctx {
                sim: self,
                self_id: id,
                killed_self: false,
            };
            let t = (actor.as_mut() as &mut dyn Any)
                .downcast_mut::<T>()
                .expect("with_actor: actor has a different concrete type");
            let out = f(t, &mut ctx);
            (out, ctx.killed_self)
        };
        self.cur_lane = prev_lane;
        *self.slot_mut(id).expect("slot exists") = if killed {
            Slot::Vacant
        } else {
            Slot::Occupied(actor)
        };
        out
    }

    /// Posts a message from `src` to `dst` through the network at the
    /// current time (driver-side injection).
    pub fn post(&mut self, src: ActorId, dst: ActorId, msg: M) {
        self.route(src, dst, msg);
    }

    /// Schedules a timer for an actor (driver-side).
    pub fn schedule_timer_for(
        &mut self,
        actor: ActorId,
        delay: SimDuration,
        token: u64,
    ) -> TimerId {
        let lane = self.cur_lane;
        let ls = self.lane_state(lane);
        ls.next_timer += 1;
        debug_assert!(ls.next_timer < 1 << LANE_SHIFT);
        let id = TimerId(((lane as u64) << LANE_SHIFT) | ls.next_timer);
        let at = self.time + delay;
        // `current_span` is only ever set while tracing is enabled, so this
        // costs nothing in the disabled case.
        let cause = self.current_span;
        self.push(
            at,
            EventKind::Timer {
                dst: actor,
                id,
                token,
                cause,
            },
        );
        id
    }

    /// Cancels a timer (driver-side). The entry is removed from the queue
    /// immediately; a cancelled or already-fired timer id is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.queue.cancel_timer(id.0);
    }

    // ---- lane / shard internals -----------------------------------------

    fn lane_state(&mut self, lane: u16) -> &mut LaneState {
        let idx = lane as usize;
        if self.lanes.len() <= idx {
            self.lanes.resize_with(idx + 1, || None);
        }
        let seed = lane_seed(self.run_seed, lane);
        self.lanes[idx].get_or_insert_with(|| LaneState::new(seed))
    }

    fn ensure_lane_slots(&mut self, lane: u16) {
        let idx = lane as usize;
        if self.actors.len() <= idx {
            self.actors.resize_with(idx + 1, Vec::new);
            self.placements.resize_with(idx + 1, Vec::new);
        }
    }

    fn slot(&self, id: ActorId) -> Option<&Slot<M>> {
        self.actors.get(id.lane_index())?.get(id.ctr_index())
    }

    fn slot_mut(&mut self, id: ActorId) -> Option<&mut Slot<M>> {
        self.actors
            .get_mut(id.lane_index())?
            .get_mut(id.ctr_index())
    }

    fn owns_node(&self, node: NodeId) -> bool {
        match self.shard {
            None => true,
            Some(r) => node.as_raw() % r.nshards == r.idx,
        }
    }

    fn assert_sole(&self, what: &str) {
        assert!(
            self.shard.is_none(),
            "{what} mutates global topology and may only run driver-side or \
             from an actor registered with Simulation::mark_structural"
        );
    }

    /// Records an execution-trace event: directly in sole mode, buffered
    /// (tagged with the executing event's key) inside a parallel window.
    fn trace_record(&mut self, event: TraceEvent) {
        if !self.trace.is_enabled() {
            return;
        }
        if self.shard.is_some() {
            self.trace_buf.push((
                self.cur_key,
                TraceEntry {
                    at: self.time,
                    event,
                },
            ));
        } else {
            self.trace.record(self.time, event);
        }
    }

    /// Emits a structured span from the current lane: ids are
    /// `((lane + 1) << 48) | per-lane counter`, so they are unique, never
    /// collide with the dense ids of standalone [`TraceLog::emit`] calls,
    /// and do not depend on the worker-thread count. Buffered inside a
    /// parallel window, direct otherwise.
    fn span_emit(&mut self, node: u32, parent: Option<SpanId>, kind: SpanKind) -> Option<SpanId> {
        if !self.spans.is_enabled() {
            return None;
        }
        let lane = self.cur_lane;
        let at_ns = self.time.as_nanos();
        let ls = self.lane_state(lane);
        ls.span_ctr += 1;
        debug_assert!(ls.span_ctr < 1 << LANE_SHIFT);
        let raw = ((lane as u64 + 1) << LANE_SHIFT) | ls.span_ctr;
        let id = SpanId::from_raw(raw).expect("lane span ids are nonzero");
        let ev = SpanEvent {
            id,
            parent,
            at_ns,
            node,
            kind,
        };
        if self.shard.is_some() {
            self.span_buf.push((self.cur_key, ev));
        } else {
            self.spans.push_event(ev);
        }
        Some(id)
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let lane = self.cur_lane;
        let ls = self.lane_state(lane);
        ls.seq += 1;
        debug_assert!(ls.seq < 1 << LANE_SHIFT);
        let key = ((at.as_nanos() as u128) << 64) | ((lane as u128) << LANE_SHIFT) | ls.seq as u128;
        if self.shard.is_some() {
            let dst = kind.dst();
            if !self.owns_node(self.node_of(dst)) || self.structural.contains(&dst.as_raw()) {
                debug_assert!(
                    matches!(kind, EventKind::Deliver { .. }),
                    "timers are self-targeted and never cross shards"
                );
                self.outbox.push((key, kind));
                return;
            }
        }
        match &kind {
            // Timers always go through the heap — even zero-delay ones —
            // so every timer stays cancellable.
            EventKind::Timer { id, .. } => {
                let timer_id = id.0;
                self.queue.push_raw_timer(key, timer_id, kind);
            }
            EventKind::Deliver { .. } if at == self.time => {
                self.queue.push_same_tick_raw(key, kind);
            }
            EventKind::Deliver { .. } => self.queue.push_raw(key, kind),
        }
    }

    fn route(&mut self, src: ActorId, dst: ActorId, msg: M) {
        let bytes = msg.wire_size();
        let (src_node, dst_node) = (self.node_of(src), self.node_of(dst));
        let now = self.time;
        let lane = self.cur_lane;
        self.lane_state(lane);
        let plan = {
            let Simulation { lanes, network, .. } = self;
            let rng = &mut lanes[lane as usize].as_mut().expect("lane state").rng;
            network.plan(now, src_node, dst_node, bytes, rng)
        };
        let cause = if self.spans.is_enabled() {
            let verdict = match plan {
                DeliveryPlan::Deliver(_) => SendVerdict::Sent,
                DeliveryPlan::DeliverTwice(..) => SendVerdict::SentTwice,
                DeliveryPlan::Lost => SendVerdict::Lost,
                DeliveryPlan::Unreachable => SendVerdict::Unreachable,
            };
            let parent = self.current_span;
            self.span_emit(
                src_node.as_raw(),
                parent,
                SpanKind::MsgSent {
                    src: src.as_raw(),
                    dst: dst.as_raw(),
                    src_node: src_node.as_raw(),
                    dst_node: dst_node.as_raw(),
                    verdict,
                    bytes,
                },
            )
        } else {
            None
        };
        match plan {
            DeliveryPlan::Deliver(at) => self.push(
                at,
                EventKind::Deliver {
                    src,
                    dst,
                    msg,
                    cause,
                },
            ),
            DeliveryPlan::DeliverTwice(first, second) => {
                self.metrics.incr("sim.duplicates_planned");
                match msg.clone_for_redelivery() {
                    // True double delivery for payloads that opt in.
                    Some(dup) => {
                        self.push(
                            first,
                            EventKind::Deliver {
                                src,
                                dst,
                                msg,
                                cause,
                            },
                        );
                        self.push(
                            second,
                            EventKind::Deliver {
                                src,
                                dst,
                                msg: dup,
                                cause,
                            },
                        );
                    }
                    // Non-clonable payloads degrade to the old model: one
                    // delivery at the later of the two arrival times. The
                    // dropped second delivery is counted, not silent.
                    None => {
                        self.metrics.incr("sim.duplicates_degraded");
                        self.network.note_duplicate_degraded();
                        self.push(
                            second,
                            EventKind::Deliver {
                                src,
                                dst,
                                msg,
                                cause,
                            },
                        );
                    }
                }
            }
            DeliveryPlan::Lost => {
                self.metrics.incr("sim.messages_lost");
            }
            DeliveryPlan::Unreachable => {
                self.metrics.incr("sim.unreachable_drops");
                self.trace_record(TraceEvent::Unreachable { src, dst });
            }
        }
    }

    /// Crashes a node: marks it down in the network (traffic to or from it
    /// is dropped as unreachable), kills every actor placed on it, and
    /// cancels all their pending timers so nothing owned by a dead actor
    /// ever fires. Messages already in flight toward the node dead-letter
    /// on arrival. Returns the number of actors killed.
    ///
    /// Crashing an already-down node is a no-op. The currently executing
    /// actor (if any) is not touched — use [`Ctx::crash_node`] from inside
    /// a handler, which also handles self-destruction. From a parallel run,
    /// only driver code or a [`mark_structural`](Simulation::mark_structural)
    /// actor may call this.
    pub fn crash_node(&mut self, node: NodeId) -> usize {
        self.assert_sole("crash_node");
        if !self.network.is_node_up(node) {
            return 0;
        }
        self.network.set_node_down(node);
        self.metrics.incr("sim.node_crashes");
        self.trace_record(TraceEvent::NodeDown { node });
        let parent = self.current_span;
        let crash_span = self.span_emit(
            node.as_raw(),
            parent,
            SpanKind::NodeCrashed {
                node: node.as_raw(),
            },
        );
        self.observe(7, node.as_raw(), 0, false);
        let mut killed = 0;
        for lane in 0..self.actors.len() {
            for ctr in 0..self.actors[lane].len() {
                if self.placements[lane][ctr] != node
                    || !matches!(self.actors[lane][ctr], Slot::Occupied(_))
                {
                    continue;
                }
                self.actors[lane][ctr] = Slot::Vacant;
                let actor = ActorId::from_parts(lane as u16, ctr as u16);
                self.trace_record(TraceEvent::Killed { actor });
                self.span_emit(
                    node.as_raw(),
                    crash_span,
                    SpanKind::ActorKilled {
                        actor: actor.as_raw(),
                    },
                );
                killed += 1;
            }
        }
        let placements = &self.placements;
        let cancelled = self.queue.cancel_timers_where(|kind| {
            matches!(kind, EventKind::Timer { dst, .. }
                if placements[dst.lane_index()][dst.ctr_index()] == node)
        });
        self.metrics
            .add("sim.timers_cancelled_by_crash", cancelled as u64);
        killed
    }

    /// Brings a crashed node back up: traffic can reach it again. Actors
    /// that died in the crash stay dead — recovery layers spawn fresh ones.
    /// Restarting a node that is up is a no-op.
    pub fn restart_node(&mut self, node: NodeId) {
        self.assert_sole("restart_node");
        if self.network.is_node_up(node) {
            return;
        }
        self.network.set_node_up(node);
        self.metrics.incr("sim.node_restarts");
        self.trace_record(TraceEvent::NodeUp { node });
        let parent = self.current_span;
        self.span_emit(
            node.as_raw(),
            parent,
            SpanKind::NodeRestarted {
                node: node.as_raw(),
            },
        );
        self.observe(8, node.as_raw(), 0, false);
    }

    /// Returns `true` if the node is up (never crashed, or restarted).
    pub fn is_node_up(&self, node: NodeId) -> bool {
        self.network.is_node_up(node)
    }

    /// Returns the live actors placed on `node`, in id order (driver-side
    /// spawns first, in spawn order).
    pub fn actors_on(&self, node: NodeId) -> Vec<ActorId> {
        let mut out = Vec::new();
        for lane in 0..self.actors.len() {
            for ctr in 0..self.actors[lane].len() {
                if self.placements[lane][ctr] != node {
                    continue;
                }
                let id = ActorId::from_parts(lane as u16, ctr as u16);
                if self.is_alive(id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// Processes the next event sequentially. Returns `false` if the queue
    /// is empty. `step` always executes on the calling thread regardless of
    /// the configured thread count.
    pub fn step(&mut self) -> bool {
        let Some((key, kind)) = self.queue.pop_raw() else {
            return false;
        };
        self.execute(key, kind);
        true
    }

    fn execute(&mut self, key: u128, kind: EventKind<M>) {
        let at = SimTime::from_nanos((key >> 64) as u64);
        debug_assert!(at >= self.time, "time cannot go backwards");
        self.time = at;
        self.cur_key = key;
        self.events_processed += 1;
        match kind {
            EventKind::Deliver {
                src,
                dst,
                msg,
                cause,
            } => self.dispatch_message(src, dst, msg, cause),
            EventKind::Timer {
                dst, token, cause, ..
            } => self.dispatch_timer(dst, token, cause),
        }
    }

    /// The always-on observability hook: accounts the executing event into
    /// the timeline bucket and leaves a compact frame in the flight ring.
    /// `sampled` frames (deliveries, timers) are subject to head sampling;
    /// error-shaped frames (dead letters, crashes, restarts) always record.
    /// This is the per-event hot path — one enabled branch per facility, a
    /// cached bucket-end compare, plain integer increments, and a 16-byte
    /// ring store; no division or map lookups.
    #[inline(always)]
    fn observe(&mut self, code: u8, node: u32, actor: u64, sampled: bool) {
        let at_ns = self.time.as_nanos();
        if self.timeline.is_enabled() {
            self.timeline.account(at_ns, code);
        }
        if self.flight.is_enabled() {
            if sampled && self.flight_sample_n > 1 {
                let n = self.flight_sample_n;
                let lane = self.cur_lane;
                let run_seed = self.run_seed;
                let ls = self.lane_state(lane);
                let rng = ls.flight_rng.get_or_insert_with(|| {
                    SimRng::seed_from_u64(lane_seed(run_seed ^ FLIGHT_SALT, lane))
                });
                if rng.range_u64(0, n) != 0 {
                    return;
                }
            }
            let frame = FlightFrame::pack(at_ns, code, node, actor);
            if self.shard.is_some() {
                self.flight_buf.push((self.cur_key, frame));
            } else {
                self.flight.push(frame);
            }
        }
    }

    fn dispatch_message(&mut self, src: ActorId, dst: ActorId, msg: M, cause: Option<SpanId>) {
        let Some(&dst_node) = self
            .placements
            .get(dst.lane_index())
            .and_then(|v| v.get(dst.ctr_index()))
        else {
            // Never-spawned destination: count and drop.
            self.metrics.incr("sim.dead_letters");
            self.trace_record(TraceEvent::DeadLetter { src, dst });
            self.observe(3, u32::MAX, dst.as_raw() as u64, false);
            return;
        };
        self.cur_lane = dst_node.as_raw() as u16 + 1;
        let slot_ref = self.slot_mut(dst).expect("placement implies slot");
        assert!(
            !matches!(slot_ref, Slot::Remote),
            "delivery for {dst} reached a shard that does not own it"
        );
        let slot = std::mem::replace(slot_ref, Slot::Running);
        let Slot::Occupied(mut actor) = slot else {
            *self.slot_mut(dst).expect("slot exists") = Slot::Vacant;
            self.metrics.incr("sim.dead_letters");
            self.trace_record(TraceEvent::DeadLetter { src, dst });
            self.span_emit(
                dst_node.as_raw(),
                cause,
                SpanKind::MsgDeadLetter {
                    src: src.as_raw(),
                    dst: dst.as_raw(),
                    dst_node: dst_node.as_raw(),
                },
            );
            self.observe(3, dst_node.as_raw(), dst.as_raw() as u64, false);
            self.cur_lane = 0;
            return;
        };
        self.trace_record(TraceEvent::Delivered { src, dst });
        self.current_span = self.span_emit(
            dst_node.as_raw(),
            cause,
            SpanKind::MsgDelivered {
                src: src.as_raw(),
                dst: dst.as_raw(),
                dst_node: dst_node.as_raw(),
            },
        );
        self.observe(2, dst_node.as_raw(), dst.as_raw() as u64, true);
        let killed;
        {
            let mut ctx = Ctx {
                sim: self,
                self_id: dst,
                killed_self: false,
            };
            actor.on_message(&mut ctx, src, msg);
            killed = ctx.killed_self;
        }
        self.current_span = None;
        self.cur_lane = 0;
        *self.slot_mut(dst).expect("slot exists") = if killed {
            Slot::Vacant
        } else {
            Slot::Occupied(actor)
        };
    }

    fn dispatch_timer(&mut self, dst: ActorId, token: u64, cause: Option<SpanId>) {
        self.trace_record(TraceEvent::TimerFired { actor: dst, token });
        let Some(&node) = self
            .placements
            .get(dst.lane_index())
            .and_then(|v| v.get(dst.ctr_index()))
        else {
            return;
        };
        self.cur_lane = node.as_raw() as u16 + 1;
        let slot_ref = self.slot_mut(dst).expect("placement implies slot");
        assert!(
            !matches!(slot_ref, Slot::Remote),
            "timer for {dst} fired on a shard that does not own it"
        );
        let slot = std::mem::replace(slot_ref, Slot::Running);
        let Slot::Occupied(mut actor) = slot else {
            *self.slot_mut(dst).expect("slot exists") = Slot::Vacant;
            self.cur_lane = 0;
            return;
        };
        self.current_span = self.span_emit(
            node.as_raw(),
            cause,
            SpanKind::TimerFired {
                actor: dst.as_raw(),
                token,
            },
        );
        self.observe(4, node.as_raw(), dst.as_raw() as u64, true);
        let killed;
        {
            let mut ctx = Ctx {
                sim: self,
                self_id: dst,
                killed_self: false,
            };
            actor.on_timer(&mut ctx, token);
            killed = ctx.killed_self;
        }
        self.current_span = None;
        self.cur_lane = 0;
        *self.slot_mut(dst).expect("slot exists") = if killed {
            Slot::Vacant
        } else {
            Slot::Occupied(actor)
        };
    }

    /// Runs until the queue is empty. Returns the number of events
    /// processed. Uses the configured worker-thread count (see
    /// [`set_threads`](Simulation::set_threads)).
    ///
    /// # Panics
    ///
    /// Panics after 100 million events as a runaway-loop backstop.
    pub fn run_until_idle(&mut self) -> u64 {
        self.run_with_budget(100_000_000)
    }

    /// Runs until the queue is empty or `budget` events have been processed;
    /// returns the number processed. Uses the configured worker-thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the budget is exhausted with events still pending — a
    /// deterministic simulation that exceeds its budget is a bug, not load.
    pub fn run_with_budget(&mut self, budget: u64) -> u64 {
        match self.threads() {
            0 | 1 => self.run_with_budget_sole(budget),
            t => self.run_parallel_with_budget(t, budget),
        }
    }

    pub(crate) fn run_with_budget_sole(&mut self, budget: u64) -> u64 {
        let mut n = 0;
        while n < budget {
            if !self.step() {
                return n;
            }
            n += 1;
        }
        if self.queue.is_empty() {
            n
        } else {
            panic!("simulation exceeded event budget of {budget}");
        }
    }

    /// Runs until simulated time reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue empties. Returns events
    /// processed. Uses the configured worker-thread count.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        match self.threads() {
            0 | 1 => self.run_until_sole(deadline),
            t => self.run_parallel_until(t, deadline),
        }
    }

    pub(crate) fn run_until_sole(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some((at, _)) = self.queue.peek_key() {
            if at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        if self.time < deadline {
            self.time = deadline;
        }
        n
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) -> u64 {
        let deadline = self.time + d;
        self.run_until(deadline)
    }

    // ---- shard lifecycle (used by crate::parallel) ----------------------

    /// Advances the clock to a deadline no events reached (run_until
    /// semantics: the simulation "waits out" the remaining idle time).
    pub(crate) fn set_time_for_deadline(&mut self, deadline: SimTime) {
        debug_assert!(self.time <= deadline);
        self.time = deadline;
    }

    /// Time of the earliest pending event, in nanoseconds.
    pub(crate) fn peek_time_ns(&self) -> Option<u64> {
        self.queue.peek_raw_key().map(|k| (k >> 64) as u64)
    }

    /// Executes pending events with key-time strictly below `w_end_ns`, up
    /// to `cap` of them. Returns `(events executed, hit the cap)`.
    pub(crate) fn run_window(&mut self, w_end_ns: u64, cap: u64) -> (u64, bool) {
        let w_key = (w_end_ns as u128) << 64;
        let mut n = 0u64;
        loop {
            let Some(k) = self.queue.peek_raw_key() else {
                return (n, false);
            };
            if k >= w_key {
                return (n, false);
            }
            if n >= cap {
                return (n, true);
            }
            let (key, kind) = self.queue.pop_raw().expect("peeked non-empty");
            self.execute(key, kind);
            n += 1;
        }
    }

    /// Executes every pending event at exactly the current head time
    /// (a structural barrier runs the full tick sequentially so topology
    /// mutations see a merged world). Returns events executed.
    pub(crate) fn run_head_tick_sole(&mut self) -> u64 {
        debug_assert!(self.shard.is_none());
        let Some(head) = self.peek_time_ns() else {
            return 0;
        };
        let mut n = 0;
        while self.peek_time_ns() == Some(head) {
            self.step();
            n += 1;
        }
        n
    }

    /// Splits this simulation into `n` shard sub-simulations, each owning
    /// the nodes `u` with `u % n == idx`. Events destined for
    /// [structural](Simulation::mark_structural) actors stay in the root
    /// queue; everything else (actor slots, per-lane state, pending events)
    /// moves to its owner. The root keeps `Remote` placeholders and stays
    /// inert until [`collapse_shards`](Simulation::collapse_shards).
    // Boxed on purpose (not `vec_box` noise): shards cross thread
    // boundaries every window, and a boxed shard moves as one pointer
    // instead of memcpy'ing the whole engine struct per handoff.
    #[allow(clippy::vec_box)]
    pub(crate) fn split_shards(&mut self, n: u32) -> Vec<Box<Simulation<M>>> {
        debug_assert!(self.shard.is_none());
        let nlanes = self.actors.len();
        let mut shards: Vec<Box<Simulation<M>>> = (0..n)
            .map(|idx| {
                let mut s = Simulation::new(NetConfig::instant(), self.run_seed);
                s.time = self.time;
                s.network = self.network.fork_for_shard();
                s.placements = self.placements.clone();
                s.actors = (0..nlanes).map(|_| Vec::new()).collect();
                s.structural = self.structural.clone();
                s.threads = Some(1);
                s.shard = Some(ShardRole { idx, nshards: n });
                if self.trace.is_enabled() {
                    s.trace.enable(1); // flag only; entries are buffered
                }
                if self.spans.is_enabled() {
                    s.spans.enable();
                }
                // Flight frames are buffered (flag only; the ring lives on
                // the root); timelines are shard-local and merge order-free
                // at collapse.
                if !self.flight.is_enabled() {
                    s.flight.disable();
                }
                s.flight_sample_n = self.flight_sample_n;
                s.timeline.set_bucket_ns(self.timeline.bucket_ns());
                if !self.timeline.is_enabled() {
                    s.timeline.disable();
                }
                Box::new(s)
            })
            .collect();
        // Actor slots move to the owner of their placement; everyone else
        // (including the root) keeps a Remote placeholder.
        for lane in 0..nlanes {
            for ctr in 0..self.actors[lane].len() {
                let node = self.placements[lane][ctr];
                let owner = (node.as_raw() % n) as usize;
                let mut slot = Some(std::mem::replace(&mut self.actors[lane][ctr], Slot::Remote));
                for (i, sh) in shards.iter_mut().enumerate() {
                    sh.actors[lane].push(if i == owner {
                        slot.take().expect("moved once")
                    } else {
                        Slot::Remote
                    });
                }
            }
        }
        // Lane state: lane 0 (the driver) stays with the root; lane u + 1
        // goes to the shard owning node u.
        for lane in 1..self.lanes.len() {
            let owner = ((lane as u32 - 1) % n) as usize;
            if let Some(st) = self.lanes[lane].take() {
                if shards[owner].lanes.len() <= lane {
                    shards[owner].lanes.resize_with(lane + 1, || None);
                }
                shards[owner].lanes[lane] = Some(st);
            }
        }
        // Pending events: structural destinations stay home, the rest go to
        // the shard owning the destination's node.
        for (key, timer_id, kind) in self.queue.drain_raw() {
            let dst = kind.dst();
            let q = if self.structural.contains(&dst.as_raw()) {
                &mut self.queue
            } else {
                let owner = (self.node_of(dst).as_raw() % n) as usize;
                &mut shards[owner].queue
            };
            if timer_id != 0 {
                q.push_raw_timer(key, timer_id, kind);
            } else {
                q.push_raw(key, kind);
            }
        }
        shards
    }

    /// Barrier merge after one parallel window: registers actors spawned in
    /// the window with every simulation, delivers exported actor boxes to
    /// their owners, routes outboxed cross-shard sends, and merges the
    /// buffered trace/span logs back into the root in event-key order.
    pub(crate) fn merge_window(&mut self, shards: &mut [Box<Simulation<M>>]) {
        let n = shards.len() as u32;
        // 1. Registrations, then exported boxes (ids are lane-allocated, so
        //    per-shard registration order is spawn order and slots line up).
        for i in 0..shards.len() {
            let new_actors = std::mem::take(&mut shards[i].new_actors);
            for (id, node) in new_actors {
                let lane = id.lane_index();
                let ctr = id.ctr_index();
                self.ensure_lane_slots(lane as u16);
                debug_assert_eq!(self.actors[lane].len(), ctr);
                self.actors[lane].push(Slot::Remote);
                self.placements[lane].push(node);
                for (j, sh) in shards.iter_mut().enumerate() {
                    if j == i {
                        continue;
                    }
                    sh.ensure_lane_slots(lane as u16);
                    debug_assert_eq!(sh.actors[lane].len(), ctr);
                    sh.actors[lane].push(Slot::Remote);
                    sh.placements[lane].push(node);
                }
            }
            let exported = std::mem::take(&mut shards[i].exported);
            for (id, bx) in exported {
                let owner = (self.node_of(id).as_raw() % n) as usize;
                debug_assert_ne!(owner, i, "exported actors go to another shard");
                shards[owner].actors[id.lane_index()][id.ctr_index()] = Slot::Occupied(bx);
            }
        }
        // 2. Outboxed sends (already keyed by their sender's lane).
        for i in 0..shards.len() {
            let outbox = std::mem::take(&mut shards[i].outbox);
            for (key, kind) in outbox {
                let dst = kind.dst();
                if self.structural.contains(&dst.as_raw()) {
                    self.queue.push_raw(key, kind);
                } else {
                    let owner = (self.node_of(dst).as_raw() % n) as usize;
                    shards[owner].queue.push_raw(key, kind);
                }
            }
        }
        // 3. Buffered logs, k-way merged by emitting-event key. Each shard's
        //    buffer is in its own execution order; the global execution
        //    order is recovered by always taking the smallest head key
        //    (cross-shard events created inside a window cannot execute in
        //    the same window, so every shard's head is globally comparable).
        let tbufs: Vec<_> = shards
            .iter_mut()
            .map(|s| std::mem::take(&mut s.trace_buf))
            .collect();
        merge_tagged(tbufs, |e: TraceEntry| self.trace.record(e.at, e.event));
        let sbufs: Vec<_> = shards
            .iter_mut()
            .map(|s| std::mem::take(&mut s.span_buf))
            .collect();
        merge_tagged(sbufs, |ev: SpanEvent| self.spans.push_event(ev));
        let fbufs: Vec<_> = shards
            .iter_mut()
            .map(|s| std::mem::take(&mut s.flight_buf))
            .collect();
        merge_tagged(fbufs, |f: FlightFrame| self.flight.push(f));
    }

    /// Folds shard sub-simulations back into the root: queues, actor slots,
    /// lane state, network statistics and egress clocks, metrics, and the
    /// event count. The root becomes a plain sequential simulation again.
    #[allow(clippy::vec_box)]
    pub(crate) fn collapse_shards(&mut self, shards: Vec<Box<Simulation<M>>>) {
        let n = shards.len() as u32;
        for (i, mut sh) in shards.into_iter().enumerate() {
            debug_assert!(sh.outbox.is_empty(), "merge_window drains outboxes");
            debug_assert!(sh.trace_buf.is_empty() && sh.span_buf.is_empty());
            debug_assert!(
                sh.flight_buf.is_empty(),
                "merge_window drains flight frames"
            );
            debug_assert!(sh.new_actors.is_empty() && sh.exported.is_empty());
            self.time = self.time.max(sh.time);
            self.events_processed += sh.events_processed;
            for (key, timer_id, kind) in sh.queue.drain_raw() {
                if timer_id != 0 {
                    self.queue.push_raw_timer(key, timer_id, kind);
                } else {
                    self.queue.push_raw(key, kind);
                }
            }
            for lane in 0..sh.actors.len() {
                for ctr in 0..sh.actors[lane].len() {
                    let slot = std::mem::replace(&mut sh.actors[lane][ctr], Slot::Remote);
                    if !matches!(slot, Slot::Remote) {
                        self.actors[lane][ctr] = slot;
                    }
                }
            }
            for lane in 0..sh.lanes.len() {
                if let Some(st) = sh.lanes[lane].take() {
                    if self.lanes.len() <= lane {
                        self.lanes.resize_with(lane + 1, || None);
                    }
                    debug_assert!(self.lanes[lane].is_none(), "lane owned by one shard");
                    self.lanes[lane] = Some(st);
                }
            }
            let idx = i as u32;
            self.network
                .absorb_shard(&sh.network, |node| node % n == idx);
            self.metrics.merge(&sh.metrics);
            self.timeline.merge(&mut sh.timeline);
        }
    }
}

/// K-way merges per-shard `(event key, item)` buffers in ascending key
/// order. Each buffer is individually in execution order with duplicate
/// keys only within one buffer (one event executes on exactly one shard),
/// so taking the smallest current head reproduces the global execution
/// order.
fn merge_tagged<T>(bufs: Vec<Vec<(u128, T)>>, mut f: impl FnMut(T)) {
    let mut iters: Vec<_> = bufs.into_iter().map(|b| b.into_iter().peekable()).collect();
    loop {
        let mut best: Option<(u128, usize)> = None;
        for (i, it) in iters.iter_mut().enumerate() {
            if let Some((k, _)) = it.peek() {
                if best.is_none_or(|(bk, _)| *k < bk) {
                    best = Some((*k, i));
                }
            }
        }
        match best {
            Some((_, i)) => f(iters[i].next().expect("peeked").1),
            None => break,
        }
    }
}

impl<M: Payload> fmt::Debug for Simulation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("time", &self.time)
            .field("actors", &self.actors.iter().map(Vec::len).sum::<usize>())
            .field("pending_events", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum TestMsg {
        Ping(u32),
        Pong(u32),
    }

    impl Payload for TestMsg {
        fn wire_size(&self) -> u64 {
            32
        }
    }

    /// Replies to every Ping with a Pong carrying the same tag.
    struct Responder;

    impl Actor<TestMsg> for Responder {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, from: ActorId, msg: TestMsg) {
            if let TestMsg::Ping(tag) = msg {
                ctx.send(from, TestMsg::Pong(tag));
            }
        }

        fn name(&self) -> &str {
            "responder"
        }
    }

    /// Records received pongs and the times they arrived.
    #[derive(Default)]
    struct Collector {
        pongs: Vec<(u32, SimTime)>,
    }

    impl Actor<TestMsg> for Collector {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: ActorId, msg: TestMsg) {
            if let TestMsg::Pong(tag) = msg {
                let now = ctx.now();
                self.pongs.push((tag, now));
            }
        }
    }

    fn two_node_sim() -> (Simulation<TestMsg>, ActorId, ActorId) {
        let mut sim = Simulation::new(NetConfig::centurion(), 1);
        sim.set_threads(1);
        let client = sim.spawn(NodeId::from_raw(0), Collector::default());
        let server = sim.spawn(NodeId::from_raw(1), Responder);
        (sim, client, server)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, client, server) = two_node_sim();
        sim.post(client, server, TestMsg::Ping(7));
        sim.run_until_idle();
        let c = sim.actor::<Collector>(client).expect("alive");
        assert_eq!(c.pongs.len(), 1);
        assert_eq!(c.pongs[0].0, 7);
        assert!(c.pongs[0].1 > SimTime::ZERO);
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let (mut sim, client, server) = two_node_sim();
        for tag in 0..10 {
            sim.post(client, server, TestMsg::Ping(tag));
        }
        sim.run_until_idle();
        let c = sim.actor::<Collector>(client).expect("alive");
        let tags: Vec<u32> = c.pongs.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
        let times: Vec<SimTime> = c.pongs.iter().map(|(_, t)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn driver_side_ids_stay_dense() {
        // Lane-structured allocation must not disturb the driver's view:
        // spawns, timers, and fresh u64s minted driver-side keep the same
        // dense numbering the pre-lane engine produced.
        let mut sim = Simulation::<TestMsg>::new(NetConfig::instant(), 99);
        let a = sim.spawn(NodeId::from_raw(0), Responder);
        let b = sim.spawn(NodeId::from_raw(1), Responder);
        assert_eq!(a.as_raw(), 0);
        assert_eq!(b.as_raw(), 1);
        assert_eq!(sim.fresh_u64(), 1);
        assert_eq!(sim.fresh_u64(), 2);
    }

    #[test]
    fn dead_actor_messages_become_dead_letters() {
        let (mut sim, client, server) = two_node_sim();
        sim.kill(server);
        sim.post(client, server, TestMsg::Ping(1));
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("sim.dead_letters"), 1);
        let c = sim.actor::<Collector>(client).expect("alive");
        assert!(c.pongs.is_empty());
    }

    /// An actor that kills itself upon the first message.
    struct SelfDestruct;

    impl Actor<TestMsg> for SelfDestruct {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: ActorId, _msg: TestMsg) {
            let me = ctx.self_id();
            ctx.kill(me);
        }
    }

    #[test]
    fn self_kill_takes_effect_after_handler() {
        let mut sim = Simulation::new(NetConfig::instant(), 2);
        let a = sim.spawn(NodeId::from_raw(0), SelfDestruct);
        let b = sim.spawn(NodeId::from_raw(0), Collector::default());
        sim.post(b, a, TestMsg::Ping(0));
        sim.post(b, a, TestMsg::Ping(1));
        sim.run_until_idle();
        assert!(!sim.is_alive(a));
        assert_eq!(sim.metrics().counter("sim.dead_letters"), 1);
    }

    /// Fires a timer chain: each on_timer schedules the next until 5 fired.
    #[derive(Default)]
    struct TimerChain {
        fired: Vec<(u64, SimTime)>,
    }

    impl Actor<TestMsg> for TimerChain {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, _from: ActorId, _msg: TestMsg) {
            ctx.schedule_timer(SimDuration::from_millis(10), 0);
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, token: u64) {
            let now = ctx.now();
            self.fired.push((token, now));
            if token < 4 {
                ctx.schedule_timer(SimDuration::from_millis(10), token + 1);
            }
        }
    }

    #[test]
    fn timer_chains_advance_the_clock() {
        let mut sim = Simulation::new(NetConfig::instant(), 3);
        let a = sim.spawn(NodeId::from_raw(0), TimerChain::default());
        sim.post(a, a, TestMsg::Ping(0));
        sim.run_until_idle();
        let chain = sim.actor::<TimerChain>(a).expect("alive");
        assert_eq!(chain.fired.len(), 5);
        assert_eq!(
            chain.fired.last().expect("five").1,
            SimTime::ZERO + SimDuration::from_millis(50)
        );
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut sim = Simulation::new(NetConfig::instant(), 4);
        let a = sim.spawn(NodeId::from_raw(0), TimerChain::default());
        let id = sim.schedule_timer_for(a, SimDuration::from_secs(1), 99);
        sim.with_actor::<TimerChain, _>(a, |_, ctx| ctx.cancel_timer(id));
        sim.run_until_idle();
        let chain = sim.actor::<TimerChain>(a).expect("alive");
        assert!(chain.fired.is_empty());
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(NetConfig::instant(), 5);
        let a = sim.spawn(NodeId::from_raw(0), TimerChain::default());
        sim.post(a, a, TestMsg::Ping(0));
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(25));
        let fired = sim.actor::<TimerChain>(a).expect("alive").fired.len();
        assert_eq!(fired, 2, "only timers at 10ms and 20ms fire by 25ms");
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(25));
        sim.run_until_idle();
        assert_eq!(sim.actor::<TimerChain>(a).expect("alive").fired.len(), 5);
    }

    #[test]
    fn with_actor_returns_closure_result() {
        let mut sim = Simulation::new(NetConfig::instant(), 6);
        let a = sim.spawn(NodeId::from_raw(0), Collector::default());
        let n = sim.with_actor::<Collector, _>(a, |c, _ctx| c.pongs.len());
        assert_eq!(n, 0);
    }

    #[test]
    #[should_panic(expected = "not alive")]
    fn with_actor_panics_on_dead_actor() {
        let mut sim = Simulation::new(NetConfig::instant(), 7);
        let a = sim.spawn(NodeId::from_raw(0), Collector::default());
        sim.kill(a);
        sim.with_actor::<Collector, _>(a, |_, _| ());
    }

    #[test]
    fn fresh_u64_is_monotonic() {
        let mut sim = Simulation::<TestMsg>::new(NetConfig::instant(), 8);
        let a = sim.fresh_u64();
        let b = sim.fresh_u64();
        assert!(b > a);
    }

    #[test]
    fn crash_kills_actors_cancels_timers_and_blocks_traffic() {
        let mut sim = Simulation::new(NetConfig::centurion(), 9);
        sim.set_threads(1);
        let n0 = NodeId::from_raw(0);
        let n1 = NodeId::from_raw(1);
        let client = sim.spawn(n0, Collector::default());
        let server = sim.spawn(n1, Responder);
        let chain = sim.spawn(n1, TimerChain::default());
        sim.post(chain, chain, TestMsg::Ping(0));
        sim.run_for(SimDuration::from_millis(1));
        assert!(sim.pending_events() > 0, "a chain timer is pending");

        let killed = sim.crash_node(n1);
        assert_eq!(killed, 2);
        assert!(!sim.is_alive(server));
        assert!(!sim.is_alive(chain));
        assert!(sim.is_alive(client));
        assert!(!sim.is_node_up(n1));
        assert_eq!(
            sim.pending_events(),
            0,
            "dead actors' timers are swept from the queue"
        );
        assert_eq!(sim.metrics().counter("sim.timers_cancelled_by_crash"), 1);

        // New traffic toward the dead node is dropped as unreachable, with
        // a counted reason — not a dead letter (it never reached the node).
        sim.post(client, server, TestMsg::Ping(1));
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("sim.unreachable_drops"), 1);
        assert_eq!(sim.network().stats().unreachable, 1);
        assert_eq!(sim.metrics().counter("sim.dead_letters"), 0);

        // Restart: the node is reachable again, but old actors stay dead —
        // deliveries to them now dead-letter.
        sim.restart_node(n1);
        assert!(sim.is_node_up(n1));
        sim.post(client, server, TestMsg::Ping(2));
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("sim.dead_letters"), 1);

        // A replacement spawned after the restart serves traffic.
        let server2 = sim.spawn(n1, Responder);
        sim.post(client, server2, TestMsg::Ping(3));
        sim.run_until_idle();
        let c = sim.actor::<Collector>(client).expect("alive");
        assert_eq!(c.pongs.len(), 1);
        assert_eq!(sim.actors_on(n1), vec![server2]);
    }

    #[test]
    fn crash_of_a_down_node_is_a_noop() {
        let mut sim = Simulation::<TestMsg>::new(NetConfig::instant(), 10);
        let n = NodeId::from_raw(3);
        sim.spawn(n, Responder);
        assert_eq!(sim.crash_node(n), 1);
        assert_eq!(sim.crash_node(n), 0, "second crash is a no-op");
        assert_eq!(sim.metrics().counter("sim.node_crashes"), 1);
        sim.restart_node(n);
        sim.restart_node(n);
        assert_eq!(sim.metrics().counter("sim.node_restarts"), 1);
    }

    #[test]
    fn partitioned_nodes_drop_cross_group_traffic() {
        let mut sim = Simulation::new(NetConfig::centurion(), 11);
        sim.set_threads(1);
        let a = sim.spawn(NodeId::from_raw(0), Collector::default());
        let b = sim.spawn(NodeId::from_raw(1), Responder);
        sim.network_mut()
            .set_partition(&[vec![NodeId::from_raw(0)], vec![NodeId::from_raw(1)]]);
        sim.post(a, b, TestMsg::Ping(1));
        sim.run_until_idle();
        assert!(sim.actor::<Collector>(a).expect("alive").pongs.is_empty());
        assert_eq!(sim.metrics().counter("sim.unreachable_drops"), 1);
        sim.network_mut().heal_partition();
        sim.post(a, b, TestMsg::Ping(2));
        sim.run_until_idle();
        assert_eq!(sim.actor::<Collector>(a).expect("alive").pongs.len(), 1);
    }

    #[test]
    fn degraded_duplicates_are_counted() {
        // TestMsg does not implement clone_for_redelivery, so a planned
        // duplicate degrades to one late delivery — and is counted.
        let mut cfg = NetConfig::centurion();
        cfg.duplicate_rate = 1.0;
        let mut sim = Simulation::new(cfg, 12);
        sim.set_threads(1);
        let a = sim.spawn(NodeId::from_raw(0), Collector::default());
        let b = sim.spawn(NodeId::from_raw(1), Collector::default());
        sim.post(a, b, TestMsg::Pong(1));
        sim.run_until_idle();
        assert_eq!(sim.metrics().counter("sim.duplicates_planned"), 1);
        assert_eq!(sim.metrics().counter("sim.duplicates_degraded"), 1);
        let stats = sim.network().stats();
        assert_eq!(stats.duplicates_planned, 1);
        assert_eq!(stats.duplicates_degraded, 1);
        assert_eq!(
            sim.actor::<Collector>(b).expect("alive").pongs.len(),
            1,
            "degraded duplicate still delivers exactly once"
        );
    }

    #[test]
    fn identical_seeds_give_identical_traces() {
        let run = |seed: u64| -> Vec<(u32, SimTime)> {
            let mut sim = Simulation::new(NetConfig::centurion(), seed);
            sim.set_threads(1);
            let client = sim.spawn(NodeId::from_raw(0), Collector::default());
            let server = sim.spawn(NodeId::from_raw(1), Responder);
            for tag in 0..20 {
                sim.post(client, server, TestMsg::Ping(tag));
            }
            sim.run_until_idle();
            sim.actor::<Collector>(client).expect("alive").pongs.clone()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(
            run(42),
            run(43),
            "different seeds should jitter differently"
        );
    }
}

//! Simulated time.
//!
//! The simulator runs in virtual time with nanosecond resolution, so
//! seconds-scale distributed costs (downloads, binding timeouts) and
//! microsecond-scale dispatch overheads coexist in one clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, measured in nanoseconds from simulation
/// start.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: {earlier} is later than {self}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating instant addition.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative float factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5_000));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(3);
        assert_eq!(t.as_secs_f64(), 3.0);
        assert_eq!(
            t - SimTime::from_nanos(1_000_000_000),
            SimDuration::from_secs(2)
        );
        assert_eq!(t.duration_since(SimTime::ZERO), SimDuration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "later")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(4).to_string(), "4.000s");
        assert_eq!(
            SimTime::from_nanos(1_500_000_000).to_string(),
            "t+1.500000s"
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }
}

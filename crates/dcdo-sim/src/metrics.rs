//! Measurement collection for experiments.
//!
//! Counters count events; histograms collect sample distributions (latencies,
//! sizes) and report means and quantiles. The benchmark harness reads these
//! after a run to print the paper-style tables.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// A distribution of `f64` samples with quantile reporting.
///
/// Samples are kept raw (the experiments collect at most tens of thousands of
/// points), so quantiles are exact. The running sum, minimum, and maximum are
/// maintained incrementally on [`record`](Histogram::record), so
/// [`mean`](Histogram::mean), [`min`](Histogram::min), and
/// [`max`](Histogram::max) are O(1) even mid-run — the experiment drivers
/// poll them between batches without paying a rescan of the sample buffer.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Creates an empty histogram with capacity for `n` samples, avoiding
    /// buffer regrowth when the sample count is known up front.
    pub fn with_capacity(n: usize) -> Self {
        Histogram {
            samples: Vec::with_capacity(n),
            ..Histogram::default()
        }
    }

    /// Reserves capacity for at least `additional` more samples.
    pub fn reserve(&mut self, additional: usize) {
        self.samples.reserve(additional);
    }

    /// Records a sample.
    ///
    /// Non-finite samples (NaN, ±∞) are rejected — silently dropped — since
    /// they carry no usable measurement and would poison the running sum
    /// and the quantile sort. Count, mean, min, max, and quantiles reflect
    /// only the finite samples recorded.
    pub fn record(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        self.samples.push(sample);
        self.sorted = false;
        self.sum += sample;
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    /// Records a duration sample in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Returns the number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Returns the smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Returns the largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Returns the `q`-quantile (`0.0 ..= 1.0`) by nearest-rank, or `None` if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            // All samples are finite (`record` rejects non-finite), so
            // total_cmp agrees with the numeric order.
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Returns the median, or `None` if empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Returns the population standard deviation, or `None` if empty.
    ///
    /// Two-pass: the mean comes from the cached running sum (O(1)), then one
    /// sweep accumulates squared deviations — numerically stable without the
    /// per-record cost of Welford. A single sample yields `Some(0.0)`.
    /// Non-finite samples never enter the buffer
    /// ([`record`](Histogram::record) rejects them), so the result is always
    /// finite for a non-empty histogram.
    pub fn stddev(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len() as f64;
        let mean = self.sum / n;
        let var = self
            .samples
            .iter()
            .map(|s| {
                let d = s - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        Some(var.sqrt())
    }

    /// Returns a view of the raw samples, in insertion order unless a
    /// quantile has been computed (which sorts them).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Folds another histogram's samples into this one, as if every sample
    /// of `other` had been recorded here directly: count, min, max, and
    /// quantiles afterwards equal those of the union multiset. Used to
    /// aggregate per-shard metrics after a parallel run. (The mean is
    /// subject to the usual float-summation reordering — identical to many
    /// decimal places, not necessarily to the last bit.)
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        if !other.samples.is_empty() {
            self.sorted = false;
        }
        self.sum += other.sum;
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |s| s.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |s| s.max(m)));
        }
    }
}

/// A named collection of counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty metrics registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Returns the value of the named counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the named histogram.
    pub fn sample(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Records a duration sample (in seconds) into the named histogram.
    pub fn sample_duration(&mut self, name: &str, d: SimDuration) {
        self.sample(name, d.as_secs_f64());
    }

    /// Returns the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Returns the named histogram mutably (needed for quantiles), if any.
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Clears all counters and histograms.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }

    /// Folds another registry into this one: counters are summed, histograms
    /// are merged sample-by-sample (see [`Histogram::merge`]). Used to
    /// aggregate per-shard metrics after a parallel run.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (name, v) in &self.counters {
            writeln!(f, "  {name} = {v}")?;
        }
        writeln!(f, "histograms:")?;
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  {name}: n={} mean={:?} min={:?} max={:?}",
                h.count(),
                h.mean(),
                h.min(),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counters().collect::<Vec<_>>(), vec![("x", 5)]);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        for x in [4.0, 1.0, 3.0, 2.0, 5.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.median(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
    }

    #[test]
    fn running_statistics_survive_capacity_and_sorting() {
        let mut h = Histogram::with_capacity(8);
        h.reserve(100);
        assert!(h.samples.capacity() >= 100);
        for x in [2.0, -1.0, 7.0, 3.0] {
            h.record(x);
        }
        // Sorting for a quantile must not disturb the cached aggregates.
        assert_eq!(h.median(), Some(2.0));
        assert_eq!(h.mean(), Some(2.75));
        assert_eq!(h.min(), Some(-1.0));
        assert_eq!(h.max(), Some(7.0));
        h.record(-9.0);
        assert_eq!(h.min(), Some(-9.0));
        assert_eq!(h.max(), Some(7.0));
    }

    #[test]
    fn quantile_nearest_rank() {
        let mut h = Histogram::new();
        for x in 1..=100 {
            h.record(x as f64);
        }
        assert_eq!(h.quantile(0.25), Some(25.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let mut h = Histogram::new();
        h.record(1.0);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn duration_sampling() {
        let mut m = Metrics::new();
        m.sample_duration("lat", SimDuration::from_millis(250));
        let h = m.histogram("lat").expect("recorded");
        assert_eq!(h.count(), 1);
        assert!((h.mean().expect("nonempty") - 0.25).abs() < 1e-12);
        assert!(m.histogram("other").is_none());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("a");
        m.sample("b", 1.0);
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.histogram("b").is_none());
    }

    #[test]
    fn display_never_empty() {
        let m = Metrics::new();
        let s = m.to_string();
        assert!(s.contains("counters"));
    }

    #[test]
    fn stddev_known_values() {
        let mut h = Histogram::new();
        assert_eq!(h.stddev(), None);
        h.record(4.0);
        assert_eq!(h.stddev(), Some(0.0), "single sample has zero spread");
        // 2, 4, 4, 4, 5, 5, 7, 9: the classic example with σ = 2.
        let mut h = Histogram::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            h.record(x);
        }
        assert!((h.stddev().expect("nonempty") - 2.0).abs() < 1e-12);
        // Non-finite junk never reaches the buffer, so it cannot skew σ.
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!((h.stddev().expect("nonempty") - 2.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_iteration_is_sorted_by_name() {
        // The exporters rely on deterministic iteration: counters and
        // histograms come back in lexicographic name order regardless of
        // insertion order.
        let mut m = Metrics::new();
        for name in ["zeta", "alpha", "mid/sub", "mid", "Alpha"] {
            m.incr(name);
            m.sample(name, 1.0);
        }
        let counter_names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(
            counter_names,
            vec!["Alpha", "alpha", "mid", "mid/sub", "zeta"]
        );
        let histogram_names: Vec<&str> = m.histograms().map(|(k, _)| k).collect();
        assert_eq!(histogram_names, counter_names);
    }

    #[test]
    fn non_finite_samples_are_rejected() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        h.record(2.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(2.0));
        assert_eq!(h.median(), Some(2.0));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// The nearest-rank oracle: sort a copy, index directly.
        fn oracle_quantile(samples: &[f64], q: f64) -> f64 {
            let mut sorted = samples.to_vec();
            sorted.sort_by(f64::total_cmp);
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[rank.min(sorted.len() - 1)]
        }

        /// Naive from-scratch oracle for the standard deviation: recompute
        /// the mean directly from the samples (ignoring the histogram's
        /// cached running sum) and take the population variance.
        fn oracle_stddev(samples: &[f64]) -> f64 {
            let n = samples.len() as f64;
            let mean = samples.iter().sum::<f64>() / n;
            (samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n).sqrt()
        }

        proptest! {
            #[test]
            fn stddev_matches_naive_oracle(
                samples in prop::collection::vec(-1e6..1e6f64, 1..200),
            ) {
                let mut h = Histogram::new();
                for &s in &samples {
                    h.record(s);
                }
                let got = h.stddev().expect("nonempty");
                let want = oracle_stddev(&samples);
                prop_assert!(
                    (got - want).abs() <= 1e-9 * (1.0 + want),
                    "stddev {got} != oracle {want}"
                );
                prop_assert!(got.is_finite() && got >= 0.0);
            }

            #[test]
            fn quantile_matches_sort_oracle(
                samples in prop::collection::vec(-1e9..1e9f64, 1..200),
                q in 0.0..=1.0f64,
            ) {
                let mut h = Histogram::new();
                for &s in &samples {
                    h.record(s);
                }
                prop_assert_eq!(
                    h.quantile(q).expect("nonempty"),
                    oracle_quantile(&samples, q)
                );
            }

            #[test]
            fn quantiles_are_monotone_in_q(
                samples in prop::collection::vec(-1e6..1e6f64, 1..100),
                qs in prop::collection::vec(0.0..=1.0f64, 2..8),
            ) {
                let mut h = Histogram::new();
                for &s in &samples {
                    h.record(s);
                }
                let mut qs = qs;
                qs.sort_by(f64::total_cmp);
                let values: Vec<f64> =
                    qs.iter().map(|&q| h.quantile(q).expect("nonempty")).collect();
                for w in values.windows(2) {
                    prop_assert!(w[0] <= w[1], "quantiles must be monotone: {w:?}");
                }
            }

            #[test]
            fn running_aggregates_survive_interleaved_quantiles(
                batches in prop::collection::vec(
                    prop::collection::vec(-1e6..1e6f64, 1..20),
                    1..6,
                ),
            ) {
                // Interleave record batches with quantile calls (which sort
                // the buffer) and check the incremental sum/min/max always
                // match a from-scratch recomputation.
                let mut h = Histogram::new();
                let mut all: Vec<f64> = Vec::new();
                for batch in &batches {
                    for &s in batch {
                        h.record(s);
                        all.push(s);
                    }
                    let _ = h.median(); // forces a sort mid-run
                    let n = all.len() as f64;
                    let mean = all.iter().sum::<f64>() / n;
                    let min = all.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = all.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    prop_assert!((h.mean().expect("nonempty") - mean).abs() <= 1e-6 * n);
                    prop_assert_eq!(h.min().expect("nonempty"), min);
                    prop_assert_eq!(h.max().expect("nonempty"), max);
                    prop_assert_eq!(h.count(), all.len());
                }
            }

            #[test]
            fn merged_quantiles_match_recording_the_union(
                left in prop::collection::vec(-1e9..1e9f64, 0..150),
                right in prop::collection::vec(-1e9..1e9f64, 0..150),
                qs in prop::collection::vec(0.0..=1.0f64, 1..6),
            ) {
                // Merging two histograms must be indistinguishable (for
                // count/min/max/quantiles) from recording the union of
                // their samples into one histogram.
                let mut a = Histogram::new();
                for &s in &left {
                    a.record(s);
                }
                let mut b = Histogram::new();
                for &s in &right {
                    b.record(s);
                }
                let _ = a.quantile(0.5); // sort mid-way: merge must unsort
                let mut union = Histogram::new();
                for &s in left.iter().chain(right.iter()) {
                    union.record(s);
                }
                a.merge(&b);
                prop_assert_eq!(a.count(), union.count());
                prop_assert_eq!(a.min(), union.min());
                prop_assert_eq!(a.max(), union.max());
                for &q in &qs {
                    prop_assert_eq!(a.quantile(q), union.quantile(q));
                }
                if let (Some(got), Some(want)) = (a.mean(), union.mean()) {
                    prop_assert!((got - want).abs() <= 1e-6 * (1.0 + want.abs()));
                }
            }

            #[test]
            fn metrics_merge_sums_counters_and_merges_histograms(
                xs in prop::collection::vec(0u64..1000, 0..10),
                ys in prop::collection::vec(0u64..1000, 0..10),
                samples in prop::collection::vec(-1e6..1e6f64, 1..40),
            ) {
                let mut a = Metrics::new();
                let mut b = Metrics::new();
                for &x in &xs {
                    a.add("shared", x);
                }
                for &y in &ys {
                    b.add("shared", y);
                }
                b.incr("only_b");
                let (first, second) = samples.split_at(samples.len() / 2);
                for &s in first {
                    a.sample("lat", s);
                }
                for &s in second {
                    b.sample("lat", s);
                }
                a.merge(&b);
                prop_assert_eq!(
                    a.counter("shared"),
                    xs.iter().sum::<u64>() + ys.iter().sum::<u64>()
                );
                prop_assert_eq!(a.counter("only_b"), 1);
                let mut union = Histogram::new();
                for &s in &samples {
                    union.record(s);
                }
                let h = a.histogram_mut("lat").expect("merged");
                prop_assert_eq!(h.count(), union.count());
                prop_assert_eq!(h.quantile(0.9), union.quantile(0.9));
            }

            #[test]
            fn non_finite_samples_never_poison_statistics(
                finite in prop::collection::vec(-1e6..1e6f64, 1..50),
                junk_positions in prop::collection::vec(any::<usize>(), 0..10),
                junk_kind in prop::collection::vec(0u8..3, 0..10),
            ) {
                // Splice NaN/±inf into the stream at arbitrary positions:
                // every statistic must behave as if they were never recorded.
                let mut h = Histogram::new();
                let junk: Vec<(usize, f64)> = junk_positions
                    .iter()
                    .zip(junk_kind.iter().chain(std::iter::repeat(&0)))
                    .map(|(pos, kind)| {
                        let junk = match kind {
                            0 => f64::NAN,
                            1 => f64::INFINITY,
                            _ => f64::NEG_INFINITY,
                        };
                        (pos % finite.len(), junk)
                    })
                    .collect();
                for (i, &s) in finite.iter().enumerate() {
                    for (_, j) in junk.iter().filter(|(at, _)| *at == i) {
                        h.record(*j);
                    }
                    h.record(s);
                }
                prop_assert_eq!(h.count(), finite.len());
                prop_assert_eq!(
                    h.quantile(0.5).expect("nonempty"),
                    oracle_quantile(&finite, 0.5)
                );
                let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
                prop_assert_eq!(h.min().expect("nonempty"), min);
            }
        }
    }
}

//! Measurement collection for experiments.
//!
//! Counters count events; histograms collect sample distributions (latencies,
//! sizes) and report means and quantiles. The benchmark harness reads these
//! after a run to print the paper-style tables.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimDuration;

/// A distribution of `f64` samples with quantile reporting.
///
/// Samples are kept raw (the experiments collect at most tens of thousands of
/// points), so quantiles are exact. The running sum, minimum, and maximum are
/// maintained incrementally on [`record`](Histogram::record), so
/// [`mean`](Histogram::mean), [`min`](Histogram::min), and
/// [`max`](Histogram::max) are O(1) even mid-run — the experiment drivers
/// poll them between batches without paying a rescan of the sample buffer.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Creates an empty histogram with capacity for `n` samples, avoiding
    /// buffer regrowth when the sample count is known up front.
    pub fn with_capacity(n: usize) -> Self {
        Histogram {
            samples: Vec::with_capacity(n),
            ..Histogram::default()
        }
    }

    /// Reserves capacity for at least `additional` more samples.
    pub fn reserve(&mut self, additional: usize) {
        self.samples.reserve(additional);
    }

    /// Records a sample.
    pub fn record(&mut self, sample: f64) {
        self.samples.push(sample);
        self.sorted = false;
        self.sum += sample;
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    /// Records a duration sample in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Returns the number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Returns the smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Returns the largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Returns the `q`-quantile (`0.0 ..= 1.0`) by nearest-rank, or `None` if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Returns the median, or `None` if empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Returns a view of the raw samples, in insertion order unless a
    /// quantile has been computed (which sorts them).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A named collection of counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty metrics registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Returns the value of the named counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a sample into the named histogram.
    pub fn sample(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Records a duration sample (in seconds) into the named histogram.
    pub fn sample_duration(&mut self, name: &str, d: SimDuration) {
        self.sample(name, d.as_secs_f64());
    }

    /// Returns the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Returns the named histogram mutably (needed for quantiles), if any.
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Clears all counters and histograms.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (name, v) in &self.counters {
            writeln!(f, "  {name} = {v}")?;
        }
        writeln!(f, "histograms:")?;
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "  {name}: n={} mean={:?} min={:?} max={:?}",
                h.count(),
                h.mean(),
                h.min(),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counters().collect::<Vec<_>>(), vec![("x", 5)]);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        for x in [4.0, 1.0, 3.0, 2.0, 5.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.median(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
    }

    #[test]
    fn running_statistics_survive_capacity_and_sorting() {
        let mut h = Histogram::with_capacity(8);
        h.reserve(100);
        assert!(h.samples.capacity() >= 100);
        for x in [2.0, -1.0, 7.0, 3.0] {
            h.record(x);
        }
        // Sorting for a quantile must not disturb the cached aggregates.
        assert_eq!(h.median(), Some(2.0));
        assert_eq!(h.mean(), Some(2.75));
        assert_eq!(h.min(), Some(-1.0));
        assert_eq!(h.max(), Some(7.0));
        h.record(-9.0);
        assert_eq!(h.min(), Some(-9.0));
        assert_eq!(h.max(), Some(7.0));
    }

    #[test]
    fn quantile_nearest_rank() {
        let mut h = Histogram::new();
        for x in 1..=100 {
            h.record(x as f64);
        }
        assert_eq!(h.quantile(0.25), Some(25.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let mut h = Histogram::new();
        h.record(1.0);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn duration_sampling() {
        let mut m = Metrics::new();
        m.sample_duration("lat", SimDuration::from_millis(250));
        let h = m.histogram("lat").expect("recorded");
        assert_eq!(h.count(), 1);
        assert!((h.mean().expect("nonempty") - 0.25).abs() < 1e-12);
        assert!(m.histogram("other").is_none());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("a");
        m.sample("b", 1.0);
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.histogram("b").is_none());
    }

    #[test]
    fn display_never_empty() {
        let m = Metrics::new();
        let s = m.to_string();
        assert!(s.contains("counters"));
    }
}

//! The network model of the simulated testbed.
//!
//! Models a switched-Ethernet star (the paper's testbed: 16 nodes on
//! 100 Mbps switched Ethernet): per-message protocol overhead, link latency,
//! bandwidth serialization with per-node egress contention, and optional
//! fault injection (loss, duplication). Bulk data movement (implementation
//! downloads) uses the separate [`TransferModel`], calibrated to the
//! effective throughput Legion's file transfer achieved in the paper
//! (≈0.25 MB/s with ≈2 s fixed cost — derived from its own reported numbers:
//! 5.1 MB → 15–25 s, 550 KB → ≈4 s).

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a node (machine) of the simulated testbed network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the raw index.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

/// Configuration of the message-level network model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
    /// Link bandwidth in bits per second (100 Mbps on the Centurion testbed).
    pub bandwidth_bps: f64,
    /// Fixed protocol overhead charged per message (late-1990s RPC stack:
    /// marshalling, system calls, protocol processing).
    pub per_message_overhead: SimDuration,
    /// Delivery time for messages between objects on the same node.
    pub local_delivery: SimDuration,
    /// Probability that a message is silently dropped (fault injection).
    pub loss_rate: f64,
    /// Probability that a message is delivered twice (fault injection).
    pub duplicate_rate: f64,
    /// Fractional uniform jitter applied to the final delay (e.g. `0.05`).
    pub jitter_frac: f64,
}

impl NetConfig {
    /// The calibrated Centurion-testbed configuration used by the
    /// reproduction experiments (see DESIGN.md §6).
    pub fn centurion() -> Self {
        NetConfig {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 100e6,
            per_message_overhead: SimDuration::from_micros(200),
            local_delivery: SimDuration::from_micros(20),
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            jitter_frac: 0.05,
        }
    }

    /// A zero-latency, infinite-bandwidth configuration for unit tests that
    /// do not care about timing.
    pub fn instant() -> Self {
        NetConfig {
            latency: SimDuration::ZERO,
            bandwidth_bps: f64::INFINITY,
            per_message_overhead: SimDuration::ZERO,
            local_delivery: SimDuration::ZERO,
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            jitter_frac: 0.0,
        }
    }

    /// Returns the pure serialization time for `bytes` on one link.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_bps.is_infinite() {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::centurion()
    }
}

/// The outcome of offering a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryPlan {
    /// Deliver once at the given time.
    Deliver(SimTime),
    /// Deliver twice (duplicate fault) at the given times.
    DeliverTwice(SimTime, SimTime),
    /// The message was lost.
    Lost,
    /// The destination (or source) node is down or on the far side of a
    /// partition; the message is dropped before it touches the wire.
    Unreachable,
}

/// Message-level delivery counters, including fault-injection outcomes.
///
/// `duplicates_degraded` counts planned duplicates whose payload could not
/// be cloned ([`Payload::clone_for_redelivery`](crate::Payload) returned
/// `None`): the engine then delivers once at the later arrival time, and
/// this counter is the only witness that the second delivery was dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Total messages offered to the network.
    pub messages_sent: u64,
    /// Messages dropped by loss injection (global or per-link).
    pub messages_lost: u64,
    /// Messages planned for double delivery by duplicate injection.
    pub duplicates_planned: u64,
    /// Planned duplicates degraded to a single (late) delivery because the
    /// payload does not support redelivery cloning.
    pub duplicates_degraded: u64,
    /// Messages dropped because a node was down or partitioned away.
    pub unreachable: u64,
    /// Total payload bytes offered.
    pub bytes_sent: u64,
}

/// An additional fault on one directed link (ordered `(src, dst)` pair),
/// layered on top of the global [`NetConfig`] knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Extra drop probability applied to messages crossing the link.
    pub loss_rate: f64,
    /// Extra one-way latency added to messages crossing the link.
    pub extra_latency: SimDuration,
}

/// The message-level network: computes delivery times with egress-queue
/// contention and fault injection.
#[derive(Debug, Clone)]
pub struct Network {
    config: NetConfig,
    /// Per-node egress-queue free time, indexed by raw node id (node ids are
    /// small dense integers; a flat vector beats a map on the send path).
    egress_free: Vec<SimTime>,
    stats: NetStats,
    /// Per-node down flags, indexed by raw node id (nodes past the end are
    /// up). Empty in fault-free runs so liveness checks are a `Vec::get`.
    down: Vec<bool>,
    /// Partition group per node, indexed by raw node id; nodes past the end
    /// are in group 0. Empty (no partition) in fault-free runs.
    groups: Vec<u32>,
    /// Per-link fault overrides. Empty in fault-free runs, so the lookup
    /// (and any RNG draw it would gate) is skipped entirely.
    link_faults: HashMap<(u32, u32), LinkFault>,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(config: NetConfig) -> Self {
        Network {
            config,
            egress_free: Vec::new(),
            stats: NetStats::default(),
            down: Vec::new(),
            groups: Vec::new(),
            link_faults: HashMap::new(),
        }
    }

    /// Returns the active configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Replaces the configuration (used by fault-injection tests mid-run).
    pub fn set_config(&mut self, config: NetConfig) {
        self.config = config;
    }

    /// Plans the delivery of a `bytes`-sized message from `src` to `dst`
    /// offered at time `now`.
    ///
    /// Same-node messages are delivered after
    /// [`NetConfig::local_delivery`] and bypass contention and faults
    /// (a process on a down node cannot send at all, but the engine kills
    /// those actors at crash time, so the case never reaches the planner).
    pub fn plan(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        rng: &mut SimRng,
    ) -> DeliveryPlan {
        self.stats.messages_sent += 1;
        self.stats.bytes_sent += bytes;
        if src == dst {
            // Same-node messages bypass contention and faults entirely: no
            // RNG draws, so toggling fault knobs cannot shift local traffic.
            return DeliveryPlan::Deliver(now + self.config.local_delivery);
        }
        // Reachability is a pure lookup — no RNG draws — so crash/partition
        // support cannot shift the stream in fault-free runs.
        if !self.reachable(src, dst) {
            self.stats.unreachable += 1;
            return DeliveryPlan::Unreachable;
        }
        // Fault knobs at zero draw nothing from the RNG, so fault-free
        // configurations produce identical traces whether the knobs are
        // "disabled" or merely set to 0.0.
        if self.config.loss_rate > 0.0 && rng.chance(self.config.loss_rate) {
            self.stats.messages_lost += 1;
            return DeliveryPlan::Lost;
        }
        let mut extra_latency = SimDuration::ZERO;
        if !self.link_faults.is_empty() {
            if let Some(fault) = self.link_faults.get(&(src.0, dst.0)).copied() {
                if fault.loss_rate > 0.0 && rng.chance(fault.loss_rate) {
                    self.stats.messages_lost += 1;
                    return DeliveryPlan::Lost;
                }
                extra_latency = fault.extra_latency;
            }
        }
        let tx = self.config.per_message_overhead + self.config.serialization_time(bytes);
        let free = self
            .egress_free
            .get(src.0 as usize)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let egress_done = free.max(now) + tx;
        if !tx.is_zero() {
            // Zero-cost sends never push the free time past `now`, so the
            // store (and the vector growth) can be skipped for them.
            if self.egress_free.len() <= src.0 as usize {
                self.egress_free.resize(src.0 as usize + 1, SimTime::ZERO);
            }
            self.egress_free[src.0 as usize] = egress_done;
        }
        let mut delay = egress_done.duration_since(now) + self.config.latency + extra_latency;
        if self.config.jitter_frac > 0.0 {
            delay = rng.jitter(delay, self.config.jitter_frac);
        }
        let arrival = now + delay;
        if self.config.duplicate_rate > 0.0 && rng.chance(self.config.duplicate_rate) {
            self.stats.duplicates_planned += 1;
            let second = arrival + rng.duration_between(SimDuration::ZERO, self.config.latency * 4);
            DeliveryPlan::DeliverTwice(arrival, second)
        } else {
            DeliveryPlan::Deliver(arrival)
        }
    }

    /// Returns `true` iff both endpoints are up and in the same partition
    /// group. Same-node pairs are always reachable (checked by the caller's
    /// bypass; this method is also used directly by drivers).
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        if self.node_is_down(src) || self.node_is_down(dst) {
            return false;
        }
        self.group_of(src) == self.group_of(dst)
    }

    fn node_is_down(&self, node: NodeId) -> bool {
        self.down.get(node.0 as usize).copied().unwrap_or(false)
    }

    fn group_of(&self, node: NodeId) -> u32 {
        self.groups.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// Returns `true` if the node has not been marked down.
    pub fn is_node_up(&self, node: NodeId) -> bool {
        !self.node_is_down(node)
    }

    /// Marks a node down: traffic to or from it is dropped as unreachable.
    pub fn set_node_down(&mut self, node: NodeId) {
        let idx = node.0 as usize;
        if self.down.len() <= idx {
            self.down.resize(idx + 1, false);
        }
        self.down[idx] = true;
    }

    /// Marks a node up again.
    pub fn set_node_up(&mut self, node: NodeId) {
        if let Some(flag) = self.down.get_mut(node.0 as usize) {
            *flag = false;
        }
    }

    /// Installs a partition: the nodes of each listed group can talk among
    /// themselves but not across groups; unlisted nodes form an implicit
    /// group of their own (group 0). Replaces any previous partition.
    pub fn set_partition(&mut self, partition_groups: &[Vec<NodeId>]) {
        self.groups.clear();
        for (i, group) in partition_groups.iter().enumerate() {
            for node in group {
                let idx = node.0 as usize;
                if self.groups.len() <= idx {
                    self.groups.resize(idx + 1, 0);
                }
                self.groups[idx] = i as u32 + 1;
            }
        }
    }

    /// Heals any installed partition (node down flags are unaffected).
    pub fn heal_partition(&mut self) {
        self.groups.clear();
    }

    /// The active partition as group ids per raw node id (nodes past the
    /// end are in group 0; empty when no partition is installed). This is
    /// the representation the structured trace records so the invariant
    /// checker can replay reachability.
    pub fn partition_groups(&self) -> &[u32] {
        &self.groups
    }

    /// Installs (or replaces) a fault on the directed link `src -> dst`.
    pub fn set_link_fault(&mut self, src: NodeId, dst: NodeId, fault: LinkFault) {
        self.link_faults.insert((src.0, dst.0), fault);
    }

    /// Removes the fault on the directed link `src -> dst`, if any.
    pub fn clear_link_fault(&mut self, src: NodeId, dst: NodeId) {
        self.link_faults.remove(&(src.0, dst.0));
    }

    /// Delivery and fault counters accumulated so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// A conservative lower bound on the delay of any message that crosses
    /// a node boundary: no cross-node send planned at time `t` can arrive
    /// before `t + min_cross_delay()`. This is the lookahead window of the
    /// parallel engine. Jitter can only shrink the deterministic components
    /// by `jitter_frac`, and `mul_f64` rounds to nearest, so one extra
    /// nanosecond is shaved off to stay sound. Returns zero for
    /// instant-style configs (no usable lookahead — the parallel runner
    /// falls back to sequential execution).
    pub fn min_cross_delay(&self) -> SimDuration {
        let base = self.config.per_message_overhead + self.config.latency;
        if base.is_zero() {
            return SimDuration::ZERO;
        }
        base.mul_f64((1.0 - self.config.jitter_frac).max(0.0))
            .saturating_sub(SimDuration::from_nanos(1))
    }

    /// Clones this network for a shard of a parallel window: same
    /// configuration, topology (down flags, partition groups, link faults)
    /// and egress clocks, but zeroed counters so shard-local traffic can be
    /// summed back without double counting.
    pub(crate) fn fork_for_shard(&self) -> Network {
        let mut n = self.clone();
        n.stats = NetStats::default();
        n
    }

    /// Folds a shard's network back in after a parallel window: counters
    /// are summed, and the egress clocks of the nodes the shard owned
    /// (selected by `owns`) are copied back. Topology is not touched — it
    /// only changes at sequential barriers, where all shards share it.
    pub(crate) fn absorb_shard(&mut self, shard: &Network, owns: impl Fn(u32) -> bool) {
        self.stats.messages_sent += shard.stats.messages_sent;
        self.stats.messages_lost += shard.stats.messages_lost;
        self.stats.duplicates_planned += shard.stats.duplicates_planned;
        self.stats.duplicates_degraded += shard.stats.duplicates_degraded;
        self.stats.unreachable += shard.stats.unreachable;
        self.stats.bytes_sent += shard.stats.bytes_sent;
        for (idx, &t) in shard.egress_free.iter().enumerate() {
            if !owns(idx as u32) {
                continue;
            }
            if self.egress_free.len() <= idx {
                self.egress_free.resize(idx + 1, SimTime::ZERO);
            }
            self.egress_free[idx] = t;
        }
    }

    /// Records that a planned duplicate delivery was degraded to a single
    /// delivery (the payload could not be cloned). Called by the engine,
    /// which is the only place that knows the cloning outcome.
    pub fn note_duplicate_degraded(&mut self) {
        self.stats.duplicates_degraded += 1;
    }

    /// Total messages offered to the network.
    pub fn messages_sent(&self) -> u64 {
        self.stats.messages_sent
    }

    /// Messages dropped by loss injection.
    pub fn messages_lost(&self) -> u64 {
        self.stats.messages_lost
    }

    /// Total payload bytes offered.
    pub fn bytes_sent(&self) -> u64 {
        self.stats.bytes_sent
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::new(NetConfig::default())
    }
}

/// Bulk-transfer cost model for implementation downloads.
///
/// Legion moved implementations through its file-transfer path, which was far
/// slower than raw Ethernet; the paper's own numbers imply roughly
/// `t(bytes) = setup + bytes / throughput`. This model reproduces that.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransferModel {
    /// Fixed per-transfer setup cost (connection, naming, vault metadata).
    pub setup: SimDuration,
    /// Effective sustained throughput in bytes per second.
    pub throughput_bps: f64,
}

impl TransferModel {
    /// The calibrated Legion file-transfer model: 2 s setup + 256 KiB/s.
    ///
    /// Reproduces the paper: 5.1 MB → ≈22 s (paper: 15–25 s),
    /// 550 KB → ≈4.1 s (paper: ≈4 s).
    pub fn legion_file_transfer() -> Self {
        TransferModel {
            setup: SimDuration::from_secs(2),
            throughput_bps: 256.0 * 1024.0,
        }
    }

    /// An instantaneous transfer model for timing-agnostic tests.
    pub fn instant() -> Self {
        TransferModel {
            setup: SimDuration::ZERO,
            throughput_bps: f64::INFINITY,
        }
    }

    /// Returns the time to transfer `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        if self.throughput_bps.is_infinite() {
            return self.setup;
        }
        self.setup + SimDuration::from_secs_f64(bytes as f64 / self.throughput_bps)
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        TransferModel::legion_file_transfer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(plan: DeliveryPlan) -> SimTime {
        match plan {
            DeliveryPlan::Deliver(t) => t,
            DeliveryPlan::DeliverTwice(t, _) => t,
            DeliveryPlan::Lost => panic!("message lost"),
            DeliveryPlan::Unreachable => panic!("destination unreachable"),
        }
    }

    #[test]
    fn local_delivery_is_cheap_and_reliable() {
        let mut net = Network::new(NetConfig {
            loss_rate: 1.0,
            ..NetConfig::centurion()
        });
        let mut rng = SimRng::seed_from_u64(1);
        let n = NodeId::from_raw(0);
        let plan = net.plan(SimTime::ZERO, n, n, 1 << 20, &mut rng);
        assert_eq!(
            arrival(plan),
            SimTime::ZERO + NetConfig::centurion().local_delivery
        );
    }

    #[test]
    fn remote_delay_includes_overhead_latency_and_serialization() {
        let mut cfg = NetConfig::centurion();
        cfg.jitter_frac = 0.0;
        let mut net = Network::new(cfg.clone());
        let mut rng = SimRng::seed_from_u64(2);
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let bytes = 125_000; // 1 Mbit -> 10 ms at 100 Mbps
        let t = arrival(net.plan(SimTime::ZERO, a, b, bytes, &mut rng));
        let expected = cfg.per_message_overhead + cfg.serialization_time(bytes) + cfg.latency;
        assert_eq!(t, SimTime::ZERO + expected);
    }

    #[test]
    fn egress_contention_serializes_back_to_back_sends() {
        let mut cfg = NetConfig::centurion();
        cfg.jitter_frac = 0.0;
        let mut net = Network::new(cfg);
        let mut rng = SimRng::seed_from_u64(3);
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let t1 = arrival(net.plan(SimTime::ZERO, a, b, 1_000_000, &mut rng));
        let t2 = arrival(net.plan(SimTime::ZERO, a, b, 1_000_000, &mut rng));
        assert!(t2 > t1, "second send must queue behind the first");
    }

    #[test]
    fn infinite_bandwidth_means_zero_serialization() {
        assert_eq!(
            NetConfig::instant().serialization_time(u64::MAX),
            SimDuration::ZERO
        );
    }

    #[test]
    fn loss_injection_drops_messages() {
        let mut cfg = NetConfig::centurion();
        cfg.loss_rate = 1.0;
        let mut net = Network::new(cfg);
        let mut rng = SimRng::seed_from_u64(4);
        let plan = net.plan(
            SimTime::ZERO,
            NodeId::from_raw(0),
            NodeId::from_raw(1),
            100,
            &mut rng,
        );
        assert_eq!(plan, DeliveryPlan::Lost);
        assert_eq!(net.messages_lost(), 1);
    }

    #[test]
    fn duplicate_injection_delivers_twice() {
        let mut cfg = NetConfig::centurion();
        cfg.duplicate_rate = 1.0;
        let mut net = Network::new(cfg);
        let mut rng = SimRng::seed_from_u64(5);
        let plan = net.plan(
            SimTime::ZERO,
            NodeId::from_raw(0),
            NodeId::from_raw(1),
            100,
            &mut rng,
        );
        match plan {
            DeliveryPlan::DeliverTwice(a, b) => assert!(b >= a),
            other => panic!("expected duplicate delivery, got {other:?}"),
        }
    }

    #[test]
    fn transfer_model_matches_paper_calibration() {
        let m = TransferModel::legion_file_transfer();
        let t_5_1mb = m.transfer_time(5_100_000).as_secs_f64();
        let t_550kb = m.transfer_time(550_000).as_secs_f64();
        assert!((15.0..=25.0).contains(&t_5_1mb), "5.1MB -> {t_5_1mb}s");
        assert!((3.5..=4.5).contains(&t_550kb), "550KB -> {t_550kb}s");
    }

    #[test]
    fn network_accounting() {
        let mut net = Network::default();
        let mut rng = SimRng::seed_from_u64(6);
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        net.plan(SimTime::ZERO, a, b, 100, &mut rng);
        net.plan(SimTime::ZERO, a, a, 50, &mut rng);
        assert_eq!(net.messages_sent(), 2);
        assert_eq!(net.bytes_sent(), 150);
    }

    #[test]
    fn down_node_makes_traffic_unreachable_both_ways() {
        let mut net = Network::default();
        let mut rng = SimRng::seed_from_u64(7);
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        net.set_node_down(b);
        assert_eq!(
            net.plan(SimTime::ZERO, a, b, 10, &mut rng),
            DeliveryPlan::Unreachable
        );
        assert_eq!(
            net.plan(SimTime::ZERO, b, a, 10, &mut rng),
            DeliveryPlan::Unreachable
        );
        assert_eq!(net.stats().unreachable, 2);
        net.set_node_up(b);
        assert!(matches!(
            net.plan(SimTime::ZERO, a, b, 10, &mut rng),
            DeliveryPlan::Deliver(_)
        ));
    }

    #[test]
    fn partition_splits_and_heals() {
        let mut net = Network::default();
        let mut rng = SimRng::seed_from_u64(8);
        let nodes: Vec<NodeId> = (0..4).map(NodeId::from_raw).collect();
        net.set_partition(&[vec![nodes[0], nodes[1]], vec![nodes[2]]]);
        // Within a group: fine. Across: unreachable. Unlisted node 3 forms
        // its own implicit group.
        assert!(net.reachable(nodes[0], nodes[1]));
        assert!(!net.reachable(nodes[0], nodes[2]));
        assert!(!net.reachable(nodes[1], nodes[3]));
        assert!(net.reachable(nodes[3], nodes[3]));
        assert_eq!(
            net.plan(SimTime::ZERO, nodes[0], nodes[2], 10, &mut rng),
            DeliveryPlan::Unreachable
        );
        net.heal_partition();
        assert!(net.reachable(nodes[0], nodes[2]));
    }

    #[test]
    fn link_fault_drops_and_delays_one_direction_only() {
        // Zero overhead/serialization so repeated plans see no egress
        // contention and arrivals depend only on latency + link faults.
        let mut cfg = NetConfig::instant();
        cfg.latency = SimDuration::from_millis(1);
        let mut net = Network::new(cfg.clone());
        let mut rng = SimRng::seed_from_u64(9);
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        let base = arrival(net.plan(SimTime::ZERO, b, a, 0, &mut rng));
        net.set_link_fault(
            a,
            b,
            LinkFault {
                loss_rate: 1.0,
                extra_latency: SimDuration::ZERO,
            },
        );
        assert_eq!(
            net.plan(SimTime::ZERO, a, b, 0, &mut rng),
            DeliveryPlan::Lost,
            "a->b has the fault"
        );
        // The reverse direction is unaffected.
        assert_eq!(arrival(net.plan(SimTime::ZERO, b, a, 0, &mut rng)), base);
        // Latency spike instead of loss.
        net.set_link_fault(
            a,
            b,
            LinkFault {
                loss_rate: 0.0,
                extra_latency: SimDuration::from_millis(50),
            },
        );
        let spiked = arrival(net.plan(SimTime::ZERO, a, b, 0, &mut rng));
        assert_eq!(spiked, base + SimDuration::from_millis(50));
        net.clear_link_fault(a, b);
        assert_eq!(arrival(net.plan(SimTime::ZERO, a, b, 0, &mut rng)), base);
    }
}

//! Deterministic discrete-event testbed simulator.
//!
//! This crate stands in for the paper's evaluation testbed — the Legion
//! "Centurion" machine subset: 16 dual 400 MHz Pentium II nodes on 100 Mbps
//! switched Ethernet. It provides:
//!
//! - a virtual clock with nanosecond resolution ([`SimTime`], [`SimDuration`]);
//! - an actor-based event engine ([`Simulation`], [`Actor`], [`Ctx`]) with
//!   timers and deterministic `(time, seq)` event ordering;
//! - a calibrated network model ([`NetConfig`], [`Network`]) with per-message
//!   overhead, bandwidth serialization, egress contention, and optional
//!   loss/duplication fault injection;
//! - a bulk [`TransferModel`] calibrated to Legion's file-transfer
//!   throughput as implied by the paper's own numbers;
//! - seeded randomness ([`SimRng`]) and measurement collection ([`Metrics`],
//!   [`Histogram`]).
//!
//! Determinism: events are totally ordered by `(time, lane, sequence)` keys
//! minted from per-lane counters, and all jitter comes from per-lane seeded
//! generators split deterministically from the run seed — identical seeds
//! produce identical traces. The parallel sharded runner (enable with
//! [`Simulation::set_threads`], [`set_default_threads`], or
//! `DCDO_SIM_THREADS`) executes disjoint node shards concurrently under a
//! conservative network-latency lookahead and merges their logs back into
//! the exact sequential order: trace digests are byte-identical at every
//! thread count.
//!
//! # Examples
//!
//! ```
//! use dcdo_sim::{Actor, ActorId, Ctx, NetConfig, NodeId, Payload, SimDuration, Simulation};
//!
//! struct Tick;
//! impl Payload for Tick {}
//!
//! #[derive(Default)]
//! struct Clock {
//!     ticks: u32,
//! }
//!
//! impl Actor<Tick> for Clock {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Tick>, _from: ActorId, _msg: Tick) {
//!         ctx.schedule_timer(SimDuration::from_secs(1), 0);
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Tick>, _token: u64) {
//!         self.ticks += 1;
//!     }
//! }
//!
//! let mut sim = Simulation::new(NetConfig::instant(), 7);
//! let clock = sim.spawn(NodeId::from_raw(0), Clock::default());
//! sim.post(clock, clock, Tick);
//! sim.run_until_idle();
//! assert_eq!(sim.actor::<Clock>(clock).unwrap().ticks, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod metrics;
mod net;
mod parallel;
mod queue;
mod rng;
mod time;
mod timeline;
mod trace;

pub use engine::{Actor, ActorId, Ctx, Payload, Simulation, TimerId};
pub use metrics::{Histogram, Metrics};
pub use net::{DeliveryPlan, LinkFault, NetConfig, NetStats, Network, NodeId, TransferModel};
pub use parallel::set_default_threads;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use timeline::{Bucket, Timeline, WindowStats, DEFAULT_BUCKET_NS};
pub use trace::{Trace, TraceEntry, TraceEvent};

// The always-on flight recorder (see the `dcdo-trace` crate): re-exported
// alongside the engine that feeds it.
pub use dcdo_trace::{tail_sample, FlightDump, FlightFrame, FlightRecorder, RetainedFlow};

// Structured causal tracing (see the `dcdo-trace` crate): re-exported so
// layers above the engine can emit spans through [`Ctx`] without depending
// on the tracing crate directly.
pub use dcdo_trace::{
    check as check_trace_invariants, fn_hash, FlowKind, RpcOutcome, SendVerdict, SpanEvent, SpanId,
    SpanKind, TraceLog, Violation, NO_NODE,
};

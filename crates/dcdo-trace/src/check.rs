//! The trace-invariant checker: replays a finished log and verifies
//! system-wide conformance properties.
//!
//! Seven invariant classes are checked (see DESIGN.md §9 and §14):
//!
//! 1. **Delivery conformance** — no message is delivered to a node that the
//!    trace shows as crashed at delivery time, and no send is planned for
//!    delivery across a traced partition or toward a traced-down node.
//!    (In-flight messages sent *before* a partition may legally land after
//!    it; only the send-time verdict is checked against topology.)
//! 2. **Flow termination** — every `FlowStarted` meets a matching
//!    `FlowCompleted` or `FlowAborted`; flows never leak. A flow whose
//!    *owner's* node crashes dies with its actor and is not leaked
//!    (mirroring the retry-chain rule below).
//! 3. **Generation monotonicity** — `GenerationStamp`s are non-decreasing
//!    per object.
//! 4. **Retry-chain resolution** — every call with an `RpcAttempt`
//!    terminates in an `RpcCompleted` (success or a typed fault); chains
//!    never dangle. A chain whose *caller's* node crashes dies with the
//!    caller and is not dangling.
//! 5. **Recovery re-registration** — after a `Recover` flow starts for an
//!    object, the object serves no call until its binding is re-registered.
//! 6. **Epoch monotonicity** — committed epochs are strictly increasing per
//!    group, and each replica's adopted epoch is non-decreasing.
//! 7. **No mixed-epoch serving** — once an epoch commits, no replica of the
//!    group serves at an older epoch (stale replicas are fenced until they
//!    catch up).

use std::collections::HashMap;
use std::fmt;

use crate::log::TraceLog;
use crate::span::{FlowKind, SpanId, SpanKind};

/// One invariant violation found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A message was delivered to a node the trace shows as crashed.
    DeliveredToDeadNode {
        /// The offending event.
        span: SpanId,
        /// The dead destination node.
        dst_node: u32,
    },
    /// A send was planned for delivery although the traced topology says the
    /// endpoints cannot reach each other.
    SentAcrossFault {
        /// The offending event.
        span: SpanId,
        /// Source node of the send.
        src_node: u32,
        /// Destination node of the send.
        dst_node: u32,
    },
    /// A flow started but never completed or aborted.
    LeakedFlow {
        /// The leaked flow id.
        flow: u64,
        /// The object the flow concerned.
        object: u64,
    },
    /// A flow completed or aborted more than once, or without starting.
    SpuriousFlowEnd {
        /// The offending event.
        span: SpanId,
        /// The flow id.
        flow: u64,
    },
    /// An object's generation stamp went backwards.
    GenerationRegressed {
        /// The object.
        object: u64,
        /// The previously observed generation.
        from: u64,
        /// The regressed stamp.
        to: u64,
    },
    /// An RPC retry chain never terminated.
    DanglingRetryChain {
        /// The unresolved call id.
        call: u64,
    },
    /// A recovered object served a call before re-registering its binding.
    ServedBeforeReregister {
        /// The offending event.
        span: SpanId,
        /// The object that served too early.
        object: u64,
    },
    /// A group's epoch went backwards: a commit at or below the last
    /// committed epoch, or a replica adopting an epoch below one it already
    /// held.
    EpochRegressed {
        /// The offending event.
        span: SpanId,
        /// The group.
        group: u64,
        /// The previously observed epoch.
        from: u64,
        /// The regressed epoch.
        to: u64,
    },
    /// A replica served a call at an epoch older than the group's committed
    /// epoch: stale replicas must refuse to serve until they catch up.
    MixedEpochServing {
        /// The offending event.
        span: SpanId,
        /// The group.
        group: u64,
        /// The stale-serving replica.
        replica: u64,
        /// The epoch the call was served at.
        serving: u64,
        /// The group's committed epoch at serve time.
        committed: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DeliveredToDeadNode { span, dst_node } => {
                write!(f, "{span}: delivered to crashed node {dst_node}")
            }
            Violation::SentAcrossFault {
                span,
                src_node,
                dst_node,
            } => write!(
                f,
                "{span}: send {src_node}->{dst_node} planned for delivery across a traced fault"
            ),
            Violation::LeakedFlow { flow, object } => {
                write!(f, "flow {flow} (object {object}) never terminated")
            }
            Violation::SpuriousFlowEnd { span, flow } => {
                write!(f, "{span}: flow {flow} ended without being open")
            }
            Violation::GenerationRegressed { object, from, to } => {
                write!(f, "object {object}: generation regressed {from} -> {to}")
            }
            Violation::DanglingRetryChain { call } => {
                write!(f, "call {call}: retry chain never resolved")
            }
            Violation::ServedBeforeReregister { span, object } => {
                write!(
                    f,
                    "{span}: object {object} served a call before re-registering after recovery"
                )
            }
            Violation::EpochRegressed {
                span,
                group,
                from,
                to,
            } => {
                write!(f, "{span}: group {group}: epoch regressed {from} -> {to}")
            }
            Violation::MixedEpochServing {
                span,
                group,
                replica,
                serving,
                committed,
            } => write!(
                f,
                "{span}: group {group} replica {replica} served at epoch {serving} \
                 after epoch {committed} committed"
            ),
        }
    }
}

/// Replayed topology state: which nodes are down and how they are grouped.
#[derive(Default)]
struct Topology {
    down: HashMap<u32, bool>,
    groups: Vec<u32>,
}

impl Topology {
    fn is_down(&self, node: u32) -> bool {
        self.down.get(&node).copied().unwrap_or(false)
    }

    fn group_of(&self, node: u32) -> u32 {
        self.groups.get(node as usize).copied().unwrap_or(0)
    }

    fn reachable(&self, src: u32, dst: u32) -> bool {
        if src == dst {
            return true;
        }
        if self.is_down(src) || self.is_down(dst) {
            return false;
        }
        self.group_of(src) == self.group_of(dst)
    }
}

/// Replays a finished log and returns every invariant violation found, in
/// trace order (terminal "never happened" violations — leaked flows,
/// dangling retry chains — come last).
pub fn check(log: &TraceLog) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut topo = Topology::default();
    // flow id -> (object, open?, node the flow started on)
    let mut flows: HashMap<u64, (u64, bool, u32)> = HashMap::new();
    let mut generations: HashMap<u64, u64> = HashMap::new();
    // call id -> (resolved?, caller node of the latest attempt)
    let mut calls: HashMap<u64, (bool, u32)> = HashMap::new();
    // object -> recover flow awaiting re-registration
    let mut recovering: HashMap<u64, u64> = HashMap::new();
    // group -> last committed epoch
    let mut committed: HashMap<u64, u64> = HashMap::new();
    // (group, replica) -> last adopted epoch
    let mut adopted: HashMap<(u64, u64), u64> = HashMap::new();

    for e in log.events() {
        match &e.kind {
            SpanKind::NodeCrashed { node } => {
                topo.down.insert(*node, true);
                // Retry chains whose caller just died terminate with it.
                for (resolved, caller) in calls.values_mut() {
                    if *caller == *node {
                        *resolved = true;
                    }
                }
                // Flows die with the actor that owned them.
                for (_, open, owner) in flows.values_mut() {
                    if *owner == *node {
                        *open = false;
                    }
                }
            }
            SpanKind::NodeRestarted { node } => {
                topo.down.insert(*node, false);
            }
            SpanKind::PartitionChanged { groups } => {
                topo.groups = groups.clone();
            }
            SpanKind::PartitionHealed => {
                topo.groups.clear();
            }
            SpanKind::MsgSent {
                src_node,
                dst_node,
                verdict,
                ..
            } if verdict.delivers() && !topo.reachable(*src_node, *dst_node) => {
                violations.push(Violation::SentAcrossFault {
                    span: e.id,
                    src_node: *src_node,
                    dst_node: *dst_node,
                });
            }
            SpanKind::MsgDelivered { dst_node, .. } if topo.is_down(*dst_node) => {
                violations.push(Violation::DeliveredToDeadNode {
                    span: e.id,
                    dst_node: *dst_node,
                });
            }
            SpanKind::FlowStarted { flow, object, kind } => {
                flows.insert(*flow, (*object, true, e.node));
                if *kind == FlowKind::Recover {
                    recovering.insert(*object, *flow);
                }
            }
            SpanKind::FlowCompleted { flow } | SpanKind::FlowAborted { flow } => {
                match flows.get_mut(flow) {
                    Some((object, open, _)) if *open => {
                        *open = false;
                        // An aborted recovery no longer gates serving: the
                        // object stays dead until a fresh recovery flow runs.
                        if matches!(e.kind, SpanKind::FlowAborted { .. })
                            && recovering.get(object) == Some(flow)
                        {
                            recovering.remove(object);
                        }
                    }
                    _ => violations.push(Violation::SpuriousFlowEnd {
                        span: e.id,
                        flow: *flow,
                    }),
                }
            }
            SpanKind::GenerationStamp { object, generation } => {
                let last = generations.entry(*object).or_insert(*generation);
                if *generation < *last {
                    violations.push(Violation::GenerationRegressed {
                        object: *object,
                        from: *last,
                        to: *generation,
                    });
                } else {
                    *last = *generation;
                }
            }
            SpanKind::RpcAttempt { call, .. } => {
                let entry = calls.entry(*call).or_insert((false, e.node));
                entry.1 = e.node;
            }
            SpanKind::RpcCompleted { call, .. } => {
                calls.insert(*call, (true, e.node));
            }
            SpanKind::BindingRegistered { object, .. } => {
                recovering.remove(object);
            }
            SpanKind::CallServed { object, .. } if recovering.contains_key(object) => {
                violations.push(Violation::ServedBeforeReregister {
                    span: e.id,
                    object: *object,
                });
            }
            SpanKind::EpochCommitted { group, epoch, .. } => {
                match committed.get(group) {
                    // Commits must advance strictly: re-committing the same
                    // epoch would let two different configs claim one epoch.
                    Some(&last) if *epoch <= last => {
                        violations.push(Violation::EpochRegressed {
                            span: e.id,
                            group: *group,
                            from: last,
                            to: *epoch,
                        });
                    }
                    _ => {
                        committed.insert(*group, *epoch);
                    }
                }
            }
            SpanKind::ReplicaEpoch {
                group,
                replica,
                epoch,
            } => {
                let last = adopted.entry((*group, *replica)).or_insert(*epoch);
                // Adoption below the group's commit is legal (catch-up in
                // progress); only the replica's own history must not rewind.
                if *epoch < *last {
                    violations.push(Violation::EpochRegressed {
                        span: e.id,
                        group: *group,
                        from: *last,
                        to: *epoch,
                    });
                } else {
                    *last = *epoch;
                }
            }
            SpanKind::EpochServed {
                group,
                replica,
                epoch,
                ..
            } => {
                if let Some(&current) = committed.get(group) {
                    if *epoch < current {
                        violations.push(Violation::MixedEpochServing {
                            span: e.id,
                            group: *group,
                            replica: *replica,
                            serving: *epoch,
                            committed: current,
                        });
                    }
                }
            }
            _ => {}
        }
    }

    let mut leaked: Vec<(u64, u64)> = flows
        .iter()
        .filter(|(_, (_, open, _))| *open)
        .map(|(flow, (object, _, _))| (*flow, *object))
        .collect();
    leaked.sort_unstable();
    for (flow, object) in leaked {
        violations.push(Violation::LeakedFlow { flow, object });
    }

    let mut dangling: Vec<u64> = calls
        .iter()
        .filter(|(_, (resolved, _))| !*resolved)
        .map(|(call, _)| *call)
        .collect();
    dangling.sort_unstable();
    for call in dangling {
        violations.push(Violation::DanglingRetryChain { call });
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{RpcOutcome, SendVerdict, NO_NODE};

    fn log() -> TraceLog {
        let mut l = TraceLog::new();
        l.enable();
        l
    }

    fn sent(src_node: u32, dst_node: u32, verdict: SendVerdict) -> SpanKind {
        SpanKind::MsgSent {
            src: 0,
            dst: 1,
            src_node,
            dst_node,
            verdict,
            bytes: 64,
        }
    }

    #[test]
    fn clean_log_has_no_violations() {
        let mut l = log();
        let f = SpanKind::FlowStarted {
            flow: 1,
            object: 9,
            kind: FlowKind::Update,
        };
        l.emit(0, 0, None, f);
        l.emit(
            1,
            0,
            None,
            SpanKind::RpcAttempt {
                call: 5,
                object: 9,
                attempt: 1,
                dst: 2,
            },
        );
        l.emit(2, 0, None, sent(0, 1, SendVerdict::Sent));
        l.emit(
            3,
            1,
            None,
            SpanKind::MsgDelivered {
                src: 0,
                dst: 1,
                dst_node: 1,
            },
        );
        l.emit(
            4,
            0,
            None,
            SpanKind::RpcCompleted {
                call: 5,
                outcome: RpcOutcome::Ok,
            },
        );
        l.emit(
            5,
            0,
            None,
            SpanKind::GenerationStamp {
                object: 9,
                generation: 3,
            },
        );
        l.emit(
            6,
            0,
            None,
            SpanKind::GenerationStamp {
                object: 9,
                generation: 4,
            },
        );
        l.emit(7, 0, None, SpanKind::FlowCompleted { flow: 1 });
        assert_eq!(check(&l), vec![]);
    }

    #[test]
    fn catches_delivery_to_dead_node() {
        let mut l = log();
        l.emit(0, NO_NODE, None, SpanKind::NodeCrashed { node: 3 });
        l.emit(
            1,
            3,
            None,
            SpanKind::MsgDelivered {
                src: 0,
                dst: 1,
                dst_node: 3,
            },
        );
        assert!(matches!(
            check(&l)[..],
            [Violation::DeliveredToDeadNode { dst_node: 3, .. }]
        ));
        // After a restart the same delivery is fine.
        let mut l2 = log();
        l2.emit(0, NO_NODE, None, SpanKind::NodeCrashed { node: 3 });
        l2.emit(1, NO_NODE, None, SpanKind::NodeRestarted { node: 3 });
        l2.emit(
            2,
            3,
            None,
            SpanKind::MsgDelivered {
                src: 0,
                dst: 1,
                dst_node: 3,
            },
        );
        assert_eq!(check(&l2), vec![]);
    }

    #[test]
    fn catches_send_planned_across_partition() {
        let mut l = log();
        l.emit(
            0,
            NO_NODE,
            None,
            SpanKind::PartitionChanged { groups: vec![1, 2] },
        );
        l.emit(1, 0, None, sent(0, 1, SendVerdict::Sent));
        assert!(matches!(
            check(&l)[..],
            [Violation::SentAcrossFault {
                src_node: 0,
                dst_node: 1,
                ..
            }]
        ));
        // The honest verdict is fine, and so is a send after healing.
        let mut l2 = log();
        l2.emit(
            0,
            NO_NODE,
            None,
            SpanKind::PartitionChanged { groups: vec![1, 2] },
        );
        l2.emit(1, 0, None, sent(0, 1, SendVerdict::Unreachable));
        l2.emit(2, NO_NODE, None, SpanKind::PartitionHealed);
        l2.emit(3, 0, None, sent(0, 1, SendVerdict::Sent));
        assert_eq!(check(&l2), vec![]);
    }

    #[test]
    fn catches_leaked_flow() {
        let mut l = log();
        l.emit(
            0,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 42,
                object: 7,
                kind: FlowKind::Checkpoint,
            },
        );
        assert_eq!(
            check(&l),
            vec![Violation::LeakedFlow {
                flow: 42,
                object: 7
            }]
        );
    }

    #[test]
    fn flow_dies_with_its_owners_node() {
        // A flow whose owner node crashes is not leaked — its actor (and the
        // flow state with it) died. A flow on a surviving node still leaks.
        let mut l = log();
        l.emit(
            0,
            3,
            None,
            SpanKind::FlowStarted {
                flow: 42,
                object: 7,
                kind: FlowKind::Config,
            },
        );
        l.emit(
            1,
            5,
            None,
            SpanKind::FlowStarted {
                flow: 43,
                object: 8,
                kind: FlowKind::Update,
            },
        );
        l.emit(2, NO_NODE, None, SpanKind::NodeCrashed { node: 3 });
        assert_eq!(
            check(&l),
            vec![Violation::LeakedFlow {
                flow: 43,
                object: 8
            }]
        );
    }

    #[test]
    fn catches_double_flow_end() {
        let mut l = log();
        l.emit(
            0,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 1,
                object: 7,
                kind: FlowKind::Create,
            },
        );
        l.emit(1, 0, None, SpanKind::FlowCompleted { flow: 1 });
        l.emit(2, 0, None, SpanKind::FlowAborted { flow: 1 });
        assert!(matches!(
            check(&l)[..],
            [Violation::SpuriousFlowEnd { flow: 1, .. }]
        ));
    }

    #[test]
    fn catches_generation_regression() {
        let mut l = log();
        l.emit(
            0,
            0,
            None,
            SpanKind::GenerationStamp {
                object: 7,
                generation: 10,
            },
        );
        l.emit(
            1,
            0,
            None,
            SpanKind::GenerationStamp {
                object: 7,
                generation: 9,
            },
        );
        // A different object at a lower generation is not a regression.
        l.emit(
            2,
            0,
            None,
            SpanKind::GenerationStamp {
                object: 8,
                generation: 1,
            },
        );
        assert_eq!(
            check(&l),
            vec![Violation::GenerationRegressed {
                object: 7,
                from: 10,
                to: 9
            }]
        );
    }

    #[test]
    fn catches_dangling_retry_chain() {
        let mut l = log();
        for attempt in 1..=3 {
            l.emit(
                attempt as u64,
                0,
                None,
                SpanKind::RpcAttempt {
                    call: 77,
                    object: 9,
                    attempt,
                    dst: 2,
                },
            );
        }
        assert_eq!(check(&l), vec![Violation::DanglingRetryChain { call: 77 }]);
        // A typed Unreachable terminal resolves the chain.
        l.emit(
            4,
            0,
            None,
            SpanKind::RpcCompleted {
                call: 77,
                outcome: RpcOutcome::Unreachable,
            },
        );
        assert_eq!(check(&l), vec![]);
    }

    #[test]
    fn caller_crash_terminates_its_retry_chains() {
        // The caller on node 4 dies mid-chain: the chain dies with it and
        // is not dangling. A chain from a surviving node still is.
        let mut l = log();
        l.emit(
            0,
            4,
            None,
            SpanKind::RpcAttempt {
                call: 70,
                object: 9,
                attempt: 1,
                dst: 2,
            },
        );
        l.emit(
            1,
            0,
            None,
            SpanKind::RpcAttempt {
                call: 71,
                object: 9,
                attempt: 1,
                dst: 2,
            },
        );
        l.emit(2, NO_NODE, None, SpanKind::NodeCrashed { node: 4 });
        assert_eq!(check(&l), vec![Violation::DanglingRetryChain { call: 71 }]);
    }

    #[test]
    fn catches_serving_before_reregistration() {
        let mut l = log();
        l.emit(
            0,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 1,
                object: 7,
                kind: FlowKind::Recover,
            },
        );
        l.emit(1, 0, None, SpanKind::CallServed { object: 7, call: 5 });
        l.emit(
            2,
            0,
            None,
            SpanKind::BindingRegistered { object: 7, dst: 3 },
        );
        l.emit(3, 0, None, SpanKind::CallServed { object: 7, call: 6 });
        l.emit(4, 0, None, SpanKind::FlowCompleted { flow: 1 });
        assert!(matches!(
            check(&l)[..],
            [Violation::ServedBeforeReregister { object: 7, .. }]
        ));
    }

    #[test]
    fn catches_epoch_regression() {
        // Negative control: a planted commit regression must surface as the
        // exact typed violation.
        let mut l = log();
        l.emit(
            0,
            0,
            None,
            SpanKind::EpochCommitted {
                group: 7,
                epoch: 3,
                config: 0xa,
            },
        );
        l.emit(
            1,
            0,
            None,
            SpanKind::EpochCommitted {
                group: 7,
                epoch: 2,
                config: 0xb,
            },
        );
        // A different group at a lower epoch is independent, not a
        // regression.
        l.emit(
            2,
            0,
            None,
            SpanKind::EpochCommitted {
                group: 8,
                epoch: 1,
                config: 0xc,
            },
        );
        assert!(matches!(
            check(&l)[..],
            [Violation::EpochRegressed {
                group: 7,
                from: 3,
                to: 2,
                ..
            }]
        ));
        // Re-committing the SAME epoch is also a regression: two configs
        // must never claim one epoch.
        let mut l2 = log();
        for config in [0xa, 0xb] {
            l2.emit(
                config,
                0,
                None,
                SpanKind::EpochCommitted {
                    group: 7,
                    epoch: 3,
                    config,
                },
            );
        }
        assert!(matches!(
            check(&l2)[..],
            [Violation::EpochRegressed {
                group: 7,
                from: 3,
                to: 3,
                ..
            }]
        ));
    }

    #[test]
    fn catches_replica_epoch_rewind() {
        let mut l = log();
        for epoch in [4, 5, 3] {
            l.emit(
                epoch,
                1,
                None,
                SpanKind::ReplicaEpoch {
                    group: 7,
                    replica: 1,
                    epoch,
                },
            );
        }
        assert!(matches!(
            check(&l)[..],
            [Violation::EpochRegressed {
                group: 7,
                from: 5,
                to: 3,
                ..
            }]
        ));
    }

    #[test]
    fn catches_mixed_epoch_serving() {
        // Negative control: replica 2 keeps serving at epoch 1 after the
        // group committed epoch 2 — the exact typed violation must surface.
        let mut l = log();
        l.emit(
            0,
            2,
            None,
            SpanKind::EpochServed {
                group: 7,
                replica: 2,
                epoch: 1,
                call: 100,
            },
        );
        l.emit(
            1,
            0,
            None,
            SpanKind::EpochCommitted {
                group: 7,
                epoch: 2,
                config: 0xa,
            },
        );
        l.emit(
            2,
            2,
            None,
            SpanKind::EpochServed {
                group: 7,
                replica: 2,
                epoch: 1,
                call: 101,
            },
        );
        assert!(matches!(
            check(&l)[..],
            [Violation::MixedEpochServing {
                group: 7,
                replica: 2,
                serving: 1,
                committed: 2,
                ..
            }]
        ));
        // Serving at the committed epoch (a caught-up replica) is clean.
        let mut l2 = log();
        l2.emit(
            0,
            0,
            None,
            SpanKind::EpochCommitted {
                group: 7,
                epoch: 2,
                config: 0xa,
            },
        );
        l2.emit(
            1,
            2,
            None,
            SpanKind::ReplicaEpoch {
                group: 7,
                replica: 2,
                epoch: 2,
            },
        );
        l2.emit(
            2,
            2,
            None,
            SpanKind::EpochServed {
                group: 7,
                replica: 2,
                epoch: 2,
                call: 100,
            },
        );
        assert_eq!(check(&l2), vec![]);
    }

    #[test]
    fn aborted_recovery_stops_gating_service() {
        let mut l = log();
        l.emit(
            0,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 1,
                object: 7,
                kind: FlowKind::Recover,
            },
        );
        l.emit(1, 0, None, SpanKind::FlowAborted { flow: 1 });
        l.emit(2, 0, None, SpanKind::CallServed { object: 7, call: 5 });
        assert_eq!(check(&l), vec![]);
    }
}

//! Offline exporters: Chrome-trace JSON and JSONL.
//!
//! Both formats are hand-rendered: every field is an integer or a static
//! name, so no serialization framework is needed and the output is
//! byte-stable across builds.

use std::fmt::Write as _;

use crate::log::TraceLog;
use crate::span::{SpanEvent, SpanKind};

impl TraceLog {
    /// Renders the log as a Chrome-trace (`chrome://tracing`, Perfetto)
    /// JSON document of instant events.
    ///
    /// Nodes map to `pid`, actors-or-node to `tid`, and the causal parent
    /// plus all typed fields land in `args`. Timestamps are microseconds as
    /// Chrome expects; sub-microsecond structure is preserved in
    /// `args.at_ns`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(128 + self.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts_us = e.at_ns / 1_000;
            let ts_frac = e.at_ns % 1_000;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{}.{:03},\"pid\":{},\"tid\":0,\"args\":{{\"span\":{},\"parent\":{},\"at_ns\":{}",
                e.kind.name(),
                ts_us,
                ts_frac,
                e.node,
                e.id.as_raw(),
                e.parent.map_or(0, |p| p.as_raw()),
                e.at_ns,
            );
            write_fields(&mut out, e);
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the log as JSON Lines: one object per event, emit order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.len() * 96);
        for e in self.events() {
            let _ = write!(
                out,
                "{{\"span\":{},\"parent\":{},\"at_ns\":{},\"node\":{},\"kind\":\"{}\"",
                e.id.as_raw(),
                e.parent.map_or(0, |p| p.as_raw()),
                e.at_ns,
                e.node,
                e.kind.name(),
            );
            write_fields(&mut out, e);
            out.push_str("}\n");
        }
        out
    }
}

/// Appends `,"field":value` pairs (and the partition group array) to a JSON
/// object under construction.
fn write_fields(out: &mut String, e: &SpanEvent) {
    for (name, value) in e.kind.fields() {
        let _ = write!(out, ",\"{name}\":{value}");
    }
    if let SpanKind::PartitionChanged { groups } = &e.kind {
        out.push_str(",\"groups\":[");
        for (i, g) in groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{g}");
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SendVerdict;

    fn tiny_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.enable();
        let sent = log.emit(
            1_500,
            0,
            None,
            SpanKind::MsgSent {
                src: 1,
                dst: 2,
                src_node: 0,
                dst_node: 1,
                verdict: SendVerdict::Sent,
            },
        );
        log.emit(
            3_000,
            1,
            sent,
            SpanKind::MsgDelivered {
                src: 1,
                dst: 2,
                dst_node: 1,
            },
        );
        log.emit(
            4_000,
            u32::MAX,
            None,
            SpanKind::PartitionChanged {
                groups: vec![1, 1, 2],
            },
        );
        log
    }

    #[test]
    fn chrome_trace_shape() {
        let json = tiny_log().to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"msg_sent\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"parent\":1"));
        assert!(json.contains("\"groups\":[1,1,2]"));
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let text = tiny_log().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"msg_sent\""));
        assert!(lines[1].contains("\"parent\":1"));
        assert!(lines[2].contains("\"groups\":[1,1,2]"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn exports_are_deterministic() {
        assert_eq!(tiny_log().to_chrome_trace(), tiny_log().to_chrome_trace());
        assert_eq!(tiny_log().to_jsonl(), tiny_log().to_jsonl());
    }
}

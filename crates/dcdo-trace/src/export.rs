//! Offline exporters: Chrome-trace JSON and JSONL.
//!
//! Both formats are hand-rendered: every field is an integer or a static
//! name, so no serialization framework is needed and the output is
//! byte-stable across builds.

use std::fmt::Write as _;

use crate::log::TraceLog;
use crate::span::{SpanEvent, SpanKind};

impl TraceLog {
    /// Renders the log as a Chrome-trace (`chrome://tracing`, Perfetto)
    /// JSON document of instant events.
    ///
    /// Nodes map to `pid`, actors-or-node to `tid`, and the causal parent
    /// plus all typed fields land in `args`. Timestamps are microseconds as
    /// Chrome expects; sub-microsecond structure is preserved in
    /// `args.at_ns`.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(128 + self.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts_us = e.at_ns / 1_000;
            let ts_frac = e.at_ns % 1_000;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{}.{:03},\"pid\":{},\"tid\":0,\"args\":{{\"span\":{},\"parent\":{},\"at_ns\":{}",
                e.kind.name(),
                ts_us,
                ts_frac,
                e.node,
                e.id.as_raw(),
                e.parent.map_or(0, |p| p.as_raw()),
                e.at_ns,
            );
            write_fields(&mut out, e);
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Renders the log as JSON Lines: one object per event, emit order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.len() * 96);
        for e in self.events() {
            let _ = write!(
                out,
                "{{\"span\":{},\"parent\":{},\"at_ns\":{},\"node\":{},\"kind\":\"{}\"",
                e.id.as_raw(),
                e.parent.map_or(0, |p| p.as_raw()),
                e.at_ns,
                e.node,
                e.kind.name(),
            );
            write_fields(&mut out, e);
            out.push_str("}\n");
        }
        out
    }
}

/// Appends `,"field":value` pairs (and the partition group array) to a JSON
/// object under construction.
fn write_fields(out: &mut String, e: &SpanEvent) {
    for (name, value) in e.kind.fields() {
        let _ = write!(out, ",\"{name}\":{value}");
    }
    if let SpanKind::PartitionChanged { groups } = &e.kind {
        out.push_str(",\"groups\":[");
        for (i, g) in groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{g}");
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SendVerdict;

    fn tiny_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.enable();
        let sent = log.emit(
            1_500,
            0,
            None,
            SpanKind::MsgSent {
                src: 1,
                dst: 2,
                src_node: 0,
                dst_node: 1,
                verdict: SendVerdict::Sent,
                bytes: 128,
            },
        );
        log.emit(
            3_000,
            1,
            sent,
            SpanKind::MsgDelivered {
                src: 1,
                dst: 2,
                dst_node: 1,
            },
        );
        log.emit(
            4_000,
            u32::MAX,
            None,
            SpanKind::PartitionChanged {
                groups: vec![1, 1, 2],
            },
        );
        log
    }

    #[test]
    fn chrome_trace_shape() {
        let json = tiny_log().to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"msg_sent\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"parent\":1"));
        assert!(json.contains("\"groups\":[1,1,2]"));
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let text = tiny_log().to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"msg_sent\""));
        assert!(lines[1].contains("\"parent\":1"));
        assert!(lines[2].contains("\"groups\":[1,1,2]"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn exports_are_deterministic() {
        assert_eq!(tiny_log().to_chrome_trace(), tiny_log().to_chrome_trace());
        assert_eq!(tiny_log().to_jsonl(), tiny_log().to_jsonl());
    }

    /// A minimal JSON value for the round-trip test below. The exporter
    /// emits only objects, arrays, numbers, and escape-free strings, so a
    /// tiny recursive-descent parser is enough to validate the output
    /// without a serialization framework.
    #[derive(Debug, Clone, PartialEq)]
    enum Json {
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        fn num(&self) -> f64 {
            match self {
                Json::Num(n) => *n,
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn new(text: &'a str) -> Self {
            Parser {
                bytes: text.as_bytes(),
                pos: 0,
            }
        }

        fn peek(&self) -> u8 {
            self.bytes[self.pos]
        }

        fn bump(&mut self) -> u8 {
            let b = self.bytes[self.pos];
            self.pos += 1;
            b
        }

        fn expect(&mut self, b: u8) {
            assert_eq!(self.bump(), b, "malformed JSON at byte {}", self.pos - 1);
        }

        fn value(&mut self) -> Json {
            match self.peek() {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Json::Str(self.string()),
                _ => self.number(),
            }
        }

        fn object(&mut self) -> Json {
            self.expect(b'{');
            let mut pairs = Vec::new();
            if self.peek() == b'}' {
                self.bump();
                return Json::Obj(pairs);
            }
            loop {
                let key = self.string();
                self.expect(b':');
                pairs.push((key, self.value()));
                match self.bump() {
                    b',' => continue,
                    b'}' => break,
                    other => panic!("unexpected byte {other} in object"),
                }
            }
            Json::Obj(pairs)
        }

        fn array(&mut self) -> Json {
            self.expect(b'[');
            let mut items = Vec::new();
            if self.peek() == b']' {
                self.bump();
                return Json::Arr(items);
            }
            loop {
                items.push(self.value());
                match self.bump() {
                    b',' => continue,
                    b']' => break,
                    other => panic!("unexpected byte {other} in array"),
                }
            }
            Json::Arr(items)
        }

        fn string(&mut self) -> String {
            self.expect(b'"');
            let start = self.pos;
            while self.peek() != b'"' {
                assert_ne!(self.peek(), b'\\', "exporter never emits escapes");
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.bytes[start..self.pos])
                .expect("utf8")
                .to_string();
            self.bump();
            s
        }

        fn number(&mut self) -> Json {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && matches!(self.peek(), b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E')
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8");
            Json::Num(text.parse().expect("number"))
        }
    }

    /// A log with causal structure across two nodes, for the round-trip
    /// test: a flow whose message fan-out nests three levels deep.
    fn causal_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.enable();
        let root = log.emit(
            1_000,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 9,
                object: 42,
                kind: crate::FlowKind::Migrate,
            },
        );
        let sent = log.emit(
            2_500,
            0,
            root,
            SpanKind::MsgSent {
                src: 1,
                dst: 2,
                src_node: 0,
                dst_node: 1,
                verdict: SendVerdict::Sent,
                bytes: 64,
            },
        );
        let delivered = log.emit(
            7_250,
            1,
            sent,
            SpanKind::MsgDelivered {
                src: 1,
                dst: 2,
                dst_node: 1,
            },
        );
        log.emit(
            7_250,
            1,
            delivered,
            SpanKind::TimerFired { actor: 2, token: 3 },
        );
        log.emit(9_000, 0, root, SpanKind::FlowCompleted { flow: 9 });
        log
    }

    #[test]
    fn chrome_trace_round_trips() {
        let log = causal_log();
        let doc = Parser::new(&log.to_chrome_trace()).value();
        let events = match doc.get("traceEvents") {
            Some(Json::Arr(items)) => items,
            other => panic!("missing traceEvents array: {other:?}"),
        };
        assert_eq!(events.len(), log.len());

        // `ts` values are monotone non-decreasing per (pid, tid) track.
        let mut last_ts: std::collections::HashMap<(u64, u64), f64> =
            std::collections::HashMap::new();
        for e in events {
            let pid = e.get("pid").expect("pid").num() as u64;
            let tid = e.get("tid").expect("tid").num() as u64;
            let ts = e.get("ts").expect("ts").num();
            let prev = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
            assert!(ts >= *prev, "ts regressed on track ({pid},{tid})");
            *prev = ts;
        }

        // Parent/child nesting is well-formed: every nonzero parent refers
        // to an exported span with a smaller id and an earlier-or-equal
        // timestamp.
        let mut at_ns_by_span: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for e in events {
            let args = e.get("args").expect("args");
            let span = args.get("span").expect("span").num() as u64;
            let at_ns = args.get("at_ns").expect("at_ns").num() as u64;
            at_ns_by_span.insert(span, at_ns);
        }
        for e in events {
            let args = e.get("args").expect("args");
            let span = args.get("span").expect("span").num() as u64;
            let parent = args.get("parent").expect("parent").num() as u64;
            if parent != 0 {
                assert!(parent < span, "parent id must precede child id");
                let parent_at = at_ns_by_span
                    .get(&parent)
                    .expect("parent span was exported");
                let child_at = at_ns_by_span[&span];
                assert!(*parent_at <= child_at, "child precedes its parent");
            }
        }
    }
}

//! Structured causal tracing for the DCDO reproduction stack.
//!
//! The simulator's original [`Trace`](../dcdo_sim/trace/index.html) is a flat
//! ring of engine-level delivery events; it answers "what happened" but not
//! "why". This crate adds a second, richer channel: every interesting action
//! — message send/deliver/drop, RPC attempt/retry/timeout, binding
//! hit/invalidation, manager flow step, chaos fault — emits a typed
//! [`SpanKind`] recorded as a [`SpanEvent`] in a per-run [`TraceLog`]. Each
//! event carries a causal parent (the span of the event whose handler emitted
//! it), the simulated time, and the node it happened on, so a finished log is
//! a causal forest over the whole run.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** [`TraceLog::emit`] is a single branch on a
//!    bool when tracing is off; callers never allocate or format eagerly.
//! 2. **Deterministic.** Span ids are dense sequence numbers in emit order;
//!    every field is an integer. Two runs with the same seed produce
//!    byte-identical logs, and [`TraceLog::digest`] is stable across
//!    debug/release builds because no floats ever enter the hash.
//! 3. **Checkable.** [`check`] replays a finished log and verifies
//!    system-wide conformance invariants (no delivery to a dead node, flows
//!    terminate, generations are monotone, retry chains resolve, recovered
//!    objects re-register before serving).
//!
//! This crate sits below `dcdo-sim` in the dependency order, so identifiers
//! are raw integers (`u32` actors/nodes, `u64` objects/calls/flows); the
//! simulator and the layers above convert their newtypes at the emit site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod check;
mod export;
mod flight;
mod log;
mod span;

pub use check::{check, Violation};
pub use flight::{
    tail_sample, FlightDump, FlightFrame, FlightRecorder, RetainedFlow, DEFAULT_FLIGHT_CAPACITY,
};
pub use log::{fn_hash, TraceLog};
pub use span::{FlowKind, RpcOutcome, SendVerdict, SpanEvent, SpanId, SpanKind, NO_NODE};

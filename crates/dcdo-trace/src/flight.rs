//! The always-on flight recorder: a bounded ring of compact event frames
//! plus tail sampling over a finished span log.
//!
//! Full span tracing ([`TraceLog`]) costs multiples of the base event rate
//! when enabled, so it stays opt-in. The flight recorder is the
//! complementary always-on facility: every executed engine event leaves a
//! 16-byte [`FlightFrame`] in a fixed-capacity ring (the "black box" of
//! recent history), with deterministic oldest-first eviction and an FNV-1a
//! digest over the retained window. The engine buffers frames per shard
//! tagged with the executing event's key and k-way merges them at window
//! barriers, exactly like its span buffers, so the retained set and the
//! digest are byte-identical at any worker-thread count.
//!
//! When a full span log *is* available (scenario runs enable one; SLO
//! breaches demand one), [`tail_sample`] applies the retention policy after
//! the fact: only "interesting" flows keep their full causal span trees —
//! flows that aborted, flows named by an invariant violation, and the
//! slowest percentile by duration. Everything else is dropped, bounding the
//! full-fidelity dump the way head sampling never could (head sampling must
//! decide before knowing how the flow ends).

use std::collections::BTreeMap;

use crate::check::{check, Violation};
use crate::log::{Fnv1a, TraceLog};
use crate::span::{SpanEvent, SpanId, SpanKind};

/// One compact flight-recorder frame: the executed event's time plus a
/// packed `(kind code, node, actor)` word. Codes reuse the stable
/// [`SpanKind::code`] numbering (2 delivered, 3 dead letter, 4 timer,
/// 7 crash, 8 restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightFrame {
    /// Simulated time of the event, in nanoseconds.
    pub at_ns: u64,
    /// Packed metadata: bits 56..64 the kind code, 32..56 the node (masked
    /// to 24 bits), 0..32 the low 32 bits of the actor id.
    pub meta: u64,
}

impl FlightFrame {
    /// Packs a frame from its parts.
    #[inline(always)]
    pub fn pack(at_ns: u64, code: u8, node: u32, actor: u64) -> Self {
        FlightFrame {
            at_ns,
            meta: ((code as u64) << 56)
                | (((node as u64) & 0xff_ffff) << 32)
                | (actor & 0xffff_ffff),
        }
    }

    /// The stable kind code (see [`SpanKind::code`]).
    pub fn code(&self) -> u8 {
        (self.meta >> 56) as u8
    }

    /// The node the event happened on (24 bits retained).
    pub fn node(&self) -> u32 {
        ((self.meta >> 32) & 0xff_ffff) as u32
    }

    /// The low 32 bits of the actor id.
    pub fn actor(&self) -> u32 {
        self.meta as u32
    }
}

/// Default ring capacity: 32 Ki frames (512 KiB), enough to hold the tail
/// of any canonical workload while staying invisible in RSS.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1 << 15;

/// The bounded always-on frame ring. Enabled by default; `capacity` must be
/// a power of two and is fixed once the first frame lands.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: bool,
    cap: usize,
    frames: Vec<FlightFrame>,
    /// Total frames ever pushed; `head & (cap - 1)` is the next overwrite
    /// position once the ring is full.
    head: usize,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Creates an enabled recorder with the default capacity. Storage is
    /// grown lazily, so idle recorders cost nothing.
    pub fn new() -> Self {
        FlightRecorder {
            enabled: true,
            cap: DEFAULT_FLIGHT_CAPACITY,
            frames: Vec::new(),
            head: 0,
        }
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turns recording off (retained frames are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Returns `true` while recording.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Replaces the ring capacity (rounded up to a power of two, minimum 8).
    ///
    /// # Panics
    ///
    /// Panics if frames have already been recorded — the eviction order
    /// would no longer be reproducible from the seed.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(self.head == 0, "capacity is fixed once recording starts");
        self.cap = capacity.max(8).next_power_of_two();
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Appends a frame, evicting the oldest once the ring is full. Callers
    /// gate on [`is_enabled`](FlightRecorder::is_enabled); the push itself
    /// is unconditional so the hot path stays one branch.
    #[inline(always)]
    pub fn push(&mut self, frame: FlightFrame) {
        let len = self.frames.len();
        if len < self.cap {
            self.fill(frame);
        } else {
            // Masking with `len - 1` (cap is a power of two, so once full
            // `len == cap`) keeps the index provably in bounds — the
            // compiler drops the bounds check on this store.
            self.frames[self.head & (len - 1)] = frame;
        }
        self.head += 1;
    }

    /// The pre-wrap fill path, kept out of line so the inlined steady-state
    /// [`push`](FlightRecorder::push) is one compare and a masked store.
    #[inline(never)]
    fn fill(&mut self, frame: FlightFrame) {
        if self.frames.capacity() < self.cap {
            // One exact reservation instead of doubling growth: the fill
            // phase then never reallocates or copies.
            self.frames.reserve_exact(self.cap - self.frames.len());
        }
        self.frames.push(frame);
    }

    /// Total frames ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.head as u64
    }

    /// Frames evicted by the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.head.saturating_sub(self.cap) as u64
    }

    /// Retained frames, oldest first.
    pub fn frames(&self) -> Vec<FlightFrame> {
        if self.head <= self.cap {
            self.frames.clone()
        } else {
            let mask = self.cap - 1;
            let split = self.head & mask;
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.frames[split..]);
            out.extend_from_slice(&self.frames[..split]);
            out
        }
    }

    /// FNV-1a digest over the total count and every retained frame, oldest
    /// first. Byte-identical at any worker-thread count and across build
    /// profiles: frames merge back into execution order at shard barriers
    /// and carry integers only.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.head as u64);
        for f in self.frames() {
            h.write_u64(f.at_ns);
            h.write_u64(f.meta);
        }
        h.finish()
    }

    /// Clears retained frames and the running count.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.head = 0;
    }
}

/// One flow retained by [`tail_sample`], with its full causal span tree and
/// the reasons it was kept.
#[derive(Debug, Clone)]
pub struct RetainedFlow {
    /// The flow id.
    pub flow: u64,
    /// The object the flow concerned.
    pub object: u64,
    /// The [`crate::FlowKind`] code of the flow.
    pub kind_code: u64,
    /// The flow kind's stable name.
    pub kind_name: &'static str,
    /// When the flow started, in nanoseconds.
    pub start_ns: u64,
    /// When it terminated (equal to `start_ns` for leaked flows).
    pub end_ns: u64,
    /// The flow ended in `FlowAborted` (or never terminated).
    pub aborted: bool,
    /// An invariant violation names this flow.
    pub violating: bool,
    /// The flow's duration is in the retained slowest percentile.
    pub slow: bool,
    /// The full causal span tree (the flow's spans plus all descendants),
    /// in log order.
    pub spans: Vec<SpanEvent>,
}

/// The full-fidelity dump produced by [`tail_sample`]: ring statistics plus
/// the retained span trees.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// The slowest-percentile retention quantile used (e.g. `0.95`).
    pub slow_quantile: f64,
    /// Flows observed in the span log.
    pub total_flows: u64,
    /// Frames ever recorded by the ring.
    pub frames_recorded: u64,
    /// Frames still retained in the ring.
    pub frames_retained: u64,
    /// The ring digest at dump time.
    pub ring_digest: u64,
    /// The retained flows, ascending by flow id.
    pub flows: Vec<RetainedFlow>,
}

/// Bookkeeping for one flow while scanning the log.
struct FlowInfo {
    object: u64,
    kind_code: u64,
    kind_name: &'static str,
    start_ns: u64,
    end_ns: Option<u64>,
    aborted: bool,
    violating: bool,
}

/// Applies the tail-sampling retention policy to a finished span log:
/// keeps the full causal span tree of every flow that aborted (or leaked),
/// every flow named by an invariant violation, and every terminated flow
/// whose duration reaches the nearest-rank `slow_quantile` of all flow
/// durations. `recorder` contributes the ring statistics of the dump.
pub fn tail_sample(log: &TraceLog, recorder: &FlightRecorder, slow_quantile: f64) -> FlightDump {
    let q = slow_quantile.clamp(0.0, 1.0);
    let mut flows: BTreeMap<u64, FlowInfo> = BTreeMap::new();
    for e in log.events() {
        match &e.kind {
            SpanKind::FlowStarted { flow, object, kind } => {
                flows.entry(*flow).or_insert(FlowInfo {
                    object: *object,
                    kind_code: kind.code(),
                    kind_name: kind.name(),
                    start_ns: e.at_ns,
                    end_ns: None,
                    aborted: false,
                    violating: false,
                });
            }
            SpanKind::FlowCompleted { flow } => {
                if let Some(info) = flows.get_mut(flow) {
                    info.end_ns = Some(e.at_ns);
                }
            }
            SpanKind::FlowAborted { flow } => {
                if let Some(info) = flows.get_mut(flow) {
                    info.end_ns = Some(e.at_ns);
                    info.aborted = true;
                }
            }
            _ => {}
        }
    }
    for v in check(log) {
        let named = match v {
            Violation::LeakedFlow { flow, .. } | Violation::SpuriousFlowEnd { flow, .. } => {
                Some(flow)
            }
            _ => None,
        };
        if let Some(flow) = named {
            if let Some(info) = flows.get_mut(&flow) {
                info.violating = true;
            }
        }
    }
    // Nearest-rank threshold over terminated-flow durations: a flow is
    // "slow" when its duration reaches the q-quantile. Integer nanoseconds,
    // so the cut is exact in every build profile.
    let mut durations: Vec<u64> = flows
        .values()
        .filter_map(|i| i.end_ns.map(|e| e - i.start_ns))
        .collect();
    durations.sort_unstable();
    let slow_floor = if durations.is_empty() {
        None
    } else {
        let rank = ((q * durations.len() as f64).ceil() as usize).max(1) - 1;
        Some(durations[rank])
    };
    let total_flows = flows.len() as u64;
    let mut retained = Vec::new();
    for (flow, info) in flows {
        let dur = info.end_ns.map(|e| e - info.start_ns);
        let slow = match (dur, slow_floor) {
            (Some(d), Some(floor)) => d >= floor,
            _ => false,
        };
        let aborted = info.aborted || info.end_ns.is_none();
        if !(aborted || info.violating || slow) {
            continue;
        }
        let spans = log.spans_for_flow(flow).into_iter().cloned().collect();
        retained.push(RetainedFlow {
            flow,
            object: info.object,
            kind_code: info.kind_code,
            kind_name: info.kind_name,
            start_ns: info.start_ns,
            end_ns: info.end_ns.unwrap_or(info.start_ns),
            aborted,
            violating: info.violating,
            slow,
            spans,
        });
    }
    FlightDump {
        slow_quantile: q,
        total_flows,
        frames_recorded: recorder.recorded(),
        frames_retained: recorder.recorded().min(recorder.capacity() as u64),
        ring_digest: recorder.digest(),
        flows: retained,
    }
}

impl FlightDump {
    /// Deterministic JSON: fixed key order, integer ids, hex digest —
    /// byte-identical sequential vs sharded and debug vs release.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"slow_quantile\": {:?},\n", self.slow_quantile));
        out.push_str(&format!("  \"total_flows\": {},\n", self.total_flows));
        out.push_str(&format!(
            "  \"frames_recorded\": {},\n",
            self.frames_recorded
        ));
        out.push_str(&format!(
            "  \"frames_retained\": {},\n",
            self.frames_retained
        ));
        out.push_str(&format!(
            "  \"ring_digest\": \"{:016x}\",\n",
            self.ring_digest
        ));
        out.push_str("  \"flows\": [");
        for (i, f) in self.flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"flow\": {}, ", f.flow));
            out.push_str(&format!("\"object\": {}, ", f.object));
            out.push_str(&format!("\"kind\": \"{}\", ", f.kind_name));
            out.push_str(&format!("\"start_ns\": {}, ", f.start_ns));
            out.push_str(&format!("\"end_ns\": {}, ", f.end_ns));
            out.push_str(&format!("\"aborted\": {}, ", f.aborted));
            out.push_str(&format!("\"violating\": {}, ", f.violating));
            out.push_str(&format!("\"slow\": {}, ", f.slow));
            out.push_str("\"spans\": [");
            for (j, s) in f.spans.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"id\": {}, \"parent\": {}, \"at_ns\": {}, \"node\": {}, \"name\": \"{}\"}}",
                    s.id.as_raw(),
                    s.parent.map_or(0, SpanId::as_raw),
                    s.at_ns,
                    s.node,
                    s.kind.name()
                ));
            }
            out.push_str("]}");
        }
        if !self.flows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the retained span trees, one indented block per flow.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight dump: {} of {} flows retained (q={}), ring {}/{} frames, digest {:016x}\n",
            self.flows.len(),
            self.total_flows,
            self.slow_quantile,
            self.frames_retained,
            self.frames_recorded,
            self.ring_digest,
        ));
        for f in &self.flows {
            let mut reasons = Vec::new();
            if f.aborted {
                reasons.push("aborted");
            }
            if f.violating {
                reasons.push("violating");
            }
            if f.slow {
                reasons.push("slow");
            }
            out.push_str(&format!(
                "flow {} ({}, object {}) {}..{} ns [{}]\n",
                f.flow,
                f.kind_name,
                f.object,
                f.start_ns,
                f.end_ns,
                reasons.join("+"),
            ));
            // Indent by causal depth within the retained tree.
            let ids: BTreeMap<u64, usize> = f
                .spans
                .iter()
                .enumerate()
                .map(|(i, s)| (s.id.as_raw(), i))
                .collect();
            for s in &f.spans {
                let mut depth = 0usize;
                let mut cur = s.parent;
                while let Some(p) = cur {
                    match ids.get(&p.as_raw()) {
                        Some(&i) => {
                            depth += 1;
                            cur = f.spans[i].parent;
                        }
                        None => break,
                    }
                }
                out.push_str(&format!(
                    "{}{} @{} node={} span={}\n",
                    "  ".repeat(depth + 1),
                    s.kind.name(),
                    s.at_ns,
                    s.node,
                    s.id.as_raw(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::FlowKind;

    fn frame(i: u64) -> FlightFrame {
        FlightFrame::pack(i, 2, (i % 5) as u32, i)
    }

    #[test]
    fn pack_roundtrips_the_fields() {
        let f = FlightFrame::pack(12345, 7, 0xabcdef, 0x1_0000_0042);
        assert_eq!(f.at_ns, 12345);
        assert_eq!(f.code(), 7);
        assert_eq!(f.node(), 0xabcdef);
        assert_eq!(f.actor(), 0x42);
    }

    #[test]
    fn ring_evicts_oldest_deterministically() {
        let mut r = FlightRecorder::new();
        r.set_capacity(8);
        for i in 0..20 {
            r.push(frame(i));
        }
        assert_eq!(r.recorded(), 20);
        assert_eq!(r.evicted(), 12);
        let frames = r.frames();
        assert_eq!(frames.len(), 8);
        assert_eq!(frames[0], frame(12), "oldest retained");
        assert_eq!(frames[7], frame(19), "newest retained");
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let mut a = FlightRecorder::new();
        let mut b = FlightRecorder::new();
        for i in 0..100 {
            a.push(frame(i));
            b.push(frame(i));
        }
        assert_eq!(a.digest(), b.digest());
        b.push(frame(100));
        assert_ne!(a.digest(), b.digest());
        // Same retained window, different history: the digest covers the
        // total count, so it still differs.
        let mut c = FlightRecorder::new();
        c.set_capacity(8);
        let mut d = FlightRecorder::new();
        d.set_capacity(8);
        for i in 0..16 {
            c.push(frame(i));
        }
        for i in 8..16 {
            d.push(frame(i));
        }
        assert_eq!(c.frames(), d.frames());
        assert_ne!(c.digest(), d.digest());
    }

    #[test]
    fn capacity_is_fixed_once_recording() {
        let mut r = FlightRecorder::new();
        r.set_capacity(5);
        assert_eq!(r.capacity(), 8, "rounded to a power of two");
        r.push(frame(0));
        assert!(std::panic::catch_unwind(move || r.set_capacity(16)).is_err());
    }

    fn flow_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.enable();
        // Flow 1: fast, clean (duration 10).
        let s1 = log.emit(
            0,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 1,
                object: 100,
                kind: FlowKind::Update,
            },
        );
        log.emit(
            5,
            1,
            s1,
            SpanKind::MsgDelivered {
                src: 1,
                dst: 2,
                dst_node: 1,
            },
        );
        log.emit(10, 0, s1, SpanKind::FlowCompleted { flow: 1 });
        // Flow 2: slow (duration 100).
        let s2 = log.emit(
            20,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 2,
                object: 101,
                kind: FlowKind::Migrate,
            },
        );
        log.emit(120, 0, s2, SpanKind::FlowCompleted { flow: 2 });
        // Flow 3: aborted.
        log.emit(
            30,
            2,
            None,
            SpanKind::FlowStarted {
                flow: 3,
                object: 102,
                kind: FlowKind::Create,
            },
        );
        log.emit(40, 2, None, SpanKind::FlowAborted { flow: 3 });
        log
    }

    #[test]
    fn tail_sample_keeps_interesting_flows_only() {
        let log = flow_log();
        let r = FlightRecorder::new();
        let dump = tail_sample(&log, &r, 0.95);
        assert_eq!(dump.total_flows, 3);
        let ids: Vec<u64> = dump.flows.iter().map(|f| f.flow).collect();
        // Flow 1 is fast and clean: dropped. Flow 2 is the slowest
        // percentile; flow 3 aborted.
        assert_eq!(ids, vec![2, 3]);
        let f2 = &dump.flows[0];
        assert!(f2.slow && !f2.aborted);
        assert_eq!(f2.kind_name, "migrate");
        let f3 = &dump.flows[1];
        assert!(f3.aborted && !f3.slow);
    }

    #[test]
    fn tail_sample_retains_causal_descendants() {
        let log = flow_log();
        let r = FlightRecorder::new();
        // q = 0 retains every terminated flow as "slow".
        let dump = tail_sample(&log, &r, 0.0);
        assert_eq!(dump.flows.len(), 3);
        let f1 = &dump.flows[0];
        assert_eq!(f1.flow, 1);
        // Start + delivered descendant + completed.
        assert_eq!(f1.spans.len(), 3);
        assert!(f1
            .spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::MsgDelivered { .. })));
    }

    #[test]
    fn leaked_flows_count_as_aborted() {
        let mut log = TraceLog::new();
        log.enable();
        log.emit(
            0,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 9,
                object: 1,
                kind: FlowKind::Recover,
            },
        );
        let dump = tail_sample(&log, &FlightRecorder::new(), 0.95);
        assert_eq!(dump.flows.len(), 1);
        assert!(dump.flows[0].aborted, "leaked flow retained as aborted");
        assert!(dump.flows[0].violating, "checker names the leak");
    }

    #[test]
    fn dump_json_and_render_are_deterministic() {
        let log = flow_log();
        let mut r = FlightRecorder::new();
        for i in 0..4 {
            r.push(frame(i));
        }
        let a = tail_sample(&log, &r, 0.95);
        let b = tail_sample(&log, &r, 0.95);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"ring_digest\""));
        assert!(a.to_json().contains("\"kind\": \"migrate\""));
        let rendered = a.render();
        assert!(rendered.contains("flow 3"));
        assert!(rendered.contains("[aborted]"));
        assert!(rendered.contains("flow 2"));
        assert!(rendered.contains("[slow]"));
    }
}

//! The per-run structured trace log: recording, queries, digest.

use std::collections::{HashMap, VecDeque};

use crate::span::{SpanEvent, SpanId, SpanKind};

/// A deterministic, append-only log of [`SpanEvent`]s for one run.
///
/// Disabled by default: [`TraceLog::emit`] then costs one branch and records
/// nothing, which is what lets the instrumented engine stay within its
/// throughput budget when nobody is watching. Enable with
/// [`TraceLog::enable`] before the run starts to capture everything.
///
/// Events enter the log through two doors: [`TraceLog::emit`] mints the next
/// dense id itself, while [`TraceLog::push_event`] appends a pre-built event
/// whose id the producer chose (the simulation engine allocates per-lane
/// ids so a parallel run can merge shard logs back into one sequence). Both
/// maintain the id → position index that [`TraceLog::get`] uses.
#[derive(Debug, Default, Clone)]
pub struct TraceLog {
    enabled: bool,
    next_id: u64,
    events: Vec<SpanEvent>,
    /// Raw span id → index in `events`.
    index: HashMap<u64, usize>,
}

impl TraceLog {
    /// Creates a disabled log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording (already-captured events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Returns `true` if the log is recording.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Drops all captured events and resets the id sequence.
    pub fn clear(&mut self) {
        self.events.clear();
        self.index.clear();
        self.next_id = 0;
    }

    /// Records an event, returning its id — or `None` when disabled.
    ///
    /// `at_ns` is the simulated time; `node` is the node the event happened
    /// on ([`NO_NODE`](crate::NO_NODE) if not attributable); `parent` is the
    /// span that causally triggered this one.
    #[inline]
    pub fn emit(
        &mut self,
        at_ns: u64,
        node: u32,
        parent: Option<SpanId>,
        kind: SpanKind,
    ) -> Option<SpanId> {
        if !self.enabled {
            return None;
        }
        self.next_id += 1;
        let id = SpanId::from_raw(self.next_id).expect("span ids start at 1");
        self.index.insert(id.as_raw(), self.events.len());
        self.events.push(SpanEvent {
            id,
            parent,
            at_ns,
            node,
            kind,
        });
        Some(id)
    }

    /// Appends a pre-built event carrying a producer-allocated id. Unlike
    /// [`TraceLog::emit`], the id sequence is not advanced — the producer
    /// owns id uniqueness. The engine uses this to merge per-shard span
    /// buffers back into execution order after a parallel window.
    pub fn push_event(&mut self, ev: SpanEvent) {
        self.index.insert(ev.id.as_raw(), self.events.len());
        self.events.push(ev);
    }

    /// All captured events in emit order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Looks an event up by id.
    pub fn get(&self, id: SpanId) -> Option<&SpanEvent> {
        self.events.get(*self.index.get(&id.as_raw())?)
    }

    /// Direct causal children of `id`, in emit order.
    pub fn children_of(&self, id: SpanId) -> Vec<&SpanEvent> {
        self.events
            .iter()
            .filter(|e| e.parent == Some(id))
            .collect()
    }

    /// Events with `start_ns <= at_ns < end_ns`, in emit order.
    pub fn between(&self, start_ns: u64, end_ns: u64) -> Vec<&SpanEvent> {
        self.events
            .iter()
            .filter(|e| e.at_ns >= start_ns && e.at_ns < end_ns)
            .collect()
    }

    /// Every event belonging to a flow: events that name the flow id
    /// directly, plus all causal descendants of those events (the RPCs,
    /// timers, and deliveries the flow fanned out into), in emit order.
    pub fn spans_for_flow(&self, flow: u64) -> Vec<&SpanEvent> {
        let mut member = vec![false; self.events.len()];
        let mut queue = VecDeque::new();
        for (i, e) in self.events.iter().enumerate() {
            if e.kind.flow_id() == Some(flow) {
                member[i] = true;
                queue.push_back(e.id);
            }
        }
        // Children always appear after their parents (log order), so one
        // forward sweep per frontier element terminates.
        while let Some(parent) = queue.pop_front() {
            // First candidate child position: just past the parent itself.
            let start = self.index.get(&parent.as_raw()).map_or(0, |&pos| pos + 1);
            for (i, e) in self.events.iter().enumerate().skip(start) {
                if !member[i] && e.parent == Some(parent) {
                    member[i] = true;
                    queue.push_back(e.id);
                }
            }
        }
        self.events
            .iter()
            .enumerate()
            .filter(|(i, _)| member[*i])
            .map(|(_, e)| e)
            .collect()
    }

    /// A build-independent FNV-1a digest of the whole log.
    ///
    /// Only integers enter the hash (ids, times, nodes, variant codes,
    /// fields), so the digest is identical across debug and release builds
    /// and across machines — the cross-build determinism witness.
    ///
    /// `GenerationStamp` values are excluded: generation numbers come from
    /// a process-global counter, so their absolute values differ between
    /// runs sharing a process. Their monotonicity is the invariant
    /// checker's job; the digest still covers the stamps' order, objects,
    /// and causality.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        for e in &self.events {
            h.write_u64(e.id.as_raw());
            h.write_u64(e.parent.map_or(0, SpanId::as_raw));
            h.write_u64(e.at_ns);
            h.write_u64(e.node as u64);
            h.write_u64(e.kind.code());
            if let SpanKind::GenerationStamp { object, .. } = &e.kind {
                h.write_u64(*object);
            } else {
                for (_, v) in e.kind.fields() {
                    h.write_u64(v);
                }
            }
            if let SpanKind::PartitionChanged { groups } = &e.kind {
                for g in groups {
                    h.write_u64(*g as u64);
                }
            }
        }
        h.finish()
    }
}

/// Build-independent FNV-1a hash of a function name.
///
/// This is how string-valued identities (function names) cross into the
/// integer-only trace: [`SpanKind::VmCost`] carries `fn_hash(name)` and the
/// emitting layer publishes a hash → name table out of band. The hash is
/// plain FNV-1a over the UTF-8 bytes, so it is identical across builds,
/// machines, and processes.
pub fn fn_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 64-bit FNV-1a over little-endian u64 words.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{FlowKind, NO_NODE};

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        log.enable();
        let root = log.emit(
            10,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 7,
                object: 99,
                kind: FlowKind::Update,
            },
        );
        let sent = log.emit(
            20,
            0,
            root,
            SpanKind::MsgSent {
                src: 1,
                dst: 2,
                src_node: 0,
                dst_node: 1,
                verdict: crate::SendVerdict::Sent,
                bytes: 64,
            },
        );
        log.emit(
            30,
            1,
            sent,
            SpanKind::MsgDelivered {
                src: 1,
                dst: 2,
                dst_node: 1,
            },
        );
        log.emit(40, 0, root, SpanKind::FlowCompleted { flow: 7 });
        log.emit(50, 2, None, SpanKind::TimerFired { actor: 5, token: 1 });
        log
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new();
        assert!(!log.is_enabled());
        assert_eq!(log.emit(0, NO_NODE, None, SpanKind::PartitionHealed), None);
        assert!(log.is_empty());
    }

    #[test]
    fn ids_are_dense_and_lookup_by_id_works() {
        let log = sample_log();
        assert_eq!(log.len(), 5);
        for (i, e) in log.events().iter().enumerate() {
            assert_eq!(e.id.as_raw(), i as u64 + 1);
            assert_eq!(log.get(e.id), Some(e));
        }
    }

    #[test]
    fn children_of_returns_direct_children_only() {
        let log = sample_log();
        let root = log.events()[0].id;
        let kids = log.children_of(root);
        assert_eq!(kids.len(), 2);
        assert!(matches!(kids[0].kind, SpanKind::MsgSent { .. }));
        assert!(matches!(kids[1].kind, SpanKind::FlowCompleted { .. }));
    }

    #[test]
    fn between_is_half_open() {
        let log = sample_log();
        let window: Vec<u64> = log.between(20, 50).iter().map(|e| e.at_ns).collect();
        assert_eq!(window, vec![20, 30, 40]);
    }

    #[test]
    fn between_boundary_inclusivity() {
        // Events at exactly the window start are included; events at exactly
        // the window end are excluded (half-open `[start, end)`).
        let log = sample_log(); // events at 10, 20, 30, 40, 50
        let exact: Vec<u64> = log.between(10, 10).iter().map(|e| e.at_ns).collect();
        assert_eq!(exact, Vec::<u64>::new(), "empty window captures nothing");
        let start_only: Vec<u64> = log.between(50, 51).iter().map(|e| e.at_ns).collect();
        assert_eq!(start_only, vec![50], "start boundary is inclusive");
        let end_only: Vec<u64> = log.between(0, 10).iter().map(|e| e.at_ns).collect();
        assert_eq!(end_only, Vec::<u64>::new(), "end boundary is exclusive");
        let all: Vec<u64> = log.between(10, 51).iter().map(|e| e.at_ns).collect();
        assert_eq!(all, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn spans_for_flow_on_empty_log_is_empty() {
        let empty = TraceLog::new();
        assert!(empty.spans_for_flow(0).is_empty());
        assert!(empty.spans_for_flow(7).is_empty());
        let mut enabled_but_empty = TraceLog::new();
        enabled_but_empty.enable();
        assert!(enabled_but_empty.spans_for_flow(7).is_empty());
    }

    #[test]
    fn fn_hash_is_stable_and_distinguishes_names() {
        // Pin the FNV-1a constants: the hash must never drift, because the
        // VmCost `function` field is compared across builds and runs.
        assert_eq!(fn_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fn_hash("step"), fn_hash("step"));
        assert_ne!(fn_hash("step"), fn_hash("get"));
    }

    #[test]
    fn spans_for_flow_includes_causal_descendants() {
        let log = sample_log();
        let flow: Vec<u64> = log
            .spans_for_flow(7)
            .iter()
            .map(|e| e.id.as_raw())
            .collect();
        // Flow events 1 and 4, plus descendants 2 (MsgSent) and 3
        // (MsgDelivered); the unrelated timer (5) is excluded.
        assert_eq!(flow, vec![1, 2, 3, 4]);
        assert!(log.spans_for_flow(8).is_empty());
    }

    #[test]
    fn digest_is_deterministic_and_sensitive() {
        let a = sample_log();
        let b = sample_log();
        assert_eq!(a.digest(), b.digest());
        let mut c = sample_log();
        c.emit(60, 0, None, SpanKind::PartitionHealed);
        assert_ne!(a.digest(), c.digest());
        assert_ne!(TraceLog::new().digest(), a.digest());
    }

    #[test]
    fn push_event_with_sparse_ids_supports_lookup_and_flows() {
        // The engine's lane-allocated ids are huge and non-dense; get(),
        // children_of, and spans_for_flow must still work.
        let mut log = TraceLog::new();
        log.enable();
        let big = |raw: u64| SpanId::from_raw(raw).expect("nonzero");
        log.push_event(SpanEvent {
            id: big(1 << 48),
            parent: None,
            at_ns: 5,
            node: 0,
            kind: SpanKind::FlowStarted {
                flow: 3,
                object: 1,
                kind: FlowKind::Create,
            },
        });
        log.push_event(SpanEvent {
            id: big((2 << 48) | 7),
            parent: Some(big(1 << 48)),
            at_ns: 6,
            node: 1,
            kind: SpanKind::FlowCompleted { flow: 3 },
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(big(1 << 48)).expect("indexed").at_ns, 5);
        assert_eq!(log.get(big((2 << 48) | 7)).expect("indexed").at_ns, 6);
        assert!(log.get(big(42)).is_none());
        assert_eq!(log.children_of(big(1 << 48)).len(), 1);
        assert_eq!(log.spans_for_flow(3).len(), 2);
        // A later emit() still mints dense ids independent of pushed ones.
        let id = log
            .emit(7, 0, None, SpanKind::PartitionHealed)
            .expect("enabled");
        assert_eq!(id.as_raw(), 1);
        assert_eq!(log.get(id).expect("indexed").at_ns, 7);
    }

    #[test]
    fn clear_resets_ids() {
        let mut log = sample_log();
        log.clear();
        assert!(log.is_empty());
        let id = log
            .emit(0, 0, None, SpanKind::PartitionHealed)
            .expect("enabled");
        assert_eq!(id.as_raw(), 1);
    }
}

//! Span identifiers and the typed event taxonomy.

use std::fmt;
use std::num::NonZeroU64;

/// Sentinel node value for events not attributable to any node (driver-side
/// topology changes, for example).
pub const NO_NODE: u32 = u32::MAX;

/// Identifies one span event within a [`TraceLog`](crate::TraceLog).
///
/// Standalone [`emit`](crate::TraceLog::emit) calls assign dense sequence
/// numbers starting at 1. Producers that append pre-built events through
/// [`push_event`](crate::TraceLog::push_event) — like the simulation
/// engine, whose parallel mode needs thread-count-independent ids — supply
/// their own nonzero ids instead; log position, not id value, is the total
/// order over a mixed log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(NonZeroU64);

impl SpanId {
    /// Creates a span id from a raw non-zero value.
    pub fn from_raw(raw: u64) -> Option<Self> {
        NonZeroU64::new(raw).map(SpanId)
    }

    /// Returns the raw value.
    pub fn as_raw(self) -> u64 {
        self.0.get()
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span:{}", self.0)
    }
}

/// The network's verdict for a message at send time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendVerdict {
    /// Planned for a single delivery.
    Sent,
    /// Planned for double delivery (duplicate fault injection).
    SentTwice,
    /// Dropped by loss injection.
    Lost,
    /// Dropped because an endpoint was down or partitioned away.
    Unreachable,
}

impl SendVerdict {
    /// A stable small integer code (used in the digest and exporters).
    pub const fn code(self) -> u64 {
        match self {
            SendVerdict::Sent => 0,
            SendVerdict::SentTwice => 1,
            SendVerdict::Lost => 2,
            SendVerdict::Unreachable => 3,
        }
    }

    /// A stable short name.
    pub const fn name(self) -> &'static str {
        match self {
            SendVerdict::Sent => "sent",
            SendVerdict::SentTwice => "sent_twice",
            SendVerdict::Lost => "lost",
            SendVerdict::Unreachable => "unreachable",
        }
    }

    /// Returns `true` if at least one delivery was planned.
    pub const fn delivers(self) -> bool {
        matches!(self, SendVerdict::Sent | SendVerdict::SentTwice)
    }
}

/// How an RPC retry chain terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcOutcome {
    /// The call completed with a reply (possibly an application-level error).
    Ok,
    /// The call completed with an application-typed fault (e.g. refused).
    Fault,
    /// The call terminated with the typed `Unreachable` fault.
    Unreachable,
    /// The call terminated with the typed `Timeout` fault.
    Timeout,
}

impl RpcOutcome {
    /// A stable small integer code (used in the digest and exporters).
    pub const fn code(self) -> u64 {
        match self {
            RpcOutcome::Ok => 0,
            RpcOutcome::Fault => 1,
            RpcOutcome::Unreachable => 2,
            RpcOutcome::Timeout => 3,
        }
    }

    /// A stable short name.
    pub const fn name(self) -> &'static str {
        match self {
            RpcOutcome::Ok => "ok",
            RpcOutcome::Fault => "fault",
            RpcOutcome::Unreachable => "unreachable",
            RpcOutcome::Timeout => "timeout",
        }
    }
}

/// The semantic kind of a traced flow (manager or object side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Instance creation.
    Create,
    /// Implementation update / evolution.
    Update,
    /// Migration between hosts.
    Migrate,
    /// Deactivation to the vault.
    Deactivate,
    /// Reactivation from the vault.
    Activate,
    /// Checkpoint to the vault.
    Checkpoint,
    /// Crash recovery from the vault.
    Recover,
    /// Object-local configuration change (incorporate/apply/remove/disable).
    Config,
    /// Group epoch round (propose → prepare/ack → commit or abort).
    Epoch,
}

impl FlowKind {
    /// A stable small integer code (used in the digest and exporters).
    pub const fn code(self) -> u64 {
        match self {
            FlowKind::Create => 0,
            FlowKind::Update => 1,
            FlowKind::Migrate => 2,
            FlowKind::Deactivate => 3,
            FlowKind::Activate => 4,
            FlowKind::Checkpoint => 5,
            FlowKind::Recover => 6,
            FlowKind::Config => 7,
            FlowKind::Epoch => 8,
        }
    }

    /// A stable short name.
    pub const fn name(self) -> &'static str {
        match self {
            FlowKind::Create => "create",
            FlowKind::Update => "update",
            FlowKind::Migrate => "migrate",
            FlowKind::Deactivate => "deactivate",
            FlowKind::Activate => "activate",
            FlowKind::Checkpoint => "checkpoint",
            FlowKind::Recover => "recover",
            FlowKind::Config => "config",
            FlowKind::Epoch => "epoch",
        }
    }
}

/// The typed payload of one span event.
///
/// Identifiers are raw integers: `u32` for engine-level actors and nodes,
/// `u64` for the logical ids minted above the engine (objects, calls, flows).
/// Every variant is integer-only so the log digests identically across
/// builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanKind {
    // ---- engine ---------------------------------------------------------
    /// A message was offered to the network.
    MsgSent {
        /// Sending actor.
        src: u32,
        /// Destination actor.
        dst: u32,
        /// Node of the sender.
        src_node: u32,
        /// Node of the destination.
        dst_node: u32,
        /// What the network decided to do with it.
        verdict: SendVerdict,
        /// Wire size of the payload in bytes.
        bytes: u64,
    },
    /// A message reached a live destination actor.
    MsgDelivered {
        /// Sending actor.
        src: u32,
        /// Destination actor.
        dst: u32,
        /// Node of the destination.
        dst_node: u32,
    },
    /// A message arrived for a dead actor and was dropped.
    MsgDeadLetter {
        /// Sending actor.
        src: u32,
        /// Destination actor.
        dst: u32,
        /// Node of the destination.
        dst_node: u32,
    },
    /// A timer fired.
    TimerFired {
        /// Owning actor.
        actor: u32,
        /// The token passed at scheduling time.
        token: u64,
    },
    /// An actor was spawned.
    ActorSpawned {
        /// The new actor.
        actor: u32,
        /// Its placement.
        node: u32,
    },
    /// An actor was killed.
    ActorKilled {
        /// The dead actor.
        actor: u32,
    },
    /// A node crashed (actors killed, timers swept, traffic dropped).
    NodeCrashed {
        /// The crashed node.
        node: u32,
    },
    /// A crashed node came back up.
    NodeRestarted {
        /// The restarted node.
        node: u32,
    },
    /// A partition was installed; `groups[i]` is the partition group of the
    /// node with raw id `i` (nodes past the end are in group 0).
    PartitionChanged {
        /// Group assignment per raw node id.
        groups: Vec<u32>,
    },
    /// Any installed partition was healed.
    PartitionHealed,
    /// A directed link fault was installed.
    LinkFaultSet {
        /// Source node of the faulted link.
        src_node: u32,
        /// Destination node of the faulted link.
        dst_node: u32,
    },
    /// A directed link fault was removed.
    LinkFaultCleared {
        /// Source node of the healed link.
        src_node: u32,
        /// Destination node of the healed link.
        dst_node: u32,
    },
    /// A chaos-plan step was applied (`action` is the plan's step code).
    ChaosFault {
        /// Stable code of the applied fault action.
        action: u32,
        /// The node the fault targets (or [`NO_NODE`]).
        node: u32,
    },

    // ---- RPC / binding --------------------------------------------------
    /// An RPC attempt was put on the wire.
    RpcAttempt {
        /// The call id.
        call: u64,
        /// The logical destination object.
        object: u64,
        /// 1-based attempt number within the retry chain.
        attempt: u32,
        /// The physical destination actor tried.
        dst: u32,
    },
    /// An RPC attempt timed out and will be retried.
    RpcRetry {
        /// The call id.
        call: u64,
        /// The attempt that timed out.
        attempt: u32,
    },
    /// A binding cache lookup hit.
    BindingHit {
        /// The object looked up.
        object: u64,
        /// The cached physical actor.
        dst: u32,
    },
    /// A binding cache lookup missed (a query to the binding agent follows).
    BindingMiss {
        /// The object looked up.
        object: u64,
    },
    /// A binding was (re-)registered with the binding agent.
    BindingRegistered {
        /// The object registered.
        object: u64,
        /// The physical actor it binds to.
        dst: u32,
    },
    /// A binding was invalidated (stale address discovered or unregistered).
    BindingInvalidated {
        /// The object whose binding died.
        object: u64,
    },
    /// An RPC retry chain terminated.
    RpcCompleted {
        /// The call id.
        call: u64,
        /// How the chain ended.
        outcome: RpcOutcome,
    },

    // ---- manager / object flows ----------------------------------------
    /// A managed flow started.
    FlowStarted {
        /// The flow id.
        flow: u64,
        /// The object the flow concerns.
        object: u64,
        /// The flow's semantic kind.
        kind: FlowKind,
    },
    /// A flow advanced to a new step (`step` is the layer's own step code).
    FlowStep {
        /// The flow id.
        flow: u64,
        /// Stable code of the step entered.
        step: u32,
    },
    /// A flow finished successfully.
    FlowCompleted {
        /// The flow id.
        flow: u64,
    },
    /// A flow terminated without completing (failure or node loss).
    FlowAborted {
        /// The flow id.
        flow: u64,
    },
    /// An object's DFM reached a new configuration generation.
    GenerationStamp {
        /// The object.
        object: u64,
        /// The generation stamp (globally unique, monotone).
        generation: u64,
    },
    /// An object served an application invocation.
    CallServed {
        /// The serving object.
        object: u64,
        /// The call id served.
        call: u64,
    },
    // ---- group reconfiguration ------------------------------------------
    /// A group coordinator opened an epoch round: the joined batch of
    /// config deltas was broadcast for acknowledgement.
    EpochProposed {
        /// The reconfiguring group.
        group: u64,
        /// The epoch the round advances to on commit.
        epoch: u64,
        /// Digest of the joined delta under proposal.
        config: u64,
    },
    /// A quorum acknowledged the joined epoch and the coordinator committed
    /// it. Epochs must be strictly increasing per group, and no replica may
    /// serve at an older epoch after this point (it is fenced or caught up).
    EpochCommitted {
        /// The reconfiguring group.
        group: u64,
        /// The committed epoch.
        epoch: u64,
        /// Digest of the committed configuration.
        config: u64,
    },
    /// A replica adopted a committed epoch (caught up).
    ReplicaEpoch {
        /// The group.
        group: u64,
        /// The adopting replica (member id).
        replica: u64,
        /// The epoch adopted.
        epoch: u64,
    },
    /// A group replica served an application call at its current epoch.
    EpochServed {
        /// The group.
        group: u64,
        /// The serving replica (member id).
        replica: u64,
        /// The epoch the call was served at.
        epoch: u64,
        /// The call id served.
        call: u64,
    },

    /// VM compute attributed to one function while serving a call.
    ///
    /// Emitted (at most once per function per thread) when a VM thread
    /// finishes, enriching the thread's [`SpanKind::CallServed`] span so the
    /// profiler can attribute compute to components. `function` is the
    /// build-independent FNV-1a hash of the function's name (see
    /// [`fn_hash`](crate::fn_hash)); the layers above publish a hash → name
    /// table out of band.
    VmCost {
        /// The serving object.
        object: u64,
        /// The call id the thread was serving.
        call: u64,
        /// FNV-1a hash of the function name.
        function: u64,
        /// Times the function was entered.
        calls: u64,
        /// Instructions retired inside the function.
        instructions: u64,
        /// Simulated nanoseconds charged by `Work` instructions inside it.
        work_nanos: u64,
    },
}

impl SpanKind {
    /// A stable integer code identifying the variant (digest, exporters).
    pub const fn code(&self) -> u64 {
        match self {
            SpanKind::MsgSent { .. } => 1,
            SpanKind::MsgDelivered { .. } => 2,
            SpanKind::MsgDeadLetter { .. } => 3,
            SpanKind::TimerFired { .. } => 4,
            SpanKind::ActorSpawned { .. } => 5,
            SpanKind::ActorKilled { .. } => 6,
            SpanKind::NodeCrashed { .. } => 7,
            SpanKind::NodeRestarted { .. } => 8,
            SpanKind::PartitionChanged { .. } => 9,
            SpanKind::PartitionHealed => 10,
            SpanKind::LinkFaultSet { .. } => 11,
            SpanKind::LinkFaultCleared { .. } => 12,
            SpanKind::ChaosFault { .. } => 13,
            SpanKind::RpcAttempt { .. } => 20,
            SpanKind::RpcRetry { .. } => 21,
            SpanKind::BindingHit { .. } => 22,
            SpanKind::BindingMiss { .. } => 23,
            SpanKind::BindingRegistered { .. } => 24,
            SpanKind::BindingInvalidated { .. } => 25,
            SpanKind::RpcCompleted { .. } => 26,
            SpanKind::FlowStarted { .. } => 30,
            SpanKind::FlowStep { .. } => 31,
            SpanKind::FlowCompleted { .. } => 32,
            SpanKind::FlowAborted { .. } => 33,
            SpanKind::GenerationStamp { .. } => 34,
            SpanKind::CallServed { .. } => 35,
            SpanKind::VmCost { .. } => 36,
            SpanKind::EpochProposed { .. } => 40,
            SpanKind::EpochCommitted { .. } => 41,
            SpanKind::ReplicaEpoch { .. } => 42,
            SpanKind::EpochServed { .. } => 43,
        }
    }

    /// A stable event name (Chrome-trace / JSONL `name` field).
    pub const fn name(&self) -> &'static str {
        match self {
            SpanKind::MsgSent { .. } => "msg_sent",
            SpanKind::MsgDelivered { .. } => "msg_delivered",
            SpanKind::MsgDeadLetter { .. } => "msg_dead_letter",
            SpanKind::TimerFired { .. } => "timer_fired",
            SpanKind::ActorSpawned { .. } => "actor_spawned",
            SpanKind::ActorKilled { .. } => "actor_killed",
            SpanKind::NodeCrashed { .. } => "node_crashed",
            SpanKind::NodeRestarted { .. } => "node_restarted",
            SpanKind::PartitionChanged { .. } => "partition_changed",
            SpanKind::PartitionHealed => "partition_healed",
            SpanKind::LinkFaultSet { .. } => "link_fault_set",
            SpanKind::LinkFaultCleared { .. } => "link_fault_cleared",
            SpanKind::ChaosFault { .. } => "chaos_fault",
            SpanKind::RpcAttempt { .. } => "rpc_attempt",
            SpanKind::RpcRetry { .. } => "rpc_retry",
            SpanKind::BindingHit { .. } => "binding_hit",
            SpanKind::BindingMiss { .. } => "binding_miss",
            SpanKind::BindingRegistered { .. } => "binding_registered",
            SpanKind::BindingInvalidated { .. } => "binding_invalidated",
            SpanKind::RpcCompleted { .. } => "rpc_completed",
            SpanKind::FlowStarted { .. } => "flow_started",
            SpanKind::FlowStep { .. } => "flow_step",
            SpanKind::FlowCompleted { .. } => "flow_completed",
            SpanKind::FlowAborted { .. } => "flow_aborted",
            SpanKind::GenerationStamp { .. } => "generation_stamp",
            SpanKind::CallServed { .. } => "call_served",
            SpanKind::VmCost { .. } => "vm_cost",
            SpanKind::EpochProposed { .. } => "epoch_proposed",
            SpanKind::EpochCommitted { .. } => "epoch_committed",
            SpanKind::ReplicaEpoch { .. } => "replica_epoch",
            SpanKind::EpochServed { .. } => "epoch_served",
        }
    }

    /// The flow id this event references, if any.
    pub const fn flow_id(&self) -> Option<u64> {
        match self {
            SpanKind::FlowStarted { flow, .. }
            | SpanKind::FlowStep { flow, .. }
            | SpanKind::FlowCompleted { flow }
            | SpanKind::FlowAborted { flow } => Some(*flow),
            _ => None,
        }
    }

    /// The logical object id this event references, if any.
    pub const fn object_id(&self) -> Option<u64> {
        match self {
            SpanKind::RpcAttempt { object, .. }
            | SpanKind::BindingHit { object, .. }
            | SpanKind::BindingMiss { object }
            | SpanKind::BindingRegistered { object, .. }
            | SpanKind::BindingInvalidated { object }
            | SpanKind::FlowStarted { object, .. }
            | SpanKind::GenerationStamp { object, .. }
            | SpanKind::CallServed { object, .. }
            | SpanKind::VmCost { object, .. } => Some(*object),
            _ => None,
        }
    }

    /// The call id this event references, if any.
    pub const fn call_id(&self) -> Option<u64> {
        match self {
            SpanKind::RpcAttempt { call, .. }
            | SpanKind::RpcRetry { call, .. }
            | SpanKind::RpcCompleted { call, .. }
            | SpanKind::CallServed { call, .. }
            | SpanKind::EpochServed { call, .. }
            | SpanKind::VmCost { call, .. } => Some(*call),
            _ => None,
        }
    }

    /// Named integer fields in declaration order, for the exporters.
    ///
    /// [`SpanKind::PartitionChanged`]'s group vector is not representable as
    /// scalar pairs and is handled separately by the exporters and the
    /// digest.
    pub(crate) fn fields(&self) -> Vec<(&'static str, u64)> {
        match self {
            SpanKind::MsgSent {
                src,
                dst,
                src_node,
                dst_node,
                verdict,
                bytes,
            } => vec![
                ("src", *src as u64),
                ("dst", *dst as u64),
                ("src_node", *src_node as u64),
                ("dst_node", *dst_node as u64),
                ("verdict", verdict.code()),
                ("bytes", *bytes),
            ],
            SpanKind::MsgDelivered { src, dst, dst_node }
            | SpanKind::MsgDeadLetter { src, dst, dst_node } => vec![
                ("src", *src as u64),
                ("dst", *dst as u64),
                ("dst_node", *dst_node as u64),
            ],
            SpanKind::TimerFired { actor, token } => {
                vec![("actor", *actor as u64), ("token", *token)]
            }
            SpanKind::ActorSpawned { actor, node } => {
                vec![("actor", *actor as u64), ("node", *node as u64)]
            }
            SpanKind::ActorKilled { actor } => vec![("actor", *actor as u64)],
            SpanKind::NodeCrashed { node } | SpanKind::NodeRestarted { node } => {
                vec![("node", *node as u64)]
            }
            SpanKind::PartitionChanged { groups } => {
                vec![("ngroups", groups.len() as u64)]
            }
            SpanKind::PartitionHealed => vec![],
            SpanKind::LinkFaultSet { src_node, dst_node }
            | SpanKind::LinkFaultCleared { src_node, dst_node } => vec![
                ("src_node", *src_node as u64),
                ("dst_node", *dst_node as u64),
            ],
            SpanKind::ChaosFault { action, node } => {
                vec![("action", *action as u64), ("node", *node as u64)]
            }
            SpanKind::RpcAttempt {
                call,
                object,
                attempt,
                dst,
            } => vec![
                ("call", *call),
                ("object", *object),
                ("attempt", *attempt as u64),
                ("dst", *dst as u64),
            ],
            SpanKind::RpcRetry { call, attempt } => {
                vec![("call", *call), ("attempt", *attempt as u64)]
            }
            SpanKind::BindingHit { object, dst } | SpanKind::BindingRegistered { object, dst } => {
                vec![("object", *object), ("dst", *dst as u64)]
            }
            SpanKind::BindingMiss { object } | SpanKind::BindingInvalidated { object } => {
                vec![("object", *object)]
            }
            SpanKind::RpcCompleted { call, outcome } => {
                vec![("call", *call), ("outcome", outcome.code())]
            }
            SpanKind::FlowStarted { flow, object, kind } => {
                vec![("flow", *flow), ("object", *object), ("kind", kind.code())]
            }
            SpanKind::FlowStep { flow, step } => vec![("flow", *flow), ("step", *step as u64)],
            SpanKind::FlowCompleted { flow } | SpanKind::FlowAborted { flow } => {
                vec![("flow", *flow)]
            }
            SpanKind::GenerationStamp { object, generation } => {
                vec![("object", *object), ("generation", *generation)]
            }
            SpanKind::CallServed { object, call } => {
                vec![("object", *object), ("call", *call)]
            }
            SpanKind::EpochProposed {
                group,
                epoch,
                config,
            }
            | SpanKind::EpochCommitted {
                group,
                epoch,
                config,
            } => vec![("group", *group), ("epoch", *epoch), ("config", *config)],
            SpanKind::ReplicaEpoch {
                group,
                replica,
                epoch,
            } => vec![("group", *group), ("replica", *replica), ("epoch", *epoch)],
            SpanKind::EpochServed {
                group,
                replica,
                epoch,
                call,
            } => vec![
                ("group", *group),
                ("replica", *replica),
                ("epoch", *epoch),
                ("call", *call),
            ],
            SpanKind::VmCost {
                object,
                call,
                function,
                calls,
                instructions,
                work_nanos,
            } => vec![
                ("object", *object),
                ("call", *call),
                ("function", *function),
                ("calls", *calls),
                ("instructions", *instructions),
                ("work_nanos", *work_nanos),
            ],
        }
    }
}

/// One recorded event of a [`TraceLog`](crate::TraceLog).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// This event's id (see [`SpanId`] for the allocation schemes).
    pub id: SpanId,
    /// The event that causally triggered this one, if traced.
    pub parent: Option<SpanId>,
    /// Simulated time of the event, in nanoseconds since the run started.
    pub at_ns: u64,
    /// The node the event happened on, or [`NO_NODE`].
    pub node: u32,
    /// The typed payload.
    pub kind: SpanKind,
}

//! Assembler-style builders for function bodies.
//!
//! [`FunctionBuilder`] provides a fluent API with symbolic labels for
//! writing the bytecode bodies of dynamic functions, the way component
//! authors produce "executable code" in this reproduction.
//!
//! # Examples
//!
//! A `max3(int, int, int) -> int` built with labels:
//!
//! ```
//! use dcdo_vm::FunctionBuilder;
//!
//! let code = FunctionBuilder::parse("max3(int, int, int) -> int")?
//!     .load_arg(0)
//!     .load_arg(1)
//!     .call_native("max", 2)
//!     .load_arg(2)
//!     .call_native("max", 2)
//!     .ret()
//!     .build()?;
//! assert_eq!(code.signature().to_string(), "max3(int, int, int) -> int");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use dcdo_types::{FunctionSignature, ParseSignatureError};

use crate::instr::{CodeBlock, CodeValidationError, Instr};
use crate::value::Value;

/// A symbolic jump target handed out by [`FunctionBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced while assembling a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The signature string did not parse.
    Signature(ParseSignatureError),
    /// A label was referenced in a jump but never bound with
    /// [`FunctionBuilder::bind`].
    UnboundLabel(usize),
    /// A label was bound twice.
    RebindLabel(usize),
    /// The assembled code failed validation.
    Invalid(CodeValidationError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Signature(e) => write!(f, "{e}"),
            BuildError::UnboundLabel(l) => write!(f, "label {l} referenced but never bound"),
            BuildError::RebindLabel(l) => write!(f, "label {l} bound twice"),
            BuildError::Invalid(e) => write!(f, "invalid code: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ParseSignatureError> for BuildError {
    fn from(e: ParseSignatureError) -> Self {
        BuildError::Signature(e)
    }
}

impl From<CodeValidationError> for BuildError {
    fn from(e: CodeValidationError) -> Self {
        BuildError::Invalid(e)
    }
}

enum Slot {
    Fixed(Instr),
    Jump(Label),
    JumpIfFalse(Label),
    JumpIfTrue(Label),
}

/// Fluent assembler for one function body.
pub struct FunctionBuilder {
    signature: FunctionSignature,
    locals: u8,
    slots: Vec<Slot>,
    labels: Vec<Option<u32>>,
}

impl FunctionBuilder {
    /// Starts a builder for a function with the given signature.
    pub fn new(signature: FunctionSignature) -> Self {
        FunctionBuilder {
            signature,
            locals: 0,
            slots: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Starts a builder from a signature string like
    /// `"compare(int, int) -> int"`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Signature`] if the string does not parse.
    pub fn parse(signature: &str) -> Result<Self, BuildError> {
        Ok(FunctionBuilder::new(signature.parse()?))
    }

    /// Declares the number of local-variable slots.
    pub fn locals(&mut self, n: u8) -> &mut Self {
        self.locals = n;
        self
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction position.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let pos = self.slots.len() as u32;
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice (checked again in build)");
        *slot = Some(pos);
        self
    }

    /// Emits a raw instruction.
    pub fn instr(&mut self, instr: Instr) -> &mut Self {
        self.slots.push(Slot::Fixed(instr));
        self
    }

    /// Pushes a constant.
    pub fn push(&mut self, value: impl Into<Value>) -> &mut Self {
        self.instr(Instr::Push(value.into()))
    }

    /// Pushes an integer constant.
    pub fn push_int(&mut self, n: i64) -> &mut Self {
        self.push(n)
    }

    /// Pops the top of the stack.
    pub fn pop(&mut self) -> &mut Self {
        self.instr(Instr::Pop)
    }

    /// Duplicates the top of the stack.
    pub fn dup(&mut self) -> &mut Self {
        self.instr(Instr::Dup)
    }

    /// Swaps the two topmost values.
    pub fn swap(&mut self) -> &mut Self {
        self.instr(Instr::Swap)
    }

    /// Loads argument `n`.
    pub fn load_arg(&mut self, n: u8) -> &mut Self {
        self.instr(Instr::LoadArg(n))
    }

    /// Loads local `n`.
    pub fn load_local(&mut self, n: u8) -> &mut Self {
        self.instr(Instr::LoadLocal(n))
    }

    /// Stores into local `n`.
    pub fn store_local(&mut self, n: u8) -> &mut Self {
        self.instr(Instr::StoreLocal(n))
    }

    /// Integer addition.
    pub fn add(&mut self) -> &mut Self {
        self.instr(Instr::Add)
    }

    /// Integer subtraction.
    pub fn sub(&mut self) -> &mut Self {
        self.instr(Instr::Sub)
    }

    /// Integer multiplication.
    pub fn mul(&mut self) -> &mut Self {
        self.instr(Instr::Mul)
    }

    /// Integer division.
    pub fn div(&mut self) -> &mut Self {
        self.instr(Instr::Div)
    }

    /// Integer remainder.
    pub fn rem(&mut self) -> &mut Self {
        self.instr(Instr::Rem)
    }

    /// Integer negation.
    pub fn neg(&mut self) -> &mut Self {
        self.instr(Instr::Neg)
    }

    /// Boolean negation.
    pub fn not(&mut self) -> &mut Self {
        self.instr(Instr::Not)
    }

    /// Equality test.
    pub fn eq(&mut self) -> &mut Self {
        self.instr(Instr::Eq)
    }

    /// Inequality test.
    pub fn ne(&mut self) -> &mut Self {
        self.instr(Instr::Ne)
    }

    /// Integer less-than.
    pub fn lt(&mut self) -> &mut Self {
        self.instr(Instr::Lt)
    }

    /// Integer less-or-equal.
    pub fn le(&mut self) -> &mut Self {
        self.instr(Instr::Le)
    }

    /// Integer greater-than.
    pub fn gt(&mut self) -> &mut Self {
        self.instr(Instr::Gt)
    }

    /// Integer greater-or-equal.
    pub fn ge(&mut self) -> &mut Self {
        self.instr(Instr::Ge)
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        self.slots.push(Slot::Jump(label));
        self
    }

    /// Jump to `label` if the popped boolean is false.
    pub fn jump_if_false(&mut self, label: Label) -> &mut Self {
        self.slots.push(Slot::JumpIfFalse(label));
        self
    }

    /// Jump to `label` if the popped boolean is true.
    pub fn jump_if_true(&mut self, label: Label) -> &mut Self {
        self.slots.push(Slot::JumpIfTrue(label));
        self
    }

    /// Calls a dynamic function in the same object (through the DFM).
    pub fn call_dyn(&mut self, function: &str, argc: u8) -> &mut Self {
        self.instr(Instr::CallDyn {
            function: function.into(),
            argc,
        })
    }

    /// Calls a native intrinsic.
    pub fn call_native(&mut self, function: &str, argc: u8) -> &mut Self {
        self.instr(Instr::CallNative {
            function: function.into(),
            argc,
        })
    }

    /// Calls an exported function on another object (suspending outcall).
    /// Expects the target object reference below the arguments.
    pub fn call_remote(&mut self, function: &str, argc: u8) -> &mut Self {
        self.instr(Instr::CallRemote {
            function: function.into(),
            argc,
        })
    }

    /// Returns with the top of the stack.
    pub fn ret(&mut self) -> &mut Self {
        self.instr(Instr::Ret)
    }

    /// Builds a list from the top `n` values.
    pub fn make_list(&mut self, n: u8) -> &mut Self {
        self.instr(Instr::MakeList(n))
    }

    /// Charges simulated compute time.
    pub fn work(&mut self, nanos: u64) -> &mut Self {
        self.instr(Instr::Work(nanos))
    }

    /// Pushes the value of a persistent state slot.
    pub fn global_get(&mut self, key: &str) -> &mut Self {
        self.instr(Instr::GlobalGet(key.into()))
    }

    /// Pops a value into a persistent state slot.
    pub fn global_set(&mut self, key: &str) -> &mut Self {
        self.instr(Instr::GlobalSet(key.into()))
    }

    /// Resolves labels, validates, and produces the [`CodeBlock`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnboundLabel`] if any referenced label was
    /// never bound, or [`BuildError::Invalid`] if the assembled code fails
    /// [`CodeBlock::validate`].
    pub fn build(&mut self) -> Result<CodeBlock, BuildError> {
        let mut bound: HashMap<usize, u32> = HashMap::new();
        for (i, slot) in self.labels.iter().enumerate() {
            if let Some(pos) = slot {
                bound.insert(i, *pos);
            }
        }
        let resolve = |label: &Label| -> Result<u32, BuildError> {
            bound
                .get(&label.0)
                .copied()
                .ok_or(BuildError::UnboundLabel(label.0))
        };
        let mut instrs = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            instrs.push(match slot {
                Slot::Fixed(i) => i.clone(),
                Slot::Jump(l) => Instr::Jump(resolve(l)?),
                Slot::JumpIfFalse(l) => Instr::JumpIfFalse(resolve(l)?),
                Slot::JumpIfTrue(l) => Instr::JumpIfTrue(resolve(l)?),
            });
        }
        let block = CodeBlock::new(self.signature.clone(), self.locals, instrs);
        block.validate()?;
        Ok(block)
    }
}

impl fmt::Debug for FunctionBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FunctionBuilder")
            .field("signature", &self.signature.to_string())
            .field("instrs", &self.slots.len())
            .field("labels", &self.labels.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_build() {
        let code = FunctionBuilder::parse("add(int, int) -> int")
            .expect("signature")
            .load_arg(0)
            .load_arg(1)
            .add()
            .ret()
            .build()
            .expect("valid");
        assert_eq!(code.len(), 4);
        assert_eq!(code.signature().name().as_str(), "add");
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        // while (local0 < arg0) local0 += 1; return local0
        let mut b = FunctionBuilder::parse("count(int) -> int").expect("signature");
        b.locals(1);
        let top = b.new_label();
        let done = b.new_label();
        b.bind(top)
            .load_local(0)
            .load_arg(0)
            .lt()
            .jump_if_false(done)
            .load_local(0)
            .push_int(1)
            .add()
            .store_local(0)
            .jump(top)
            .bind(done)
            .load_local(0)
            .ret();
        let code = b.build().expect("valid");
        assert!(matches!(code.instrs()[3], Instr::JumpIfFalse(9)));
        assert!(matches!(code.instrs()[8], Instr::Jump(0)));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = FunctionBuilder::parse("f() -> unit").expect("signature");
        let l = b.new_label();
        b.jump(l);
        assert_eq!(b.build().unwrap_err(), BuildError::UnboundLabel(0));
    }

    #[test]
    fn invalid_code_is_rejected_at_build() {
        let mut b = FunctionBuilder::parse("f() -> unit").expect("signature");
        b.load_arg(0); // arity is 0
        assert!(matches!(b.build(), Err(BuildError::Invalid(_))));
    }

    #[test]
    fn bad_signature_is_rejected() {
        assert!(matches!(
            FunctionBuilder::parse("not a signature"),
            Err(BuildError::Signature(_))
        ));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_a_label_panics() {
        let mut b = FunctionBuilder::parse("f() -> unit").expect("signature");
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn build_errors_display() {
        assert!(BuildError::UnboundLabel(3).to_string().contains("label 3"));
        assert!(BuildError::RebindLabel(1).to_string().contains("twice"));
    }
}

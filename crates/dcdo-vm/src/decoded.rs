//! Pre-decoded, direct-threaded code with superinstruction fusion.
//!
//! The wire format ([`crate::codec`]) and the authoring format
//! ([`Instr`]/[`CodeBlock`]) are untouched: a [`DecodedCode`] is a purely
//! in-memory cache built once per code block by the resolver that loads it.
//! Decoding does three things:
//!
//! 1. **Flattens operands** — immediates, local/arg slot indices, and jump
//!    targets are inlined into a single `DecodedOp` array so the hot loop
//!    never chases the original instruction stream.
//! 2. **Pre-resolves jump targets** to *decoded* indices, so branches are a
//!    single assignment at run time.
//! 3. **Fuses hot sequences into superinstructions** — operand/operand/
//!    arith-or-compare runs ending in a store, return, or branch collapse
//!    into one dispatch. The peephole selector is deterministic (greedy,
//!    longest-match-first, in instruction order) and never fuses across a
//!    jump target, so every branch still lands on an op boundary.
//!
//! Each superinstruction knows its constituent original opcodes, and the
//! interpreter charges fuel and profiling counters **per constituent, in
//! original program order** — the profiler's tables are exact in
//! original-opcode terms whether fusion is on or off, and a fault inside a
//! fused op is attributed to the same instruction the unfused program would
//! have faulted at.
//!
//! Decoded code is cached by the issuing resolver next to its
//! generation-stamped slot table: the configuration operations that expire
//! [`CallToken`](crate::CallToken)s are exactly the ones that drop or
//! replace cached [`DecodedCode`], so a stale decode can never outlive the
//! configuration it was built from. [`DecodeCacheStats`] counts that
//! lifecycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use dcdo_types::{FunctionName, FunctionSignature};

use crate::error::VmError;
use crate::instr::{CodeBlock, Instr};
use crate::value::Value;

/// Returns the process default for superinstruction fusion: on, unless the
/// `DCDO_VM_FUSE` environment variable is set to `0` (read once).
pub fn fusion_default() -> bool {
    static FUSE: OnceLock<bool> = OnceLock::new();
    *FUSE.get_or_init(|| std::env::var("DCDO_VM_FUSE").map_or(true, |v| v != "0"))
}

/// Process-wide fused-execution counters, aggregated from every finished
/// [`VmThread::run`](crate::VmThread::run) (relaxed atomics, flushed once
/// per run, not per instruction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Original opcodes retired by threaded execution.
    pub retired: u64,
    /// The subset retired inside a superinstruction.
    pub fused: u64,
}

impl FusionStats {
    /// Fraction of retired original opcodes that ran inside a
    /// superinstruction (`0.0` when nothing retired).
    pub fn coverage(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.fused as f64 / self.retired as f64
        }
    }
}

static RETIRED_TOTAL: AtomicU64 = AtomicU64::new(0);
static RETIRED_FUSED: AtomicU64 = AtomicU64::new(0);

/// Reads the process-wide fused-execution counters.
pub fn fusion_stats() -> FusionStats {
    FusionStats {
        retired: RETIRED_TOTAL.load(Ordering::Relaxed),
        fused: RETIRED_FUSED.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide fused-execution counters (probe setup).
pub fn reset_fusion_stats() {
    RETIRED_TOTAL.store(0, Ordering::Relaxed);
    RETIRED_FUSED.store(0, Ordering::Relaxed);
}

pub(crate) fn record_retirement(retired: u64, fused: u64) {
    if retired > 0 {
        RETIRED_TOTAL.fetch_add(retired, Ordering::Relaxed);
        RETIRED_FUSED.fetch_add(fused, Ordering::Relaxed);
    }
}

/// Lifecycle counters for one resolver's decode cache.
///
/// `decodes` counts [`DecodedCode`] builds (cache fills), `hits` counts
/// resolutions served from already-decoded code, and `invalidations` counts
/// decoded blocks dropped or replaced by a configuration operation — the
/// same operations that expire outstanding [`CallToken`](crate::CallToken)s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Code blocks decoded (cache fills).
    pub decodes: u64,
    /// Resolutions served from cached decoded code.
    pub hits: u64,
    /// Decoded blocks dropped or replaced by configuration operations.
    pub invalidations: u64,
}

/// A fused operand: where a value comes from without touching the operand
/// stack.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Operand {
    /// Local slot `n` (original opcode `load_local`).
    Local(u8),
    /// Argument `n` (original opcode `load_arg`).
    Arg(u8),
    /// An inlined constant (original opcode `push`).
    Imm(Value),
}

impl Operand {
    /// The original opcode this operand stands for, for exact profiling.
    pub(crate) fn opcode(&self) -> usize {
        match self {
            Operand::Local(_) => 5,
            Operand::Arg(_) => 4,
            Operand::Imm(_) => 0,
        }
    }

    fn from_instr(instr: &Instr) -> Option<Operand> {
        match instr {
            Instr::LoadLocal(n) => Some(Operand::Local(*n)),
            Instr::LoadArg(n) => Some(Operand::Arg(*n)),
            Instr::Push(v) => Some(Operand::Imm(v.clone())),
            _ => None,
        }
    }
}

/// An integer arithmetic kind fused into a superinstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArithKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl ArithKind {
    fn from_instr(instr: &Instr) -> Option<ArithKind> {
        match instr {
            Instr::Add => Some(ArithKind::Add),
            Instr::Sub => Some(ArithKind::Sub),
            Instr::Mul => Some(ArithKind::Mul),
            Instr::Div => Some(ArithKind::Div),
            Instr::Rem => Some(ArithKind::Rem),
            _ => None,
        }
    }

    /// The original opcode, for exact profiling.
    pub(crate) fn opcode(self) -> usize {
        match self {
            ArithKind::Add => 7,
            ArithKind::Sub => 8,
            ArithKind::Mul => 9,
            ArithKind::Div => 10,
            ArithKind::Rem => 11,
        }
    }

    /// Evaluates `a op b` with the legacy stack discipline's error order:
    /// `b` was popped (and type-checked) first, then `a`, then the
    /// divide-by-zero check.
    pub(crate) fn eval(self, a: &Value, b: &Value) -> Result<i64, VmError> {
        let b = int_of(b)?;
        let a = int_of(a)?;
        match self {
            ArithKind::Add => Ok(a.wrapping_add(b)),
            ArithKind::Sub => Ok(a.wrapping_sub(b)),
            ArithKind::Mul => Ok(a.wrapping_mul(b)),
            ArithKind::Div if b == 0 => Err(VmError::DivideByZero),
            ArithKind::Div => Ok(a.wrapping_div(b)),
            ArithKind::Rem if b == 0 => Err(VmError::DivideByZero),
            ArithKind::Rem => Ok(a.wrapping_rem(b)),
        }
    }
}

/// A comparison kind fused into a compare-and-branch superinstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpKind {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpKind {
    fn from_instr(instr: &Instr) -> Option<CmpKind> {
        match instr {
            Instr::Eq => Some(CmpKind::Eq),
            Instr::Ne => Some(CmpKind::Ne),
            Instr::Lt => Some(CmpKind::Lt),
            Instr::Le => Some(CmpKind::Le),
            Instr::Gt => Some(CmpKind::Gt),
            Instr::Ge => Some(CmpKind::Ge),
            _ => None,
        }
    }

    /// The original opcode, for exact profiling.
    pub(crate) fn opcode(self) -> usize {
        match self {
            CmpKind::Eq => 16,
            CmpKind::Ne => 17,
            CmpKind::Lt => 18,
            CmpKind::Le => 19,
            CmpKind::Gt => 20,
            CmpKind::Ge => 21,
        }
    }

    /// Evaluates the comparison. `Eq`/`Ne` compare any two values and never
    /// fault; the ordered comparisons type-check `b` first, then `a`,
    /// matching the legacy pop order.
    pub(crate) fn eval(self, a: &Value, b: &Value) -> Result<bool, VmError> {
        match self {
            CmpKind::Eq => Ok(a == b),
            CmpKind::Ne => Ok(a != b),
            _ => {
                let b = int_of(b)?;
                let a = int_of(a)?;
                Ok(match self {
                    CmpKind::Lt => a < b,
                    CmpKind::Le => a <= b,
                    CmpKind::Gt => a > b,
                    CmpKind::Ge => a >= b,
                    CmpKind::Eq | CmpKind::Ne => unreachable!(),
                })
            }
        }
    }
}

fn int_of(v: &Value) -> Result<i64, VmError> {
    v.as_int().ok_or(VmError::TypeMismatch {
        expected: dcdo_types::TypeTag::Int,
        found: v.type_tag(),
    })
}

/// One pre-decoded operation: either a single original instruction with its
/// operands inlined and jump targets rewritten to decoded indices, or a
/// superinstruction covering 2–5 original instructions.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DecodedOp {
    // ---- single original instructions (operands inlined) ----------------
    Push(Value),
    Pop,
    Dup,
    Swap,
    LoadArg(u8),
    LoadLocal(u8),
    StoreLocal(u8),
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Neg,
    Not,
    And,
    Or,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Unconditional jump to a *decoded* index.
    Jump(u32),
    /// Pop a boolean; jump to a decoded index if false.
    JumpIfFalse(u32),
    /// Pop a boolean; jump to a decoded index if true.
    JumpIfTrue(u32),
    /// Dynamic call with a per-block inline-cache site index: the frame's
    /// `sites[site]` slot caches the [`CallToken`](crate::CallToken) this
    /// exact call site last redeemed.
    CallDyn {
        function: FunctionName,
        argc: u8,
        site: u32,
    },
    CallNative {
        function: FunctionName,
        argc: u8,
    },
    CallRemote {
        function: FunctionName,
        argc: u8,
    },
    Ret,
    MakeList(u8),
    ListGet,
    ListSet,
    ListLen,
    ListPush,
    StrConcat,
    StrLen,
    Work(u64),
    GlobalGet(FunctionName),
    GlobalSet(FunctionName),
    // ---- superinstructions (constituents charged individually) ----------
    /// `[a, b, cmp, jump_if_{false,true}]` — compare and branch without
    /// touching the operand stack. Branches (to a decoded index) when the
    /// comparison equals `when`.
    BinBr {
        a: Operand,
        b: Operand,
        cmp: CmpKind,
        when: bool,
        target: u32,
    },
    /// `[a, b, arith, store_local dst]`.
    BinStore {
        a: Operand,
        b: Operand,
        op: ArithKind,
        dst: u8,
    },
    /// `[a, b, arith, store_local dst, jump]` — the canonical counted-loop
    /// latch: compute, store, and jump back to the loop head (a decoded
    /// index) in one dispatch.
    BinStoreJmp {
        a: Operand,
        b: Operand,
        op: ArithKind,
        dst: u8,
        target: u32,
    },
    /// `[a, b, arith, ret]`.
    BinRet {
        a: Operand,
        b: Operand,
        op: ArithKind,
    },
    /// `[a, b, arith]` — result pushed.
    BinPush {
        a: Operand,
        b: Operand,
        op: ArithKind,
    },
    /// `[src, store_local dst]` — a local/arg/constant shuffle.
    OpStore {
        src: Operand,
        dst: u8,
    },
    /// `[src, ret]`.
    OpRet {
        src: Operand,
    },
    /// `[arg, call_dyn f/1]` — single-argument dynamic call with the
    /// argument read straight from a local/arg/constant, skipping the
    /// operand-stack round trip. Carries an inline-cache site like
    /// [`DecodedOp::CallDyn`].
    CallDyn1 {
        arg: Operand,
        function: FunctionName,
        site: u32,
    },
}

/// A code block decoded for direct-threaded execution, cached by the
/// resolver that loaded it and shared per [`ResolvedCall`](crate::ResolvedCall).
#[derive(Debug)]
pub struct DecodedCode {
    block: Arc<CodeBlock>,
    ops: Box<[DecodedOp]>,
    call_sites: u32,
    fused_ops: u32,
}

impl DecodedCode {
    /// Decodes `block`, fusing superinstructions when `fuse` is set.
    ///
    /// Deterministic: the selector scans in instruction order and always
    /// takes the longest pattern that starts at the current index and does
    /// not contain a jump target in its interior.
    pub fn decode(block: Arc<CodeBlock>, fuse: bool) -> DecodedCode {
        let instrs = block.instrs();
        let len = instrs.len();

        // Pass 0: collect jump targets. A fused op may *start* at a target
        // but never cover one in its interior, so every reachable branch
        // destination stays a decoded-op boundary.
        let mut is_target = vec![false; len];
        for instr in instrs {
            if let Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) = instr {
                if let Some(slot) = is_target.get_mut(*t as usize) {
                    *slot = true;
                }
            }
        }

        // Pass 1: greedy longest-match-first scan. `map[i]` is the decoded
        // index of the op that covers original instruction `i` (interior
        // constituents map to their superinstruction, but interiors are
        // never branch targets, so only op starts are ever looked up).
        let mut ops: Vec<DecodedOp> = Vec::with_capacity(len);
        let mut map = vec![0u32; len];
        let mut call_sites = 0u32;
        let mut fused_ops = 0u32;
        let mut i = 0usize;
        while i < len {
            let decoded_index = ops.len() as u32;
            let window_free = |k: usize| (i + 1..i + k).all(|j| !is_target[j]);
            let fused = if fuse {
                Self::select_fused(instrs, i, &window_free, &mut call_sites)
            } else {
                None
            };
            let width = match fused {
                Some((op, width)) => {
                    fused_ops += 1;
                    ops.push(op);
                    width
                }
                None => {
                    ops.push(Self::decode_one(&instrs[i], &mut call_sites));
                    1
                }
            };
            for slot in &mut map[i..i + width] {
                *slot = decoded_index;
            }
            i += width;
        }

        // Pass 2: rewrite jump targets (still original indices) through the
        // map. Targets at or past the end fall off into the implicit return.
        let decoded_len = ops.len() as u32;
        let remap = |t: u32| -> u32 { map.get(t as usize).copied().unwrap_or(decoded_len) };
        for op in &mut ops {
            match op {
                DecodedOp::Jump(t)
                | DecodedOp::JumpIfFalse(t)
                | DecodedOp::JumpIfTrue(t)
                | DecodedOp::BinBr { target: t, .. }
                | DecodedOp::BinStoreJmp { target: t, .. } => *t = remap(*t),
                _ => {}
            }
        }

        DecodedCode {
            block,
            ops: ops.into_boxed_slice(),
            call_sites,
            fused_ops,
        }
    }

    /// Tries every superinstruction pattern starting at `i`, longest first.
    /// `window_free(k)` reports whether a `k`-wide window starting at `i`
    /// has no jump target in its interior.
    fn select_fused(
        instrs: &[Instr],
        i: usize,
        window_free: &impl Fn(usize) -> bool,
        call_sites: &mut u32,
    ) -> Option<(DecodedOp, usize)> {
        let len = instrs.len();
        // Five-wide: the counted-loop latch — operand, operand, arith,
        // store, then the unconditional jump back to the loop head.
        if i + 5 <= len && window_free(5) {
            if let (Some(a), Some(b)) = (
                Operand::from_instr(&instrs[i]),
                Operand::from_instr(&instrs[i + 1]),
            ) {
                if let (Some(op), Instr::StoreLocal(dst), Instr::Jump(t)) = (
                    ArithKind::from_instr(&instrs[i + 2]),
                    &instrs[i + 3],
                    &instrs[i + 4],
                ) {
                    return Some((
                        DecodedOp::BinStoreJmp {
                            a,
                            b,
                            op,
                            dst: *dst,
                            target: *t,
                        },
                        5,
                    ));
                }
            }
        }
        // Four-wide: operand, operand, arith/cmp, then store/ret/branch.
        if i + 4 <= len && window_free(4) {
            if let (Some(a), Some(b)) = (
                Operand::from_instr(&instrs[i]),
                Operand::from_instr(&instrs[i + 1]),
            ) {
                if let Some(op) = ArithKind::from_instr(&instrs[i + 2]) {
                    match &instrs[i + 3] {
                        Instr::StoreLocal(dst) => {
                            return Some((
                                DecodedOp::BinStore {
                                    a,
                                    b,
                                    op,
                                    dst: *dst,
                                },
                                4,
                            ));
                        }
                        Instr::Ret => return Some((DecodedOp::BinRet { a, b, op }, 4)),
                        _ => {}
                    }
                } else if let Some(cmp) = CmpKind::from_instr(&instrs[i + 2]) {
                    match &instrs[i + 3] {
                        Instr::JumpIfFalse(t) => {
                            return Some((
                                DecodedOp::BinBr {
                                    a,
                                    b,
                                    cmp,
                                    when: false,
                                    target: *t,
                                },
                                4,
                            ));
                        }
                        Instr::JumpIfTrue(t) => {
                            return Some((
                                DecodedOp::BinBr {
                                    a,
                                    b,
                                    cmp,
                                    when: true,
                                    target: *t,
                                },
                                4,
                            ));
                        }
                        _ => {}
                    }
                }
            }
        }
        // Three-wide: operand, operand, arith (result pushed).
        if i + 3 <= len && window_free(3) {
            if let (Some(a), Some(b), Some(op)) = (
                Operand::from_instr(&instrs[i]),
                Operand::from_instr(&instrs[i + 1]),
                ArithKind::from_instr(&instrs[i + 2]),
            ) {
                return Some((DecodedOp::BinPush { a, b, op }, 3));
            }
        }
        // Two-wide: operand shuffles and single-argument calls.
        if i + 2 <= len && window_free(2) {
            if let Some(src) = Operand::from_instr(&instrs[i]) {
                match &instrs[i + 1] {
                    Instr::StoreLocal(dst) => {
                        return Some((DecodedOp::OpStore { src, dst: *dst }, 2));
                    }
                    Instr::Ret => return Some((DecodedOp::OpRet { src }, 2)),
                    Instr::CallDyn { function, argc: 1 } => {
                        let site = *call_sites;
                        *call_sites += 1;
                        return Some((
                            DecodedOp::CallDyn1 {
                                arg: src,
                                function: function.clone(),
                                site,
                            },
                            2,
                        ));
                    }
                    _ => {}
                }
            }
        }
        None
    }

    fn decode_one(instr: &Instr, call_sites: &mut u32) -> DecodedOp {
        match instr {
            Instr::Push(v) => DecodedOp::Push(v.clone()),
            Instr::Pop => DecodedOp::Pop,
            Instr::Dup => DecodedOp::Dup,
            Instr::Swap => DecodedOp::Swap,
            Instr::LoadArg(n) => DecodedOp::LoadArg(*n),
            Instr::LoadLocal(n) => DecodedOp::LoadLocal(*n),
            Instr::StoreLocal(n) => DecodedOp::StoreLocal(*n),
            Instr::Add => DecodedOp::Add,
            Instr::Sub => DecodedOp::Sub,
            Instr::Mul => DecodedOp::Mul,
            Instr::Div => DecodedOp::Div,
            Instr::Rem => DecodedOp::Rem,
            Instr::Neg => DecodedOp::Neg,
            Instr::Not => DecodedOp::Not,
            Instr::And => DecodedOp::And,
            Instr::Or => DecodedOp::Or,
            Instr::Eq => DecodedOp::Eq,
            Instr::Ne => DecodedOp::Ne,
            Instr::Lt => DecodedOp::Lt,
            Instr::Le => DecodedOp::Le,
            Instr::Gt => DecodedOp::Gt,
            Instr::Ge => DecodedOp::Ge,
            Instr::Jump(t) => DecodedOp::Jump(*t),
            Instr::JumpIfFalse(t) => DecodedOp::JumpIfFalse(*t),
            Instr::JumpIfTrue(t) => DecodedOp::JumpIfTrue(*t),
            Instr::CallDyn { function, argc } => {
                let site = *call_sites;
                *call_sites += 1;
                DecodedOp::CallDyn {
                    function: function.clone(),
                    argc: *argc,
                    site,
                }
            }
            Instr::CallNative { function, argc } => DecodedOp::CallNative {
                function: function.clone(),
                argc: *argc,
            },
            Instr::CallRemote { function, argc } => DecodedOp::CallRemote {
                function: function.clone(),
                argc: *argc,
            },
            Instr::Ret => DecodedOp::Ret,
            Instr::MakeList(n) => DecodedOp::MakeList(*n),
            Instr::ListGet => DecodedOp::ListGet,
            Instr::ListSet => DecodedOp::ListSet,
            Instr::ListLen => DecodedOp::ListLen,
            Instr::ListPush => DecodedOp::ListPush,
            Instr::StrConcat => DecodedOp::StrConcat,
            Instr::StrLen => DecodedOp::StrLen,
            Instr::Work(n) => DecodedOp::Work(*n),
            Instr::GlobalGet(k) => DecodedOp::GlobalGet(k.clone()),
            Instr::GlobalSet(k) => DecodedOp::GlobalSet(k.clone()),
        }
    }

    /// The original code block this decode was built from.
    pub fn block(&self) -> &Arc<CodeBlock> {
        &self.block
    }

    /// The declared signature (delegated to the block).
    pub fn signature(&self) -> &FunctionSignature {
        self.block.signature()
    }

    /// The declared local-slot count (delegated to the block).
    pub fn locals(&self) -> u8 {
        self.block.locals()
    }

    pub(crate) fn ops(&self) -> &[DecodedOp] {
        &self.ops
    }

    /// Number of `CallDyn` sites (the frame's inline-cache slot count).
    pub fn call_sites(&self) -> usize {
        self.call_sites as usize
    }

    /// Number of decoded ops (≤ the original instruction count).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of superinstructions the selector emitted.
    pub fn fused_op_count(&self) -> usize {
        self.fused_ops as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdo_types::FunctionSignature;

    fn block(instrs: Vec<Instr>) -> Arc<CodeBlock> {
        let sig: FunctionSignature = "f(int) -> int".parse().expect("sig");
        Arc::new(CodeBlock::new(sig, 4, instrs))
    }

    #[test]
    fn selector_fuses_the_spin_loop_shapes() {
        use Instr::*;
        // The vm_spin body: prologue shuffles, compare-and-branch, the
        // decrement, and the epilogue all fuse.
        let code = DecodedCode::decode(
            block(vec![
                Push(Value::Int(0)), // 0  \ OpStore
                StoreLocal(0),       // 1  /
                LoadArg(0),          // 2  \ OpStore
                StoreLocal(1),       // 3  /
                LoadLocal(1),        // 4  \
                Push(Value::Int(0)), // 5  | BinBr
                Gt,                  // 6  |
                JumpIfFalse(14),     // 7  /
                LoadLocal(1),        // 8  \
                Push(Value::Int(1)), // 9  | BinStore
                Sub,                 // 10 |
                StoreLocal(1),       // 11 /
                Jump(4),             // 12
                Pop,                 // 13 (dead, single)
                LoadLocal(0),        // 14 \ OpRet
                Ret,                 // 15 /
            ]),
            true,
        );
        assert_eq!(code.op_count(), 6);
        assert_eq!(code.fused_op_count(), 5);
        assert!(matches!(code.ops()[0], DecodedOp::OpStore { .. }));
        assert!(matches!(code.ops()[1], DecodedOp::OpStore { .. }));
        assert!(matches!(
            code.ops()[2],
            DecodedOp::BinBr {
                when: false,
                cmp: CmpKind::Gt,
                ..
            }
        ));
        // The decrement and its back-jump merge into the loop-latch
        // superinstruction; Jump(4) → decoded index of the BinBr.
        match &code.ops()[3] {
            DecodedOp::BinStoreJmp {
                op: ArithKind::Sub,
                dst: 1,
                target,
                ..
            } => assert_eq!(*target, 2),
            other => panic!("expected BinStoreJmp, got {other:?}"),
        }
        // JumpIfFalse(14) → the OpRet after the dead single Pop.
        assert!(matches!(code.ops()[4], DecodedOp::Pop));
        match &code.ops()[2] {
            DecodedOp::BinBr { target, .. } => assert_eq!(*target, 5),
            other => panic!("expected BinBr, got {other:?}"),
        }
        assert!(matches!(code.ops()[5], DecodedOp::OpRet { .. }));
    }

    #[test]
    fn jump_target_in_the_interior_suppresses_fusion() {
        use Instr::*;
        // Instruction 2 (Add) is a branch target, so [0..4] must not fuse
        // into a BinStore; the tail [2..4] can't fuse either (Add alone is
        // not an operand), so everything decodes singly except none.
        let code = DecodedCode::decode(
            block(vec![
                LoadArg(0),          // 0
                Push(Value::Int(1)), // 1
                Add,                 // 2  <- target
                StoreLocal(0),       // 3
                JumpIfTrue(2),       // 4
                Ret,                 // 5
            ]),
            true,
        );
        // [0,1] can't pair (no OpStore/OpRet follows the window of 2 at 0:
        // instr 1 is Push, so the 2-wide pattern [operand, store/ret] does
        // not match) — everything is single.
        assert_eq!(code.op_count(), 6);
        assert_eq!(code.fused_op_count(), 0);
        match &code.ops()[4] {
            DecodedOp::JumpIfTrue(t) => assert_eq!(*t, 2),
            other => panic!("expected JumpIfTrue, got {other:?}"),
        }
    }

    #[test]
    fn branching_to_a_fused_op_start_is_allowed() {
        use Instr::*;
        let code = DecodedCode::decode(
            block(vec![
                Jump(1),    // 0
                LoadArg(0), // 1  <- target, start of OpRet
                Ret,        // 2
            ]),
            true,
        );
        assert_eq!(code.op_count(), 2);
        assert_eq!(code.fused_op_count(), 1);
        assert_eq!(code.ops()[0], DecodedOp::Jump(1));
    }

    #[test]
    fn fusion_off_decodes_one_to_one() {
        use Instr::*;
        let instrs = vec![LoadArg(0), Push(Value::Int(1)), Add, Ret];
        let fused = DecodedCode::decode(block(instrs.clone()), true);
        let unfused = DecodedCode::decode(block(instrs), false);
        assert_eq!(fused.op_count(), 1);
        assert_eq!(fused.fused_op_count(), 1);
        assert_eq!(unfused.op_count(), 4);
        assert_eq!(unfused.fused_op_count(), 0);
    }

    #[test]
    fn decode_is_deterministic() {
        use Instr::*;
        let instrs = vec![
            LoadLocal(0),
            LoadLocal(1),
            Lt,
            JumpIfTrue(0),
            LoadLocal(2),
            Push(Value::Int(3)),
            Mul,
            StoreLocal(2),
            Ret,
        ];
        let a = DecodedCode::decode(block(instrs.clone()), true);
        let b = DecodedCode::decode(block(instrs), true);
        assert_eq!(a.ops(), b.ops());
        assert_eq!(a.call_sites(), b.call_sites());
    }

    #[test]
    fn call_sites_number_in_decode_order() {
        use Instr::*;
        let code = DecodedCode::decode(
            block(vec![
                CallDyn {
                    function: "a".into(),
                    argc: 0,
                },
                Pop,
                CallDyn {
                    function: "b".into(),
                    argc: 0,
                },
                Pop,
                Ret,
            ]),
            true,
        );
        assert_eq!(code.call_sites(), 2);
        let sites: Vec<u32> = code
            .ops()
            .iter()
            .filter_map(|op| match op {
                DecodedOp::CallDyn { site, .. } => Some(*site),
                _ => None,
            })
            .collect();
        assert_eq!(sites, vec![0, 1]);
    }

    #[test]
    fn out_of_range_targets_map_to_the_implicit_return() {
        use Instr::*;
        // CodeBlock::new does not validate; the interpreter treats a jump
        // past the end as falling off into the implicit unit return, and
        // the decoder must preserve that.
        let code = DecodedCode::decode(block(vec![Jump(9)]), true);
        assert_eq!(code.ops()[0], DecodedOp::Jump(1));
    }

    #[test]
    fn coverage_math() {
        let s = FusionStats {
            retired: 100,
            fused: 75,
        };
        assert!((s.coverage() - 0.75).abs() < 1e-9);
        assert_eq!(FusionStats::default().coverage(), 0.0);
    }
}

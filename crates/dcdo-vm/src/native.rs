//! Host-provided native intrinsics.
//!
//! Components may call a small library of built-in functions supplied by the
//! host runtime (string and list utilities). Natives are *not* dynamic
//! functions: they are not in the DFM, cannot be evolved, and cannot make
//! outcalls — they model the unchanging runtime library a Legion object is
//! linked against.

use std::collections::HashMap;
use std::fmt;

use dcdo_types::FunctionName;

use crate::error::VmError;
use crate::value::Value;

/// A native intrinsic: pure function from arguments to a value.
pub type NativeFn = fn(&[Value]) -> Result<Value, String>;

/// A registry of native intrinsics.
pub struct NativeRegistry {
    map: HashMap<FunctionName, NativeFn>,
}

impl NativeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        NativeRegistry {
            map: HashMap::new(),
        }
    }

    /// Creates a registry preloaded with the standard intrinsics:
    /// `abs`, `min`, `max`, `str_upper`, `str_lower`, `list_sum`,
    /// `list_reverse`, `list_sort`, `list_contains`.
    pub fn standard() -> Self {
        let mut r = NativeRegistry::new();
        r.register("abs", native_abs);
        r.register("min", native_min);
        r.register("max", native_max);
        r.register("str_upper", native_str_upper);
        r.register("str_lower", native_str_lower);
        r.register("list_sum", native_list_sum);
        r.register("list_reverse", native_list_reverse);
        r.register("list_sort", native_list_sort);
        r.register("list_contains", native_list_contains);
        r
    }

    /// Registers (or replaces) an intrinsic.
    pub fn register(&mut self, name: impl Into<FunctionName>, f: NativeFn) {
        self.map.insert(name.into(), f);
    }

    /// Invokes an intrinsic.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::UnknownNative`] if the name is not registered and
    /// [`VmError::NativeError`] if the intrinsic itself fails.
    pub fn call(&self, name: &FunctionName, args: &[Value]) -> Result<Value, VmError> {
        let f = self
            .map
            .get(name)
            .ok_or_else(|| VmError::UnknownNative(name.clone()))?;
        f(args).map_err(VmError::NativeError)
    }

    /// Returns the number of registered intrinsics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no intrinsics are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Default for NativeRegistry {
    fn default() -> Self {
        NativeRegistry::standard()
    }
}

impl fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeRegistry")
            .field("intrinsics", &self.map.len())
            .finish()
    }
}

fn want_int(args: &[Value], i: usize) -> Result<i64, String> {
    args.get(i)
        .and_then(Value::as_int)
        .ok_or_else(|| format!("argument {i} must be an int"))
}

fn want_str(args: &[Value], i: usize) -> Result<&str, String> {
    args.get(i)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("argument {i} must be a str"))
}

fn want_list(args: &[Value], i: usize) -> Result<&[Value], String> {
    args.get(i)
        .and_then(Value::as_list)
        .ok_or_else(|| format!("argument {i} must be a list"))
}

fn native_abs(args: &[Value]) -> Result<Value, String> {
    Ok(Value::Int(want_int(args, 0)?.saturating_abs()))
}

fn native_min(args: &[Value]) -> Result<Value, String> {
    Ok(Value::Int(want_int(args, 0)?.min(want_int(args, 1)?)))
}

fn native_max(args: &[Value]) -> Result<Value, String> {
    Ok(Value::Int(want_int(args, 0)?.max(want_int(args, 1)?)))
}

fn native_str_upper(args: &[Value]) -> Result<Value, String> {
    Ok(Value::str(want_str(args, 0)?.to_uppercase()))
}

fn native_str_lower(args: &[Value]) -> Result<Value, String> {
    Ok(Value::str(want_str(args, 0)?.to_lowercase()))
}

fn native_list_sum(args: &[Value]) -> Result<Value, String> {
    let mut sum: i64 = 0;
    for (i, v) in want_list(args, 0)?.iter().enumerate() {
        sum = sum.saturating_add(
            v.as_int()
                .ok_or_else(|| format!("element {i} is not an int"))?,
        );
    }
    Ok(Value::Int(sum))
}

fn native_list_reverse(args: &[Value]) -> Result<Value, String> {
    let mut v = want_list(args, 0)?.to_vec();
    v.reverse();
    Ok(Value::List(v))
}

fn native_list_sort(args: &[Value]) -> Result<Value, String> {
    let list = want_list(args, 0)?;
    let mut ints = Vec::with_capacity(list.len());
    for (i, v) in list.iter().enumerate() {
        ints.push(
            v.as_int()
                .ok_or_else(|| format!("element {i} is not an int"))?,
        );
    }
    ints.sort_unstable();
    Ok(Value::List(ints.into_iter().map(Value::Int).collect()))
}

fn native_list_contains(args: &[Value]) -> Result<Value, String> {
    let list = want_list(args, 0)?;
    let needle = args.get(1).ok_or("missing needle argument")?;
    Ok(Value::Bool(list.contains(needle)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_is_populated() {
        let r = NativeRegistry::standard();
        assert!(!r.is_empty());
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn arithmetic_intrinsics() {
        let r = NativeRegistry::standard();
        assert_eq!(
            r.call(&"abs".into(), &[Value::Int(-5)]).expect("abs"),
            Value::Int(5)
        );
        assert_eq!(
            r.call(&"min".into(), &[Value::Int(3), Value::Int(7)])
                .expect("min"),
            Value::Int(3)
        );
        assert_eq!(
            r.call(&"max".into(), &[Value::Int(3), Value::Int(7)])
                .expect("max"),
            Value::Int(7)
        );
    }

    #[test]
    fn string_intrinsics() {
        let r = NativeRegistry::standard();
        assert_eq!(
            r.call(&"str_upper".into(), &[Value::str("abc")])
                .expect("upper"),
            Value::str("ABC")
        );
        assert_eq!(
            r.call(&"str_lower".into(), &[Value::str("ABC")])
                .expect("lower"),
            Value::str("abc")
        );
    }

    #[test]
    fn list_intrinsics() {
        let r = NativeRegistry::standard();
        let list = Value::List(vec![Value::Int(3), Value::Int(1), Value::Int(2)]);
        assert_eq!(
            r.call(&"list_sum".into(), std::slice::from_ref(&list))
                .expect("sum"),
            Value::Int(6)
        );
        assert_eq!(
            r.call(&"list_sort".into(), std::slice::from_ref(&list))
                .expect("sort"),
            Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            r.call(&"list_reverse".into(), std::slice::from_ref(&list))
                .expect("reverse"),
            Value::List(vec![Value::Int(2), Value::Int(1), Value::Int(3)])
        );
        assert_eq!(
            r.call(&"list_contains".into(), &[list, Value::Int(2)])
                .expect("contains"),
            Value::Bool(true)
        );
    }

    #[test]
    fn unknown_native_errors() {
        let r = NativeRegistry::standard();
        assert!(matches!(
            r.call(&"nope".into(), &[]),
            Err(VmError::UnknownNative(_))
        ));
    }

    #[test]
    fn native_type_errors_are_reported() {
        let r = NativeRegistry::standard();
        assert!(matches!(
            r.call(&"abs".into(), &[Value::str("x")]),
            Err(VmError::NativeError(_))
        ));
        assert!(matches!(
            r.call(&"list_sum".into(), &[Value::List(vec![Value::str("x")])]),
            Err(VmError::NativeError(_))
        ));
    }

    #[test]
    fn custom_registration_replaces() {
        let mut r = NativeRegistry::new();
        r.register("two", |_| Ok(Value::Int(2)));
        assert_eq!(r.call(&"two".into(), &[]).expect("two"), Value::Int(2));
        r.register("two", |_| Ok(Value::Int(3)));
        assert_eq!(r.call(&"two".into(), &[]).expect("two"), Value::Int(3));
    }
}

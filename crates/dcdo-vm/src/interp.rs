//! The resumable interpreter.
//!
//! A [`VmThread`] models one Legion thread executing inside an object. It
//! runs bytecode until it completes, faults, or *suspends* at a remote
//! outcall ([`Instr::CallRemote`]); a suspended thread's entire state —
//! call frames, operand stacks, locals — is parked inside the `VmThread`
//! and resumes when the owner delivers the reply. This is exactly the
//! "thread blocked on an outcall" state in which the paper's disappearing
//! function and disappearing component problems arise (§3.1): configuration
//! operations execute between suspension and resumption, and when the thread
//! wakes it may find the function or component it needs gone.
//!
//! All intra-object calls resolve through the owner's [`CallResolver`] at
//! call time, and entry/exit of every frame is reported to the resolver so a
//! DFM can maintain the per-function active-thread counters used for thread
//! activity monitoring (§3.2).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use dcdo_types::{ComponentId, FunctionName, ObjectId, TypeTag};

use crate::error::VmError;
use crate::instr::{CodeBlock, Instr};
use crate::native::NativeRegistry;
use crate::profile::{ThreadProfile, VmProfile};
use crate::resolver::{CallOrigin, CallResolver, CallToken, ResolveError, ResolvedCall};
use crate::store::ValueStore;
use crate::value::Value;

/// Maximum call-stack depth.
pub const MAX_CALL_DEPTH: usize = 128;

/// One call frame of a running thread.
#[derive(Debug, Clone)]
struct Frame {
    code: Arc<CodeBlock>,
    component: ComponentId,
    pc: usize,
    args: Vec<Value>,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

impl Frame {
    fn new(resolved: ResolvedCall, args: Vec<Value>) -> Self {
        let locals = vec![Value::Unit; resolved.code.locals() as usize];
        Frame {
            code: resolved.code,
            component: resolved.component,
            pc: 0,
            args,
            locals,
            stack: Vec::new(),
        }
    }

    fn function(&self) -> &FunctionName {
        self.code.signature().name()
    }
}

/// A pending remote invocation produced by a suspended thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcallRequest {
    /// The object to invoke.
    pub target: ObjectId,
    /// The exported function to invoke on the target.
    pub function: FunctionName,
    /// The arguments.
    pub args: Vec<Value>,
}

/// The observable status of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Ready to run (fresh or just resumed).
    Runnable,
    /// Parked at a remote outcall awaiting a reply.
    Suspended,
    /// Finished (completed or faulted); may not run again.
    Done,
}

/// The result of running a thread until it can run no further.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The root function returned this value.
    Completed(Value),
    /// The thread suspended at a remote outcall; deliver the reply with
    /// [`VmThread::resume`] (or abort with [`VmThread::resume_err`]) and run
    /// again.
    Suspended(OutcallRequest),
    /// The thread faulted; its frames have been unwound (the resolver saw
    /// matching exits for every enter).
    Faulted(VmError),
}

/// A (possibly suspended) thread executing dynamic-function code.
pub struct VmThread {
    frames: Vec<Frame>,
    status: ThreadStatus,
    consumed_nanos: u64,
    pending_resume: Option<Result<Value, VmError>>,
    /// Per-call-site inline cache: the callee name's identity key maps to
    /// the generation-stamped [`CallToken`] the resolver issued last time
    /// this site resolved. A hit turns dispatch into one slot-table index;
    /// any configuration change bumps the resolver's generation, so stale
    /// entries fail redemption and fall back to full by-name resolution.
    call_cache: HashMap<usize, CallToken>,
    /// Opt-in cost attribution; `None` (the default) costs one predicted
    /// branch per retired instruction.
    profile: Option<Box<ThreadProfile>>,
}

impl VmThread {
    /// Starts a thread by resolving and calling `function` with `args`.
    ///
    /// `origin` selects the visibility rule: [`CallOrigin::External`] for
    /// invocations arriving from other objects (only exported functions),
    /// [`CallOrigin::Internal`] for locally initiated work.
    ///
    /// # Errors
    ///
    /// Fails fast — without creating a thread — if resolution, arity, or
    /// argument types fail. The resolver's `enter` is called on success.
    pub fn call(
        resolver: &mut dyn CallResolver,
        function: &FunctionName,
        args: Vec<Value>,
        origin: CallOrigin,
    ) -> Result<VmThread, VmError> {
        let resolved = resolve_checked(resolver, function, origin)?;
        check_args(&resolved, function, &args)?;
        let mut thread = VmThread {
            frames: Vec::new(),
            status: ThreadStatus::Runnable,
            consumed_nanos: resolver.dispatch_cost_nanos(),
            pending_resume: None,
            call_cache: HashMap::new(),
            profile: None,
        };
        resolver.enter(function, resolved.component);
        thread.frames.push(Frame::new(resolved, args));
        Ok(thread)
    }

    /// Returns the thread's status.
    pub fn status(&self) -> ThreadStatus {
        self.status
    }

    /// Returns the current call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The components with at least one frame on this thread's stack.
    pub fn components_on_stack(&self) -> Vec<ComponentId> {
        let mut v: Vec<ComponentId> = self.frames.iter().map(|f| f.component).collect();
        v.sort();
        v.dedup();
        v
    }

    /// The functions with at least one frame on this thread's stack,
    /// innermost last.
    pub fn functions_on_stack(&self) -> Vec<FunctionName> {
        self.frames.iter().map(|f| f.function().clone()).collect()
    }

    /// Drains the simulated compute time accumulated since the last call
    /// (from `Work` instructions and dispatch costs).
    pub fn take_consumed_nanos(&mut self) -> u64 {
        std::mem::take(&mut self.consumed_nanos)
    }

    /// Turns on cost attribution for this thread: per-function call /
    /// instruction / `Work`-nanosecond counters plus a per-opcode aggregate.
    ///
    /// Frames already on the stack (typically just the root, when called
    /// right after [`VmThread::call`]) are counted as entered. Idempotent —
    /// enabling twice keeps the existing counters.
    pub fn enable_profiling(&mut self) {
        if self.profile.is_some() {
            return;
        }
        let mut profile = Box::<ThreadProfile>::default();
        for frame in &self.frames {
            profile.enter(frame.function());
        }
        self.profile = Some(profile);
    }

    /// Returns `true` if cost attribution is on.
    pub fn is_profiling(&self) -> bool {
        self.profile.is_some()
    }

    /// Detaches the accumulated cost report, or `None` if profiling was
    /// never enabled. The thread keeps running unprofiled afterwards.
    pub fn take_profile(&mut self) -> Option<VmProfile> {
        self.profile.take().map(|p| p.snapshot())
    }

    /// Delivers the reply for the outcall this thread is suspended on.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not suspended.
    pub fn resume(&mut self, value: Value) {
        assert_eq!(
            self.status,
            ThreadStatus::Suspended,
            "resume on a thread that is not suspended"
        );
        self.pending_resume = Some(Ok(value));
        self.status = ThreadStatus::Runnable;
    }

    /// Delivers a failure for the outcall this thread is suspended on; the
    /// next run faults the thread with the error (after unwinding).
    ///
    /// # Panics
    ///
    /// Panics if the thread is not suspended.
    pub fn resume_err(&mut self, error: VmError) {
        assert_eq!(
            self.status,
            ThreadStatus::Suspended,
            "resume_err on a thread that is not suspended"
        );
        self.pending_resume = Some(Err(error));
        self.status = ThreadStatus::Runnable;
    }

    /// Aborts the thread, unwinding all frames (reporting exits to the
    /// resolver). Used when an owner forcibly removes a component with the
    /// time-out policy of §3.2.
    pub fn abort(&mut self, resolver: &mut dyn CallResolver, reason: &str) -> VmError {
        let err = VmError::Aborted(reason.to_owned());
        self.unwind(resolver);
        self.status = ThreadStatus::Done;
        err
    }

    fn unwind(&mut self, resolver: &mut dyn CallResolver) {
        while let Some(frame) = self.frames.pop() {
            resolver.exit(frame.function(), frame.component);
            if let Some(p) = self.profile.as_deref_mut() {
                p.exit();
            }
        }
    }

    /// Runs the thread until it completes, suspends, or faults, executing at
    /// most `fuel` instructions. `globals` is the owning object's persistent
    /// state, read and written by `GlobalGet`/`GlobalSet`.
    ///
    /// # Panics
    ///
    /// Panics if the thread is suspended (deliver the reply first) or done.
    pub fn run(
        &mut self,
        resolver: &mut dyn CallResolver,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
        fuel: u64,
    ) -> RunOutcome {
        assert_eq!(
            self.status,
            ThreadStatus::Runnable,
            "run on a thread that is not runnable"
        );
        if let Some(pending) = self.pending_resume.take() {
            match pending {
                Ok(value) => {
                    let frame = self.frames.last_mut().expect("suspended thread has frames");
                    frame.stack.push(value);
                }
                Err(err) => return self.fault(resolver, err),
            }
        }
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return self.fault(resolver, VmError::FuelExhausted);
            }
            remaining -= 1;
            match self.step(resolver, natives, globals) {
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Returned(value)) => {
                    self.status = ThreadStatus::Done;
                    return RunOutcome::Completed(value);
                }
                Ok(StepOutcome::Suspend(req)) => {
                    self.status = ThreadStatus::Suspended;
                    return RunOutcome::Suspended(req);
                }
                Err(err) => return self.fault(resolver, err),
            }
        }
    }

    fn fault(&mut self, resolver: &mut dyn CallResolver, err: VmError) -> RunOutcome {
        self.unwind(resolver);
        self.status = ThreadStatus::Done;
        RunOutcome::Faulted(err)
    }

    fn step(
        &mut self,
        resolver: &mut dyn CallResolver,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
    ) -> Result<StepOutcome, VmError> {
        // Implicit return of unit when execution falls off the end.
        let (code, pc, depth) = {
            let frame = self.frames.last_mut().expect("running thread has frames");
            if frame.pc >= frame.code.len() {
                return self.do_return(resolver, Value::Unit);
            }
            let pc = frame.pc;
            frame.pc += 1;
            (Arc::clone(&frame.code), pc, self.frames.len())
        };
        // Borrow the instruction from the (cheaply cloned) shared code block
        // rather than deep-cloning it every step.
        let instr = &code.instrs()[pc];
        if let Some(p) = self.profile.as_deref_mut() {
            let work = if let Instr::Work(nanos) = instr {
                *nanos
            } else {
                0
            };
            p.instruction(instr.opcode(), work);
        }
        let frame = self.frames.last_mut().expect("frame exists");
        match instr {
            Instr::Push(v) => frame.stack.push(v.clone()),
            Instr::Pop => {
                pop(frame)?;
            }
            Instr::Dup => {
                let v = frame.stack.last().ok_or(VmError::StackUnderflow)?.clone();
                frame.stack.push(v);
            }
            Instr::Swap => {
                let b = pop(frame)?;
                let a = pop(frame)?;
                frame.stack.push(b);
                frame.stack.push(a);
            }
            Instr::LoadArg(n) => {
                let v = frame
                    .args
                    .get(*n as usize)
                    .ok_or(VmError::StackUnderflow)?
                    .clone();
                frame.stack.push(v);
            }
            Instr::LoadLocal(n) => {
                let v = frame
                    .locals
                    .get(*n as usize)
                    .ok_or(VmError::StackUnderflow)?
                    .clone();
                frame.stack.push(v);
            }
            Instr::StoreLocal(n) => {
                let v = pop(frame)?;
                let slot = frame
                    .locals
                    .get_mut(*n as usize)
                    .ok_or(VmError::StackUnderflow)?;
                *slot = v;
            }
            Instr::Add => int_binop(frame, |a, b| Ok(a.wrapping_add(b)))?,
            Instr::Sub => int_binop(frame, |a, b| Ok(a.wrapping_sub(b)))?,
            Instr::Mul => int_binop(frame, |a, b| Ok(a.wrapping_mul(b)))?,
            Instr::Div => int_binop(frame, |a, b| {
                if b == 0 {
                    Err(VmError::DivideByZero)
                } else {
                    Ok(a.wrapping_div(b))
                }
            })?,
            Instr::Rem => int_binop(frame, |a, b| {
                if b == 0 {
                    Err(VmError::DivideByZero)
                } else {
                    Ok(a.wrapping_rem(b))
                }
            })?,
            Instr::Neg => {
                let a = pop_int(frame)?;
                frame.stack.push(Value::Int(a.wrapping_neg()));
            }
            Instr::Not => {
                let a = pop_bool(frame)?;
                frame.stack.push(Value::Bool(!a));
            }
            Instr::And => {
                let b = pop_bool(frame)?;
                let a = pop_bool(frame)?;
                frame.stack.push(Value::Bool(a && b));
            }
            Instr::Or => {
                let b = pop_bool(frame)?;
                let a = pop_bool(frame)?;
                frame.stack.push(Value::Bool(a || b));
            }
            Instr::Eq => {
                let b = pop(frame)?;
                let a = pop(frame)?;
                frame.stack.push(Value::Bool(a == b));
            }
            Instr::Ne => {
                let b = pop(frame)?;
                let a = pop(frame)?;
                frame.stack.push(Value::Bool(a != b));
            }
            Instr::Lt => int_cmp(frame, |a, b| a < b)?,
            Instr::Le => int_cmp(frame, |a, b| a <= b)?,
            Instr::Gt => int_cmp(frame, |a, b| a > b)?,
            Instr::Ge => int_cmp(frame, |a, b| a >= b)?,
            Instr::Jump(t) => frame.pc = *t as usize,
            Instr::JumpIfFalse(t) => {
                if !pop_bool(frame)? {
                    frame.pc = *t as usize;
                }
            }
            Instr::JumpIfTrue(t) => {
                if pop_bool(frame)? {
                    frame.pc = *t as usize;
                }
            }
            Instr::CallDyn { function, argc } => {
                if depth >= MAX_CALL_DEPTH {
                    return Err(VmError::CallDepthExceeded(MAX_CALL_DEPTH));
                }
                let args = pop_n(frame, *argc as usize)?;
                // Inline cache: redeem the token this call site cached, if
                // the resolver's configuration generation still matches.
                let site = function.identity_key();
                let resolved = match self
                    .call_cache
                    .get(&site)
                    .and_then(|token| resolver.resolve_token(*token))
                {
                    Some(resolved) => resolved,
                    None => {
                        let (resolved, token) =
                            resolve_with_token_checked(resolver, function, CallOrigin::Internal)?;
                        match token {
                            Some(token) => {
                                self.call_cache.insert(site, token);
                            }
                            None => {
                                self.call_cache.remove(&site);
                            }
                        }
                        resolved
                    }
                };
                check_args(&resolved, function, &args)?;
                self.consumed_nanos += resolver.dispatch_cost_nanos();
                resolver.enter(function, resolved.component);
                if let Some(p) = self.profile.as_deref_mut() {
                    p.enter(function);
                }
                self.frames.push(Frame::new(resolved, args));
            }
            Instr::CallNative { function, argc } => {
                let args = pop_n(frame, *argc as usize)?;
                let result = natives.call(function, &args)?;
                frame.stack.push(result);
            }
            Instr::CallRemote { function, argc } => {
                let args = pop_n(frame, *argc as usize)?;
                let target = pop(frame)?;
                let Some(target) = target.as_obj_ref() else {
                    return Err(VmError::TypeMismatch {
                        expected: TypeTag::ObjRef,
                        found: target.type_tag(),
                    });
                };
                return Ok(StepOutcome::Suspend(OutcallRequest {
                    target,
                    function: function.clone(),
                    args,
                }));
            }
            Instr::Ret => {
                let value = frame.stack.pop().unwrap_or(Value::Unit);
                return self.do_return(resolver, value);
            }
            Instr::MakeList(n) => {
                let items = pop_n(frame, *n as usize)?;
                frame.stack.push(Value::List(items));
            }
            Instr::ListGet => {
                let index = pop_int(frame)?;
                let list = pop_list(frame)?;
                let item = usize::try_from(index)
                    .ok()
                    .and_then(|i| list.get(i).cloned())
                    .ok_or(VmError::IndexOutOfRange {
                        index,
                        len: list.len(),
                    })?;
                frame.stack.push(item);
            }
            Instr::ListSet => {
                let value = pop(frame)?;
                let index = pop_int(frame)?;
                let mut list = pop_list(frame)?;
                let len = list.len();
                let slot = usize::try_from(index)
                    .ok()
                    .and_then(|i| list.get_mut(i))
                    .ok_or(VmError::IndexOutOfRange { index, len })?;
                *slot = value;
                frame.stack.push(Value::List(list));
            }
            Instr::ListLen => {
                let list = pop_list(frame)?;
                frame.stack.push(Value::Int(list.len() as i64));
            }
            Instr::ListPush => {
                let value = pop(frame)?;
                let mut list = pop_list(frame)?;
                list.push(value);
                frame.stack.push(Value::List(list));
            }
            Instr::StrConcat => {
                let b = pop_str(frame)?;
                let a = pop_str(frame)?;
                frame.stack.push(Value::str(format!("{a}{b}")));
            }
            Instr::StrLen => {
                let s = pop_str(frame)?;
                frame.stack.push(Value::Int(s.len() as i64));
            }
            Instr::Work(nanos) => {
                self.consumed_nanos += *nanos;
            }
            Instr::GlobalGet(key) => {
                frame.stack.push(globals.get(key.as_str()));
            }
            Instr::GlobalSet(key) => {
                let v = pop(frame)?;
                globals.set(key.as_str().to_owned(), v);
            }
        }
        Ok(StepOutcome::Continue)
    }

    fn do_return(
        &mut self,
        resolver: &mut dyn CallResolver,
        value: Value,
    ) -> Result<StepOutcome, VmError> {
        let frame = self.frames.pop().expect("returning thread has a frame");
        resolver.exit(frame.function(), frame.component);
        if let Some(p) = self.profile.as_deref_mut() {
            p.exit();
        }
        let expected = frame.code.signature().ret();
        if !expected.accepts(value.type_tag()) {
            return Err(VmError::ReturnType {
                function: frame.function().clone(),
                expected,
                found: value.type_tag(),
            });
        }
        match self.frames.last_mut() {
            Some(caller) => {
                caller.stack.push(value);
                Ok(StepOutcome::Continue)
            }
            None => Ok(StepOutcome::Returned(value)),
        }
    }
}

impl fmt::Debug for VmThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmThread")
            .field("status", &self.status)
            .field("depth", &self.frames.len())
            .field(
                "stack",
                &self
                    .frames
                    .iter()
                    .map(|fr| fr.function().as_str().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

enum StepOutcome {
    Continue,
    Returned(Value),
    Suspend(OutcallRequest),
}

fn resolve_error_to_vm(e: ResolveError, function: &FunctionName) -> VmError {
    match e {
        ResolveError::Missing => VmError::MissingFunction(function.clone()),
        ResolveError::Disabled => VmError::FunctionDisabled(function.clone()),
        ResolveError::NotExported => VmError::NotExported(function.clone()),
    }
}

fn resolve_checked(
    resolver: &mut dyn CallResolver,
    function: &FunctionName,
    origin: CallOrigin,
) -> Result<ResolvedCall, VmError> {
    resolver
        .resolve(function, origin)
        .map_err(|e| resolve_error_to_vm(e, function))
}

fn resolve_with_token_checked(
    resolver: &mut dyn CallResolver,
    function: &FunctionName,
    origin: CallOrigin,
) -> Result<(ResolvedCall, Option<CallToken>), VmError> {
    resolver
        .resolve_with_token(function, origin)
        .map_err(|e| resolve_error_to_vm(e, function))
}

fn check_args(
    resolved: &ResolvedCall,
    function: &FunctionName,
    args: &[Value],
) -> Result<(), VmError> {
    let params = resolved.code.signature().params();
    if params.len() != args.len() {
        return Err(VmError::ArityMismatch {
            function: function.clone(),
            expected: params.len(),
            found: args.len(),
        });
    }
    for (position, (param, arg)) in params.iter().zip(args).enumerate() {
        if !param.accepts(arg.type_tag()) {
            return Err(VmError::ArgumentType {
                function: function.clone(),
                position,
                expected: *param,
                found: arg.type_tag(),
            });
        }
    }
    Ok(())
}

fn pop(frame: &mut Frame) -> Result<Value, VmError> {
    frame.stack.pop().ok_or(VmError::StackUnderflow)
}

fn pop_n(frame: &mut Frame, n: usize) -> Result<Vec<Value>, VmError> {
    if frame.stack.len() < n {
        return Err(VmError::StackUnderflow);
    }
    Ok(frame.stack.split_off(frame.stack.len() - n))
}

fn pop_int(frame: &mut Frame) -> Result<i64, VmError> {
    let v = pop(frame)?;
    v.as_int().ok_or(VmError::TypeMismatch {
        expected: TypeTag::Int,
        found: v.type_tag(),
    })
}

fn pop_bool(frame: &mut Frame) -> Result<bool, VmError> {
    let v = pop(frame)?;
    v.as_bool().ok_or(VmError::TypeMismatch {
        expected: TypeTag::Bool,
        found: v.type_tag(),
    })
}

fn pop_str(frame: &mut Frame) -> Result<std::sync::Arc<str>, VmError> {
    let v = pop(frame)?;
    match v {
        Value::Str(s) => Ok(s),
        other => Err(VmError::TypeMismatch {
            expected: TypeTag::Str,
            found: other.type_tag(),
        }),
    }
}

fn pop_list(frame: &mut Frame) -> Result<Vec<Value>, VmError> {
    let v = pop(frame)?;
    match v {
        Value::List(l) => Ok(l),
        other => Err(VmError::TypeMismatch {
            expected: TypeTag::List,
            found: other.type_tag(),
        }),
    }
}

fn int_binop(
    frame: &mut Frame,
    f: impl Fn(i64, i64) -> Result<i64, VmError>,
) -> Result<(), VmError> {
    let b = pop_int(frame)?;
    let a = pop_int(frame)?;
    frame.stack.push(Value::Int(f(a, b)?));
    Ok(())
}

fn int_cmp(frame: &mut Frame, f: impl Fn(i64, i64) -> bool) -> Result<(), VmError> {
    let b = pop_int(frame)?;
    let a = pop_int(frame)?;
    frame.stack.push(Value::Bool(f(a, b)));
    Ok(())
}

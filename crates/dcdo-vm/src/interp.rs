//! The resumable interpreter.
//!
//! A [`VmThread`] models one Legion thread executing inside an object. It
//! runs bytecode until it completes, faults, or *suspends* at a remote
//! outcall ([`Instr::CallRemote`](crate::Instr::CallRemote)); a suspended
//! thread's entire state — call frames, operand stacks, locals — is parked
//! inside the `VmThread` and resumes when the owner delivers the reply. This
//! is exactly the "thread blocked on an outcall" state in which the paper's
//! disappearing function and disappearing component problems arise (§3.1):
//! configuration operations execute between suspension and resumption, and
//! when the thread wakes it may find the function or component it needs gone.
//!
//! All intra-object calls resolve through the owner's [`CallResolver`] at
//! call time, and entry/exit of every frame is reported to the resolver so a
//! DFM can maintain the per-function active-thread counters used for thread
//! activity monitoring (§3.2).
//!
//! # Dispatch
//!
//! Execution runs over the resolver's pre-decoded
//! [`DecodedCode`](crate::DecodedCode) stream: a direct-threaded loop whose
//! inner hot path holds the current frame's fields and the fuel in locals,
//! never touches the code `Arc`'s refcount per activation, and dispatches
//! merged opcodes — including the superinstructions the decode-time peephole
//! selector fused. Fuel and profiling are charged **per original opcode, in
//! original program order**, inside every superinstruction, so the
//! profiler's accounting and all fault ordering are bit-identical to unfused
//! execution.
//!
//! The original single-step interpreter is retained as the *legacy stepper*
//! ([`VmThread::set_legacy_stepper`]): it walks the undecoded instruction
//! stream one `step()` at a time and serves as the differential oracle for
//! the threaded path (and as the "before" build for benchmarks).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use dcdo_types::{ComponentId, FunctionName, ObjectId, TypeTag};

use crate::decoded::{self, ArithKind, DecodedCode, DecodedOp, Operand};
use crate::error::VmError;
use crate::instr::Instr;
use crate::native::NativeRegistry;
use crate::profile::{ThreadProfile, VmProfile};
use crate::resolver::{CallOrigin, CallResolver, CallToken, ResolveError, ResolvedCall};
use crate::store::ValueStore;
use crate::value::Value;

/// Maximum call-stack depth.
pub const MAX_CALL_DEPTH: usize = 128;

/// One call frame of a running thread.
#[derive(Debug, Clone)]
struct Frame {
    code: Arc<crate::decoded::DecodedCode>,
    component: ComponentId,
    pc: usize,
    args: Vec<Value>,
    locals: Vec<Value>,
    stack: Vec<Value>,
    /// Per-call-site inline-cache slots, indexed by the decoded `CallDyn`
    /// op's `site`: each slot holds the generation-stamped [`CallToken`]
    /// that exact site last redeemed (plus, for leaf-shaped callees, the
    /// pre-extracted leaf summary). Sized from the decode (empty for
    /// call-free code), so the threaded path never hashes to find its
    /// cache entry.
    sites: Box<[SiteState]>,
}

/// One call site's inline-cache state.
#[derive(Debug, Clone, Default)]
struct SiteState {
    /// The generation-stamped token this site last redeemed.
    token: Option<CallToken>,
    /// Pre-extracted summary of a leaf-shaped callee (whole body one fused
    /// arith-return, no locals), valid exactly as long as `leaf.token`'s
    /// generation still matches the resolver's.
    leaf: Option<LeafCall>,
}

/// Everything the inline leaf-call path needs, extracted once per
/// (site, configuration generation) so steady-state leaf calls skip the
/// slot-table fetch, the callee-shape inspection, and the full
/// argument-check walk.
#[derive(Debug, Clone)]
struct LeafCall {
    token: CallToken,
    a: Operand,
    b: Operand,
    op: ArithKind,
    component: ComponentId,
    param: TypeTag,
    ret: TypeTag,
}

impl Frame {
    fn new(resolved: ResolvedCall, args: Vec<Value>) -> Self {
        let locals = vec![Value::Unit; resolved.code.locals() as usize];
        let sites = vec![SiteState::default(); resolved.code.call_sites()].into_boxed_slice();
        Frame {
            code: resolved.code,
            component: resolved.component,
            pc: 0,
            args,
            locals,
            stack: Vec::new(),
            sites,
        }
    }

    fn function(&self) -> &FunctionName {
        self.code.signature().name()
    }
}

/// A pending remote invocation produced by a suspended thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcallRequest {
    /// The object to invoke.
    pub target: ObjectId,
    /// The exported function to invoke on the target.
    pub function: FunctionName,
    /// The arguments.
    pub args: Vec<Value>,
}

/// The observable status of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Ready to run (fresh or just resumed).
    Runnable,
    /// Parked at a remote outcall awaiting a reply.
    Suspended,
    /// Finished (completed or faulted); may not run again.
    Done,
}

/// The result of running a thread until it can run no further.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The root function returned this value.
    Completed(Value),
    /// The thread suspended at a remote outcall; deliver the reply with
    /// [`VmThread::resume`] (or abort with [`VmThread::resume_err`]) and run
    /// again.
    Suspended(OutcallRequest),
    /// The thread faulted; its frames have been unwound (the resolver saw
    /// matching exits for every enter).
    Faulted(VmError),
}

/// What the inner dispatch loop hands back to the frame-boundary handler.
enum FrameEvent {
    /// The current frame returned `value` (explicit `Ret` or fell off the
    /// end).
    Return(Value),
    /// A `CallDyn` resolved; push a frame for it.
    Call {
        resolved: ResolvedCall,
        args: Vec<Value>,
    },
    /// A `CallRemote` suspended the thread.
    Suspend(OutcallRequest),
    /// An instruction faulted.
    Fault(VmError),
}

/// A (possibly suspended) thread executing dynamic-function code.
pub struct VmThread {
    frames: Vec<Frame>,
    status: ThreadStatus,
    consumed_nanos: u64,
    pending_resume: Option<Result<Value, VmError>>,
    /// Legacy-stepper inline cache: the callee name's identity key maps to
    /// the generation-stamped [`CallToken`] the resolver issued last time
    /// that site resolved. The threaded path uses the per-frame `sites`
    /// table instead (indexed, no hashing).
    call_cache: HashMap<usize, CallToken>,
    /// Opt-in cost attribution; `None` (the default) costs one predicted
    /// branch per retired instruction.
    profile: Option<Box<ThreadProfile>>,
    /// Recycled argument buffers: each `CallDyn` drains its arguments into a
    /// pooled `Vec` and each return recycles the callee's, so steady-state
    /// call/return cycles allocate nothing.
    arg_pool: Vec<Vec<Value>>,
    /// When set, runs the original single-step interpreter over the
    /// undecoded instruction stream — the differential oracle.
    legacy: bool,
    /// Original opcodes retired by this thread's threaded runs.
    total_retired: u64,
    /// The subset retired inside superinstructions.
    fused_retired: u64,
}

impl VmThread {
    /// Starts a thread by resolving and calling `function` with `args`.
    ///
    /// `origin` selects the visibility rule: [`CallOrigin::External`] for
    /// invocations arriving from other objects (only exported functions),
    /// [`CallOrigin::Internal`] for locally initiated work.
    ///
    /// # Errors
    ///
    /// Fails fast — without creating a thread — if resolution, arity, or
    /// argument types fail. The resolver's `enter` is called on success.
    pub fn call<R: CallResolver + ?Sized>(
        resolver: &mut R,
        function: &FunctionName,
        args: Vec<Value>,
        origin: CallOrigin,
    ) -> Result<VmThread, VmError> {
        let resolved = resolve_checked(resolver, function, origin)?;
        check_args(&resolved.code, function, &args)?;
        let mut thread = VmThread {
            frames: Vec::new(),
            status: ThreadStatus::Runnable,
            consumed_nanos: resolver.dispatch_cost_nanos(),
            pending_resume: None,
            call_cache: HashMap::new(),
            profile: None,
            arg_pool: Vec::new(),
            legacy: false,
            total_retired: 0,
            fused_retired: 0,
        };
        resolver.enter(function, resolved.component);
        thread.frames.push(Frame::new(resolved, args));
        Ok(thread)
    }

    /// Returns the thread's status.
    pub fn status(&self) -> ThreadStatus {
        self.status
    }

    /// Returns the current call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Selects the legacy single-step interpreter (`true`) or the threaded
    /// dispatch loop (`false`, the default). The legacy stepper is kept as
    /// the differential-testing oracle and the benchmark "before" build.
    ///
    /// # Panics
    ///
    /// Panics if the thread has already started executing — the two modes
    /// interpret the saved program counter differently (original vs decoded
    /// indices), so the mode must be fixed before the first run.
    pub fn set_legacy_stepper(&mut self, legacy: bool) {
        assert!(
            self.frames.iter().all(|f| f.pc == 0 && f.stack.is_empty()),
            "stepper mode must be selected before the thread executes"
        );
        self.legacy = legacy;
    }

    /// `(total, fused)` original opcodes retired by this thread's threaded
    /// runs — the per-thread slice of
    /// [`fusion_stats`](crate::fusion_stats). The legacy stepper does not
    /// count (it retires nothing fused by definition).
    pub fn retired_counts(&self) -> (u64, u64) {
        (self.total_retired, self.fused_retired)
    }

    /// The components with at least one frame on this thread's stack.
    pub fn components_on_stack(&self) -> Vec<ComponentId> {
        let mut v: Vec<ComponentId> = self.frames.iter().map(|f| f.component).collect();
        v.sort();
        v.dedup();
        v
    }

    /// The functions with at least one frame on this thread's stack,
    /// innermost last.
    pub fn functions_on_stack(&self) -> Vec<FunctionName> {
        self.frames.iter().map(|f| f.function().clone()).collect()
    }

    /// Drains the simulated compute time accumulated since the last call
    /// (from `Work` instructions and dispatch costs).
    pub fn take_consumed_nanos(&mut self) -> u64 {
        std::mem::take(&mut self.consumed_nanos)
    }

    /// Turns on cost attribution for this thread: per-function call /
    /// instruction / `Work`-nanosecond counters plus a per-opcode aggregate.
    ///
    /// Frames already on the stack (typically just the root, when called
    /// right after [`VmThread::call`]) are counted as entered. Idempotent —
    /// enabling twice keeps the existing counters.
    pub fn enable_profiling(&mut self) {
        if self.profile.is_some() {
            return;
        }
        let mut profile = Box::<ThreadProfile>::default();
        for frame in &self.frames {
            profile.enter(frame.function());
        }
        self.profile = Some(profile);
    }

    /// Returns `true` if cost attribution is on.
    pub fn is_profiling(&self) -> bool {
        self.profile.is_some()
    }

    /// Detaches the accumulated cost report, or `None` if profiling was
    /// never enabled. The thread keeps running unprofiled afterwards.
    pub fn take_profile(&mut self) -> Option<VmProfile> {
        self.profile.take().map(|p| p.snapshot())
    }

    /// Delivers the reply for the outcall this thread is suspended on.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not suspended.
    pub fn resume(&mut self, value: Value) {
        assert_eq!(
            self.status,
            ThreadStatus::Suspended,
            "resume on a thread that is not suspended"
        );
        self.pending_resume = Some(Ok(value));
        self.status = ThreadStatus::Runnable;
    }

    /// Delivers a failure for the outcall this thread is suspended on; the
    /// next run faults the thread with the error (after unwinding).
    ///
    /// # Panics
    ///
    /// Panics if the thread is not suspended.
    pub fn resume_err(&mut self, error: VmError) {
        assert_eq!(
            self.status,
            ThreadStatus::Suspended,
            "resume_err on a thread that is not suspended"
        );
        self.pending_resume = Some(Err(error));
        self.status = ThreadStatus::Runnable;
    }

    /// Aborts the thread, unwinding all frames (reporting exits to the
    /// resolver). Used when an owner forcibly removes a component with the
    /// time-out policy of §3.2.
    pub fn abort<R: CallResolver + ?Sized>(&mut self, resolver: &mut R, reason: &str) -> VmError {
        let err = VmError::Aborted(reason.to_owned());
        self.unwind(resolver);
        self.status = ThreadStatus::Done;
        err
    }

    fn unwind<R: CallResolver + ?Sized>(&mut self, resolver: &mut R) {
        while let Some(frame) = self.frames.pop() {
            resolver.exit(frame.function(), frame.component);
            if let Some(p) = self.profile.as_deref_mut() {
                p.exit();
            }
        }
    }

    /// Runs the thread until it completes, suspends, or faults, executing at
    /// most `fuel` instructions. `globals` is the owning object's persistent
    /// state, read and written by `GlobalGet`/`GlobalSet`.
    ///
    /// # Panics
    ///
    /// Panics if the thread is suspended (deliver the reply first) or done.
    pub fn run<R: CallResolver + ?Sized>(
        &mut self,
        resolver: &mut R,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
        fuel: u64,
    ) -> RunOutcome {
        assert_eq!(
            self.status,
            ThreadStatus::Runnable,
            "run on a thread that is not runnable"
        );
        if let Some(pending) = self.pending_resume.take() {
            match pending {
                Ok(value) => {
                    let frame = self.frames.last_mut().expect("suspended thread has frames");
                    frame.stack.push(value);
                }
                Err(err) => return self.fault(resolver, err),
            }
        }
        if self.legacy {
            self.run_legacy(resolver, natives, globals, fuel)
        } else {
            self.run_threaded(resolver, natives, globals, fuel)
        }
    }

    /// The direct-threaded dispatch loop. The inner loop executes one frame
    /// with the frame's fields, fuel, and retirement counters held in
    /// locals; frame boundaries (call, return, suspend, fault) break out to
    /// the outer loop, which is the only place the frame stack changes.
    fn run_threaded<R: CallResolver + ?Sized>(
        &mut self,
        resolver: &mut R,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
        fuel: u64,
    ) -> RunOutcome {
        let mut remaining = fuel;
        let mut retired: u64 = 0;
        let mut fused: u64 = 0;
        let outcome = 'thread: loop {
            // Disjoint field borrows: the current frame's fields (split so
            // the ops slice can be borrowed while the stack and locals are
            // mutated — no `Arc` refcount traffic per activation), the
            // profile, and the consumed-nanos accumulator are all live
            // across the inner loop.
            let depth = self.frames.len();
            let profile = &mut self.profile;
            let consumed_nanos = &mut self.consumed_nanos;
            let arg_pool = &mut self.arg_pool;
            let Frame {
                code,
                component: _,
                pc,
                args: frame_args,
                locals,
                stack,
                sites,
            } = self.frames.last_mut().expect("running thread has frames");
            let ops = code.ops();

            let event = 'ops: loop {
                /// Breaks the dispatch loop with a fault.
                macro_rules! fault {
                    ($e:expr) => {
                        break 'ops FrameEvent::Fault($e)
                    };
                }
                /// Unwraps a `Result` or faults.
                macro_rules! tr {
                    ($e:expr) => {
                        match $e {
                            Ok(v) => v,
                            Err(e) => fault!(e),
                        }
                    };
                }
                /// Charges fuel and profiling for one original opcode —
                /// exactly the legacy order: fuel check, decrement, then
                /// the profiling hook, then execution. Superinstructions
                /// invoke this once per constituent.
                macro_rules! charge {
                    ($opc:expr, $work:expr, $in_fused:expr) => {{
                        if remaining == 0 {
                            fault!(VmError::FuelExhausted);
                        }
                        remaining -= 1;
                        retired += 1;
                        if $in_fused {
                            fused += 1;
                        }
                        if let Some(p) = profile.as_deref_mut() {
                            p.instruction($opc, $work);
                        }
                    }};
                }
                /// `tr!` for a superinstruction's bulk-charged fast path:
                /// on a fault, refunds the constituents the legacy order
                /// would not yet have charged, so retirement counts match
                /// per-constituent execution exactly even on faulting
                /// programs.
                macro_rules! trf {
                    ($e:expr, $undo:expr) => {
                        match $e {
                            Ok(v) => v,
                            Err(e) => {
                                retired -= $undo;
                                fused -= $undo;
                                fault!(e)
                            }
                        }
                    };
                }

                let cur = *pc;
                let Some(op) = ops.get(cur) else {
                    // Implicit unit return when execution falls off the
                    // end: consumes one fuel unit (the legacy run loop
                    // charges before stepping) but retires no instruction.
                    if remaining == 0 {
                        fault!(VmError::FuelExhausted);
                    }
                    remaining -= 1;
                    break 'ops FrameEvent::Return(Value::Unit);
                };
                *pc = cur + 1;
                match op {
                    DecodedOp::Push(v) => {
                        charge!(0, 0, false);
                        stack.push(v.clone());
                    }
                    DecodedOp::Pop => {
                        charge!(1, 0, false);
                        tr!(pop(stack));
                    }
                    DecodedOp::Dup => {
                        charge!(2, 0, false);
                        let v = tr!(stack.last().cloned().ok_or(VmError::StackUnderflow));
                        stack.push(v);
                    }
                    DecodedOp::Swap => {
                        charge!(3, 0, false);
                        let b = tr!(pop(stack));
                        let a = tr!(pop(stack));
                        stack.push(b);
                        stack.push(a);
                    }
                    DecodedOp::LoadArg(n) => {
                        charge!(4, 0, false);
                        let v = tr!(frame_args
                            .get(*n as usize)
                            .cloned()
                            .ok_or(VmError::StackUnderflow));
                        stack.push(v);
                    }
                    DecodedOp::LoadLocal(n) => {
                        charge!(5, 0, false);
                        let v = tr!(locals
                            .get(*n as usize)
                            .cloned()
                            .ok_or(VmError::StackUnderflow));
                        stack.push(v);
                    }
                    DecodedOp::StoreLocal(n) => {
                        charge!(6, 0, false);
                        let v = tr!(pop(stack));
                        let slot = tr!(locals.get_mut(*n as usize).ok_or(VmError::StackUnderflow));
                        *slot = v;
                    }
                    DecodedOp::Add => {
                        charge!(7, 0, false);
                        tr!(int_binop(stack, |a, b| Ok(a.wrapping_add(b))));
                    }
                    DecodedOp::Sub => {
                        charge!(8, 0, false);
                        tr!(int_binop(stack, |a, b| Ok(a.wrapping_sub(b))));
                    }
                    DecodedOp::Mul => {
                        charge!(9, 0, false);
                        tr!(int_binop(stack, |a, b| Ok(a.wrapping_mul(b))));
                    }
                    DecodedOp::Div => {
                        charge!(10, 0, false);
                        tr!(int_binop(stack, |a, b| {
                            if b == 0 {
                                Err(VmError::DivideByZero)
                            } else {
                                Ok(a.wrapping_div(b))
                            }
                        }));
                    }
                    DecodedOp::Rem => {
                        charge!(11, 0, false);
                        tr!(int_binop(stack, |a, b| {
                            if b == 0 {
                                Err(VmError::DivideByZero)
                            } else {
                                Ok(a.wrapping_rem(b))
                            }
                        }));
                    }
                    DecodedOp::Neg => {
                        charge!(12, 0, false);
                        let a = tr!(pop_int(stack));
                        stack.push(Value::Int(a.wrapping_neg()));
                    }
                    DecodedOp::Not => {
                        charge!(13, 0, false);
                        let a = tr!(pop_bool(stack));
                        stack.push(Value::Bool(!a));
                    }
                    DecodedOp::And => {
                        charge!(14, 0, false);
                        let b = tr!(pop_bool(stack));
                        let a = tr!(pop_bool(stack));
                        stack.push(Value::Bool(a && b));
                    }
                    DecodedOp::Or => {
                        charge!(15, 0, false);
                        let b = tr!(pop_bool(stack));
                        let a = tr!(pop_bool(stack));
                        stack.push(Value::Bool(a || b));
                    }
                    DecodedOp::Eq => {
                        charge!(16, 0, false);
                        let b = tr!(pop(stack));
                        let a = tr!(pop(stack));
                        stack.push(Value::Bool(a == b));
                    }
                    DecodedOp::Ne => {
                        charge!(17, 0, false);
                        let b = tr!(pop(stack));
                        let a = tr!(pop(stack));
                        stack.push(Value::Bool(a != b));
                    }
                    DecodedOp::Lt => {
                        charge!(18, 0, false);
                        tr!(int_cmp(stack, |a, b| a < b));
                    }
                    DecodedOp::Le => {
                        charge!(19, 0, false);
                        tr!(int_cmp(stack, |a, b| a <= b));
                    }
                    DecodedOp::Gt => {
                        charge!(20, 0, false);
                        tr!(int_cmp(stack, |a, b| a > b));
                    }
                    DecodedOp::Ge => {
                        charge!(21, 0, false);
                        tr!(int_cmp(stack, |a, b| a >= b));
                    }
                    DecodedOp::Jump(t) => {
                        charge!(22, 0, false);
                        *pc = *t as usize;
                    }
                    DecodedOp::JumpIfFalse(t) => {
                        charge!(23, 0, false);
                        if !tr!(pop_bool(stack)) {
                            *pc = *t as usize;
                        }
                    }
                    DecodedOp::JumpIfTrue(t) => {
                        charge!(24, 0, false);
                        if tr!(pop_bool(stack)) {
                            *pc = *t as usize;
                        }
                    }
                    DecodedOp::CallDyn {
                        function,
                        argc,
                        site,
                    } => {
                        charge!(25, 0, false);
                        if depth >= MAX_CALL_DEPTH {
                            fault!(VmError::CallDepthExceeded(MAX_CALL_DEPTH));
                        }
                        let n = *argc as usize;
                        if stack.len() < n {
                            fault!(VmError::StackUnderflow);
                        }
                        let mut args = arg_pool.pop().unwrap_or_default();
                        let at = stack.len() - n;
                        args.extend(stack.drain(at..));
                        // Inline cache: redeem the token this exact call
                        // site cached, if the resolver's configuration
                        // generation still matches.
                        let cached = sites[*site as usize].token;
                        let resolved = match cached.and_then(|token| resolver.resolve_token(token))
                        {
                            Some(resolved) => resolved,
                            None => {
                                let (resolved, token) = tr!(resolve_with_token_checked(
                                    resolver,
                                    function,
                                    CallOrigin::Internal
                                ));
                                sites[*site as usize].token = token;
                                resolved
                            }
                        };
                        tr!(check_args(&resolved.code, function, &args));
                        *consumed_nanos += resolver.dispatch_cost_nanos();
                        resolver.enter(function, resolved.component);
                        if let Some(p) = profile.as_deref_mut() {
                            p.enter(function);
                        }
                        break 'ops FrameEvent::Call { resolved, args };
                    }
                    DecodedOp::CallNative { function, argc } => {
                        charge!(26, 0, false);
                        let args = tr!(pop_n(stack, *argc as usize));
                        let result = tr!(natives.call(function, &args));
                        stack.push(result);
                    }
                    DecodedOp::CallRemote { function, argc } => {
                        charge!(27, 0, false);
                        let args = tr!(pop_n(stack, *argc as usize));
                        let target = tr!(pop(stack));
                        let Some(target) = target.as_obj_ref() else {
                            fault!(VmError::TypeMismatch {
                                expected: TypeTag::ObjRef,
                                found: target.type_tag(),
                            });
                        };
                        break 'ops FrameEvent::Suspend(OutcallRequest {
                            target,
                            function: function.clone(),
                            args,
                        });
                    }
                    DecodedOp::Ret => {
                        charge!(28, 0, false);
                        let value = stack.pop().unwrap_or(Value::Unit);
                        break 'ops FrameEvent::Return(value);
                    }
                    DecodedOp::MakeList(n) => {
                        charge!(29, 0, false);
                        let items = tr!(pop_n(stack, *n as usize));
                        stack.push(Value::List(items));
                    }
                    DecodedOp::ListGet => {
                        charge!(30, 0, false);
                        let index = tr!(pop_int(stack));
                        let list = tr!(pop_list(stack));
                        let item = tr!(usize::try_from(index)
                            .ok()
                            .and_then(|i| list.get(i).cloned())
                            .ok_or(VmError::IndexOutOfRange {
                                index,
                                len: list.len(),
                            }));
                        stack.push(item);
                    }
                    DecodedOp::ListSet => {
                        charge!(31, 0, false);
                        let value = tr!(pop(stack));
                        let index = tr!(pop_int(stack));
                        let mut list = tr!(pop_list(stack));
                        let len = list.len();
                        let slot = tr!(usize::try_from(index)
                            .ok()
                            .and_then(|i| list.get_mut(i))
                            .ok_or(VmError::IndexOutOfRange { index, len }));
                        *slot = value;
                        stack.push(Value::List(list));
                    }
                    DecodedOp::ListLen => {
                        charge!(32, 0, false);
                        let list = tr!(pop_list(stack));
                        stack.push(Value::Int(list.len() as i64));
                    }
                    DecodedOp::ListPush => {
                        charge!(33, 0, false);
                        let value = tr!(pop(stack));
                        let mut list = tr!(pop_list(stack));
                        list.push(value);
                        stack.push(Value::List(list));
                    }
                    DecodedOp::StrConcat => {
                        charge!(34, 0, false);
                        let b = tr!(pop_str(stack));
                        let a = tr!(pop_str(stack));
                        stack.push(Value::str(format!("{a}{b}")));
                    }
                    DecodedOp::StrLen => {
                        charge!(35, 0, false);
                        let s = tr!(pop_str(stack));
                        stack.push(Value::Int(s.len() as i64));
                    }
                    DecodedOp::Work(nanos) => {
                        // Folded into the dispatch table: the work amount
                        // reaches the profiler through the hook argument,
                        // with no pre-dispatch branch on the hot path.
                        charge!(36, *nanos, false);
                        *consumed_nanos += *nanos;
                    }
                    DecodedOp::GlobalGet(key) => {
                        charge!(37, 0, false);
                        stack.push(globals.get(key.as_str()));
                    }
                    DecodedOp::GlobalSet(key) => {
                        charge!(38, 0, false);
                        let v = tr!(pop(stack));
                        globals.set(key.as_str().to_owned(), v);
                    }
                    // ---- superinstructions. With profiling off and ample
                    // fuel, the whole fused op charges in one bulk update
                    // (fault paths refund via `trf!` so retirement stays
                    // exact). Near the fuel boundary or with profiling on,
                    // the per-constituent path charges fuel and fires the
                    // profiling hook for each original opcode in program
                    // order, so fuel exhaustion and per-opcode accounting
                    // land on exactly the constituent the unfused program
                    // would have reached.
                    DecodedOp::BinBr {
                        a,
                        b,
                        cmp,
                        when,
                        target,
                    } => {
                        if profile.is_none() && remaining >= 4 {
                            remaining -= 4;
                            retired += 4;
                            fused += 4;
                            let va = trf!(fetch(locals, frame_args, a), 3);
                            let vb = trf!(fetch(locals, frame_args, b), 2);
                            let flag = trf!(cmp.eval(&va, &vb), 1);
                            if flag == *when {
                                *pc = *target as usize;
                            }
                        } else {
                            charge!(a.opcode(), 0, true);
                            let va = tr!(fetch(locals, frame_args, a));
                            charge!(b.opcode(), 0, true);
                            let vb = tr!(fetch(locals, frame_args, b));
                            charge!(cmp.opcode(), 0, true);
                            let flag = tr!(cmp.eval(&va, &vb));
                            charge!(if *when { 24 } else { 23 }, 0, true);
                            if flag == *when {
                                *pc = *target as usize;
                            }
                        }
                    }
                    DecodedOp::BinStore { a, b, op, dst } => {
                        if profile.is_none() && remaining >= 4 {
                            remaining -= 4;
                            retired += 4;
                            fused += 4;
                            let va = trf!(fetch(locals, frame_args, a), 3);
                            let vb = trf!(fetch(locals, frame_args, b), 2);
                            let r = trf!(op.eval(&va, &vb), 1);
                            let slot = trf!(
                                locals.get_mut(*dst as usize).ok_or(VmError::StackUnderflow),
                                0
                            );
                            *slot = Value::Int(r);
                        } else {
                            charge!(a.opcode(), 0, true);
                            let va = tr!(fetch(locals, frame_args, a));
                            charge!(b.opcode(), 0, true);
                            let vb = tr!(fetch(locals, frame_args, b));
                            charge!(op.opcode(), 0, true);
                            let r = tr!(op.eval(&va, &vb));
                            charge!(6, 0, true);
                            let slot =
                                tr!(locals.get_mut(*dst as usize).ok_or(VmError::StackUnderflow));
                            *slot = Value::Int(r);
                        }
                    }
                    DecodedOp::BinStoreJmp {
                        a,
                        b,
                        op,
                        dst,
                        target,
                    } => {
                        if profile.is_none() && remaining >= 5 {
                            remaining -= 5;
                            retired += 5;
                            fused += 5;
                            let va = trf!(fetch(locals, frame_args, a), 4);
                            let vb = trf!(fetch(locals, frame_args, b), 3);
                            let r = trf!(op.eval(&va, &vb), 2);
                            let slot = trf!(
                                locals.get_mut(*dst as usize).ok_or(VmError::StackUnderflow),
                                1
                            );
                            *slot = Value::Int(r);
                            *pc = *target as usize;
                        } else {
                            charge!(a.opcode(), 0, true);
                            let va = tr!(fetch(locals, frame_args, a));
                            charge!(b.opcode(), 0, true);
                            let vb = tr!(fetch(locals, frame_args, b));
                            charge!(op.opcode(), 0, true);
                            let r = tr!(op.eval(&va, &vb));
                            charge!(6, 0, true);
                            let slot =
                                tr!(locals.get_mut(*dst as usize).ok_or(VmError::StackUnderflow));
                            *slot = Value::Int(r);
                            charge!(22, 0, true);
                            *pc = *target as usize;
                        }
                    }
                    DecodedOp::BinRet { a, b, op } => {
                        if profile.is_none() && remaining >= 4 {
                            remaining -= 4;
                            retired += 4;
                            fused += 4;
                            let va = trf!(fetch(locals, frame_args, a), 3);
                            let vb = trf!(fetch(locals, frame_args, b), 2);
                            let r = trf!(op.eval(&va, &vb), 1);
                            break 'ops FrameEvent::Return(Value::Int(r));
                        } else {
                            charge!(a.opcode(), 0, true);
                            let va = tr!(fetch(locals, frame_args, a));
                            charge!(b.opcode(), 0, true);
                            let vb = tr!(fetch(locals, frame_args, b));
                            charge!(op.opcode(), 0, true);
                            let r = tr!(op.eval(&va, &vb));
                            charge!(28, 0, true);
                            break 'ops FrameEvent::Return(Value::Int(r));
                        }
                    }
                    DecodedOp::BinPush { a, b, op } => {
                        if profile.is_none() && remaining >= 3 {
                            remaining -= 3;
                            retired += 3;
                            fused += 3;
                            let va = trf!(fetch(locals, frame_args, a), 2);
                            let vb = trf!(fetch(locals, frame_args, b), 1);
                            let r = trf!(op.eval(&va, &vb), 0);
                            stack.push(Value::Int(r));
                        } else {
                            charge!(a.opcode(), 0, true);
                            let va = tr!(fetch(locals, frame_args, a));
                            charge!(b.opcode(), 0, true);
                            let vb = tr!(fetch(locals, frame_args, b));
                            charge!(op.opcode(), 0, true);
                            let r = tr!(op.eval(&va, &vb));
                            stack.push(Value::Int(r));
                        }
                    }
                    DecodedOp::OpStore { src, dst } => {
                        if profile.is_none() && remaining >= 2 {
                            remaining -= 2;
                            retired += 2;
                            fused += 2;
                            let v = trf!(fetch(locals, frame_args, src), 1);
                            let slot = trf!(
                                locals.get_mut(*dst as usize).ok_or(VmError::StackUnderflow),
                                0
                            );
                            *slot = v;
                        } else {
                            charge!(src.opcode(), 0, true);
                            let v = tr!(fetch(locals, frame_args, src));
                            charge!(6, 0, true);
                            let slot =
                                tr!(locals.get_mut(*dst as usize).ok_or(VmError::StackUnderflow));
                            *slot = v;
                        }
                    }
                    DecodedOp::OpRet { src } => {
                        if profile.is_none() && remaining >= 2 {
                            remaining -= 2;
                            retired += 2;
                            fused += 2;
                            let v = trf!(fetch(locals, frame_args, src), 1);
                            break 'ops FrameEvent::Return(v);
                        } else {
                            charge!(src.opcode(), 0, true);
                            let v = tr!(fetch(locals, frame_args, src));
                            charge!(28, 0, true);
                            break 'ops FrameEvent::Return(v);
                        }
                    }
                    DecodedOp::CallDyn1 {
                        arg,
                        function,
                        site,
                    } => {
                        // [operand, call_dyn f/1]: the argument reads
                        // straight from a local/arg/constant, skipping the
                        // operand-stack round trip of the unfused pair.
                        let v;
                        if profile.is_none() && remaining >= 2 {
                            remaining -= 2;
                            retired += 2;
                            fused += 2;
                            v = trf!(fetch(locals, frame_args, arg), 1);
                        } else {
                            charge!(arg.opcode(), 0, true);
                            v = tr!(fetch(locals, frame_args, arg));
                            charge!(25, 0, true);
                        }
                        if depth >= MAX_CALL_DEPTH {
                            fault!(VmError::CallDepthExceeded(MAX_CALL_DEPTH));
                        }
                        let slot = &mut sites[*site as usize];
                        // Steady-state leaf fast path: this exact site
                        // already proved (at the current configuration
                        // generation) that its callee is one fused
                        // arith-return with no locals. A cheap generation
                        // revalidation — counted by the resolver exactly
                        // like a full redemption — then licenses executing
                        // the callee inline: no slot-table fetch, no frame
                        // push/pop. Fuel, retirement, the enter/exit pair,
                        // and every fault match the framed execution
                        // bit-for-bit.
                        if profile.is_none() && remaining >= 4 {
                            let mut stale = false;
                            if let Some(leaf) = &slot.leaf {
                                if resolver.revalidate_token(leaf.token) {
                                    if !leaf.param.accepts(v.type_tag()) {
                                        fault!(VmError::ArgumentType {
                                            function: function.clone(),
                                            position: 0,
                                            expected: leaf.param,
                                            found: v.type_tag(),
                                        });
                                    }
                                    *consumed_nanos += resolver.dispatch_cost_nanos();
                                    resolver.enter(function, leaf.component);
                                    remaining -= 4;
                                    retired += 4;
                                    fused += 4;
                                    let largs = std::slice::from_ref(&v);
                                    let va = match fetch(&[], largs, &leaf.a) {
                                        Ok(x) => x,
                                        Err(e) => {
                                            retired -= 3;
                                            fused -= 3;
                                            resolver.exit(function, leaf.component);
                                            fault!(e);
                                        }
                                    };
                                    let vb = match fetch(&[], largs, &leaf.b) {
                                        Ok(x) => x,
                                        Err(e) => {
                                            retired -= 2;
                                            fused -= 2;
                                            resolver.exit(function, leaf.component);
                                            fault!(e);
                                        }
                                    };
                                    let r = match leaf.op.eval(&va, &vb) {
                                        Ok(x) => x,
                                        Err(e) => {
                                            retired -= 1;
                                            fused -= 1;
                                            resolver.exit(function, leaf.component);
                                            fault!(e);
                                        }
                                    };
                                    resolver.exit(function, leaf.component);
                                    if !leaf.ret.accepts(TypeTag::Int) {
                                        fault!(VmError::ReturnType {
                                            function: function.clone(),
                                            expected: leaf.ret,
                                            found: TypeTag::Int,
                                        });
                                    }
                                    stack.push(Value::Int(r));
                                    continue 'ops;
                                }
                                stale = true;
                            }
                            if stale {
                                slot.leaf = None;
                            }
                        }
                        let resolved =
                            match slot.token.and_then(|token| resolver.resolve_token(token)) {
                                Some(resolved) => resolved,
                                None => {
                                    let (resolved, token) = tr!(resolve_with_token_checked(
                                        resolver,
                                        function,
                                        CallOrigin::Internal
                                    ));
                                    slot.token = token;
                                    resolved
                                }
                            };
                        tr!(check_args(
                            &resolved.code,
                            function,
                            std::slice::from_ref(&v)
                        ));
                        // First framed pass through a leaf-shaped callee
                        // records the leaf summary; later calls at this site
                        // take the inline path above until a configuration
                        // change invalidates the token.
                        if let Some(token) = slot.token {
                            if resolved.code.locals() == 0 {
                                if let [DecodedOp::BinRet { a, b, op }] = resolved.code.ops() {
                                    slot.leaf = Some(LeafCall {
                                        token,
                                        a: a.clone(),
                                        b: b.clone(),
                                        op: *op,
                                        component: resolved.component,
                                        param: resolved.code.signature().params()[0],
                                        ret: resolved.code.signature().ret(),
                                    });
                                }
                            }
                        }
                        *consumed_nanos += resolver.dispatch_cost_nanos();
                        resolver.enter(function, resolved.component);
                        let mut args = arg_pool.pop().unwrap_or_default();
                        args.push(v);
                        if let Some(p) = profile.as_deref_mut() {
                            p.enter(function);
                        }
                        break 'ops FrameEvent::Call { resolved, args };
                    }
                }
            };

            match event {
                FrameEvent::Call { resolved, args } => {
                    self.frames.push(Frame::new(resolved, args));
                }
                FrameEvent::Return(value) => {
                    let mut frame = self.frames.pop().expect("returning thread has a frame");
                    resolver.exit(frame.function(), frame.component);
                    if let Some(p) = self.profile.as_deref_mut() {
                        p.exit();
                    }
                    if self.arg_pool.len() < MAX_CALL_DEPTH {
                        frame.args.clear();
                        self.arg_pool.push(std::mem::take(&mut frame.args));
                    }
                    let expected = frame.code.signature().ret();
                    if !expected.accepts(value.type_tag()) {
                        let err = VmError::ReturnType {
                            function: frame.function().clone(),
                            expected,
                            found: value.type_tag(),
                        };
                        break 'thread self.fault(resolver, err);
                    }
                    match self.frames.last_mut() {
                        Some(caller) => caller.stack.push(value),
                        None => {
                            self.status = ThreadStatus::Done;
                            break 'thread RunOutcome::Completed(value);
                        }
                    }
                }
                FrameEvent::Suspend(req) => {
                    self.status = ThreadStatus::Suspended;
                    break 'thread RunOutcome::Suspended(req);
                }
                FrameEvent::Fault(err) => break 'thread self.fault(resolver, err),
            }
        };
        self.total_retired += retired;
        self.fused_retired += fused;
        decoded::record_retirement(retired, fused);
        outcome
    }

    /// The original fuel loop over the single-step interpreter.
    fn run_legacy<R: CallResolver + ?Sized>(
        &mut self,
        resolver: &mut R,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
        fuel: u64,
    ) -> RunOutcome {
        let mut remaining = fuel;
        loop {
            if remaining == 0 {
                return self.fault(resolver, VmError::FuelExhausted);
            }
            remaining -= 1;
            match self.step(resolver, natives, globals) {
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Returned(value)) => {
                    self.status = ThreadStatus::Done;
                    return RunOutcome::Completed(value);
                }
                Ok(StepOutcome::Suspend(req)) => {
                    self.status = ThreadStatus::Suspended;
                    return RunOutcome::Suspended(req);
                }
                Err(err) => return self.fault(resolver, err),
            }
        }
    }

    fn fault<R: CallResolver + ?Sized>(&mut self, resolver: &mut R, err: VmError) -> RunOutcome {
        self.unwind(resolver);
        self.status = ThreadStatus::Done;
        RunOutcome::Faulted(err)
    }

    /// One step of the legacy interpreter, over the undecoded instruction
    /// stream.
    fn step<R: CallResolver + ?Sized>(
        &mut self,
        resolver: &mut R,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
    ) -> Result<StepOutcome, VmError> {
        // Implicit return of unit when execution falls off the end.
        let (code, pc, depth) = {
            let frame = self.frames.last_mut().expect("running thread has frames");
            if frame.pc >= frame.code.block().len() {
                return self.do_return(resolver, Value::Unit);
            }
            let pc = frame.pc;
            frame.pc += 1;
            (Arc::clone(&frame.code), pc, self.frames.len())
        };
        // Borrow the instruction from the (cheaply cloned) shared code block
        // rather than deep-cloning it every step.
        let instr = &code.block().instrs()[pc];
        if let Some(p) = self.profile.as_deref_mut() {
            let work = if let Instr::Work(nanos) = instr {
                *nanos
            } else {
                0
            };
            p.instruction(instr.opcode(), work);
        }
        let frame = self.frames.last_mut().expect("frame exists");
        match instr {
            Instr::Push(v) => frame.stack.push(v.clone()),
            Instr::Pop => {
                pop(&mut frame.stack)?;
            }
            Instr::Dup => {
                let v = frame.stack.last().ok_or(VmError::StackUnderflow)?.clone();
                frame.stack.push(v);
            }
            Instr::Swap => {
                let b = pop(&mut frame.stack)?;
                let a = pop(&mut frame.stack)?;
                frame.stack.push(b);
                frame.stack.push(a);
            }
            Instr::LoadArg(n) => {
                let v = frame
                    .args
                    .get(*n as usize)
                    .ok_or(VmError::StackUnderflow)?
                    .clone();
                frame.stack.push(v);
            }
            Instr::LoadLocal(n) => {
                let v = frame
                    .locals
                    .get(*n as usize)
                    .ok_or(VmError::StackUnderflow)?
                    .clone();
                frame.stack.push(v);
            }
            Instr::StoreLocal(n) => {
                let v = pop(&mut frame.stack)?;
                let slot = frame
                    .locals
                    .get_mut(*n as usize)
                    .ok_or(VmError::StackUnderflow)?;
                *slot = v;
            }
            Instr::Add => int_binop(&mut frame.stack, |a, b| Ok(a.wrapping_add(b)))?,
            Instr::Sub => int_binop(&mut frame.stack, |a, b| Ok(a.wrapping_sub(b)))?,
            Instr::Mul => int_binop(&mut frame.stack, |a, b| Ok(a.wrapping_mul(b)))?,
            Instr::Div => int_binop(&mut frame.stack, |a, b| {
                if b == 0 {
                    Err(VmError::DivideByZero)
                } else {
                    Ok(a.wrapping_div(b))
                }
            })?,
            Instr::Rem => int_binop(&mut frame.stack, |a, b| {
                if b == 0 {
                    Err(VmError::DivideByZero)
                } else {
                    Ok(a.wrapping_rem(b))
                }
            })?,
            Instr::Neg => {
                let a = pop_int(&mut frame.stack)?;
                frame.stack.push(Value::Int(a.wrapping_neg()));
            }
            Instr::Not => {
                let a = pop_bool(&mut frame.stack)?;
                frame.stack.push(Value::Bool(!a));
            }
            Instr::And => {
                let b = pop_bool(&mut frame.stack)?;
                let a = pop_bool(&mut frame.stack)?;
                frame.stack.push(Value::Bool(a && b));
            }
            Instr::Or => {
                let b = pop_bool(&mut frame.stack)?;
                let a = pop_bool(&mut frame.stack)?;
                frame.stack.push(Value::Bool(a || b));
            }
            Instr::Eq => {
                let b = pop(&mut frame.stack)?;
                let a = pop(&mut frame.stack)?;
                frame.stack.push(Value::Bool(a == b));
            }
            Instr::Ne => {
                let b = pop(&mut frame.stack)?;
                let a = pop(&mut frame.stack)?;
                frame.stack.push(Value::Bool(a != b));
            }
            Instr::Lt => int_cmp(&mut frame.stack, |a, b| a < b)?,
            Instr::Le => int_cmp(&mut frame.stack, |a, b| a <= b)?,
            Instr::Gt => int_cmp(&mut frame.stack, |a, b| a > b)?,
            Instr::Ge => int_cmp(&mut frame.stack, |a, b| a >= b)?,
            Instr::Jump(t) => frame.pc = *t as usize,
            Instr::JumpIfFalse(t) => {
                if !pop_bool(&mut frame.stack)? {
                    frame.pc = *t as usize;
                }
            }
            Instr::JumpIfTrue(t) => {
                if pop_bool(&mut frame.stack)? {
                    frame.pc = *t as usize;
                }
            }
            Instr::CallDyn { function, argc } => {
                if depth >= MAX_CALL_DEPTH {
                    return Err(VmError::CallDepthExceeded(MAX_CALL_DEPTH));
                }
                let args = pop_n(&mut frame.stack, *argc as usize)?;
                // Inline cache: redeem the token this call site cached, if
                // the resolver's configuration generation still matches.
                let site = function.identity_key();
                let resolved = match self
                    .call_cache
                    .get(&site)
                    .and_then(|token| resolver.resolve_token(*token))
                {
                    Some(resolved) => resolved,
                    None => {
                        let (resolved, token) =
                            resolve_with_token_checked(resolver, function, CallOrigin::Internal)?;
                        match token {
                            Some(token) => {
                                self.call_cache.insert(site, token);
                            }
                            None => {
                                self.call_cache.remove(&site);
                            }
                        }
                        resolved
                    }
                };
                check_args(&resolved.code, function, &args)?;
                self.consumed_nanos += resolver.dispatch_cost_nanos();
                resolver.enter(function, resolved.component);
                if let Some(p) = self.profile.as_deref_mut() {
                    p.enter(function);
                }
                self.frames.push(Frame::new(resolved, args));
            }
            Instr::CallNative { function, argc } => {
                let args = pop_n(&mut frame.stack, *argc as usize)?;
                let result = natives.call(function, &args)?;
                frame.stack.push(result);
            }
            Instr::CallRemote { function, argc } => {
                let args = pop_n(&mut frame.stack, *argc as usize)?;
                let target = pop(&mut frame.stack)?;
                let Some(target) = target.as_obj_ref() else {
                    return Err(VmError::TypeMismatch {
                        expected: TypeTag::ObjRef,
                        found: target.type_tag(),
                    });
                };
                return Ok(StepOutcome::Suspend(OutcallRequest {
                    target,
                    function: function.clone(),
                    args,
                }));
            }
            Instr::Ret => {
                let value = frame.stack.pop().unwrap_or(Value::Unit);
                return self.do_return(resolver, value);
            }
            Instr::MakeList(n) => {
                let items = pop_n(&mut frame.stack, *n as usize)?;
                frame.stack.push(Value::List(items));
            }
            Instr::ListGet => {
                let index = pop_int(&mut frame.stack)?;
                let list = pop_list(&mut frame.stack)?;
                let item = usize::try_from(index)
                    .ok()
                    .and_then(|i| list.get(i).cloned())
                    .ok_or(VmError::IndexOutOfRange {
                        index,
                        len: list.len(),
                    })?;
                frame.stack.push(item);
            }
            Instr::ListSet => {
                let value = pop(&mut frame.stack)?;
                let index = pop_int(&mut frame.stack)?;
                let mut list = pop_list(&mut frame.stack)?;
                let len = list.len();
                let slot = usize::try_from(index)
                    .ok()
                    .and_then(|i| list.get_mut(i))
                    .ok_or(VmError::IndexOutOfRange { index, len })?;
                *slot = value;
                frame.stack.push(Value::List(list));
            }
            Instr::ListLen => {
                let list = pop_list(&mut frame.stack)?;
                frame.stack.push(Value::Int(list.len() as i64));
            }
            Instr::ListPush => {
                let value = pop(&mut frame.stack)?;
                let mut list = pop_list(&mut frame.stack)?;
                list.push(value);
                frame.stack.push(Value::List(list));
            }
            Instr::StrConcat => {
                let b = pop_str(&mut frame.stack)?;
                let a = pop_str(&mut frame.stack)?;
                frame.stack.push(Value::str(format!("{a}{b}")));
            }
            Instr::StrLen => {
                let s = pop_str(&mut frame.stack)?;
                frame.stack.push(Value::Int(s.len() as i64));
            }
            Instr::Work(nanos) => {
                self.consumed_nanos += *nanos;
            }
            Instr::GlobalGet(key) => {
                frame.stack.push(globals.get(key.as_str()));
            }
            Instr::GlobalSet(key) => {
                let v = pop(&mut frame.stack)?;
                globals.set(key.as_str().to_owned(), v);
            }
        }
        Ok(StepOutcome::Continue)
    }

    fn do_return<R: CallResolver + ?Sized>(
        &mut self,
        resolver: &mut R,
        value: Value,
    ) -> Result<StepOutcome, VmError> {
        let frame = self.frames.pop().expect("returning thread has a frame");
        resolver.exit(frame.function(), frame.component);
        if let Some(p) = self.profile.as_deref_mut() {
            p.exit();
        }
        let expected = frame.code.signature().ret();
        if !expected.accepts(value.type_tag()) {
            return Err(VmError::ReturnType {
                function: frame.function().clone(),
                expected,
                found: value.type_tag(),
            });
        }
        match self.frames.last_mut() {
            Some(caller) => {
                caller.stack.push(value);
                Ok(StepOutcome::Continue)
            }
            None => Ok(StepOutcome::Returned(value)),
        }
    }
}

impl fmt::Debug for VmThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmThread")
            .field("status", &self.status)
            .field("depth", &self.frames.len())
            .field(
                "stack",
                &self
                    .frames
                    .iter()
                    .map(|fr| fr.function().as_str().to_owned())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

enum StepOutcome {
    Continue,
    Returned(Value),
    Suspend(OutcallRequest),
}

/// Reads a fused operand without touching the operand stack. Out-of-range
/// local/arg slots report `StackUnderflow`, exactly as the unfused
/// `LoadLocal`/`LoadArg` would.
#[inline]
fn fetch(locals: &[Value], args: &[Value], operand: &Operand) -> Result<Value, VmError> {
    match operand {
        Operand::Local(n) => locals
            .get(*n as usize)
            .cloned()
            .ok_or(VmError::StackUnderflow),
        Operand::Arg(n) => args
            .get(*n as usize)
            .cloned()
            .ok_or(VmError::StackUnderflow),
        Operand::Imm(v) => Ok(v.clone()),
    }
}

fn resolve_error_to_vm(e: ResolveError, function: &FunctionName) -> VmError {
    match e {
        ResolveError::Missing => VmError::MissingFunction(function.clone()),
        ResolveError::Disabled => VmError::FunctionDisabled(function.clone()),
        ResolveError::NotExported => VmError::NotExported(function.clone()),
    }
}

fn resolve_checked<R: CallResolver + ?Sized>(
    resolver: &mut R,
    function: &FunctionName,
    origin: CallOrigin,
) -> Result<ResolvedCall, VmError> {
    resolver
        .resolve(function, origin)
        .map_err(|e| resolve_error_to_vm(e, function))
}

fn resolve_with_token_checked<R: CallResolver + ?Sized>(
    resolver: &mut R,
    function: &FunctionName,
    origin: CallOrigin,
) -> Result<(ResolvedCall, Option<CallToken>), VmError> {
    resolver
        .resolve_with_token(function, origin)
        .map_err(|e| resolve_error_to_vm(e, function))
}

fn check_args(code: &DecodedCode, function: &FunctionName, args: &[Value]) -> Result<(), VmError> {
    let params = code.signature().params();
    if params.len() != args.len() {
        return Err(VmError::ArityMismatch {
            function: function.clone(),
            expected: params.len(),
            found: args.len(),
        });
    }
    for (position, (param, arg)) in params.iter().zip(args).enumerate() {
        if !param.accepts(arg.type_tag()) {
            return Err(VmError::ArgumentType {
                function: function.clone(),
                position,
                expected: *param,
                found: arg.type_tag(),
            });
        }
    }
    Ok(())
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, VmError> {
    stack.pop().ok_or(VmError::StackUnderflow)
}

fn pop_n(stack: &mut Vec<Value>, n: usize) -> Result<Vec<Value>, VmError> {
    if stack.len() < n {
        return Err(VmError::StackUnderflow);
    }
    Ok(stack.split_off(stack.len() - n))
}

fn pop_int(stack: &mut Vec<Value>) -> Result<i64, VmError> {
    let v = pop(stack)?;
    v.as_int().ok_or(VmError::TypeMismatch {
        expected: TypeTag::Int,
        found: v.type_tag(),
    })
}

fn pop_bool(stack: &mut Vec<Value>) -> Result<bool, VmError> {
    let v = pop(stack)?;
    v.as_bool().ok_or(VmError::TypeMismatch {
        expected: TypeTag::Bool,
        found: v.type_tag(),
    })
}

fn pop_str(stack: &mut Vec<Value>) -> Result<std::sync::Arc<str>, VmError> {
    let v = pop(stack)?;
    match v {
        Value::Str(s) => Ok(s),
        other => Err(VmError::TypeMismatch {
            expected: TypeTag::Str,
            found: other.type_tag(),
        }),
    }
}

fn pop_list(stack: &mut Vec<Value>) -> Result<Vec<Value>, VmError> {
    let v = pop(stack)?;
    match v {
        Value::List(l) => Ok(l),
        other => Err(VmError::TypeMismatch {
            expected: TypeTag::List,
            found: other.type_tag(),
        }),
    }
}

fn int_binop(
    stack: &mut Vec<Value>,
    f: impl Fn(i64, i64) -> Result<i64, VmError>,
) -> Result<(), VmError> {
    let b = pop_int(stack)?;
    let a = pop_int(stack)?;
    stack.push(Value::Int(f(a, b)?));
    Ok(())
}

fn int_cmp(stack: &mut Vec<Value>, f: impl Fn(i64, i64) -> bool) -> Result<(), VmError> {
    let b = pop_int(stack)?;
    let a = pop_int(stack)?;
    stack.push(Value::Bool(f(a, b)));
    Ok(())
}

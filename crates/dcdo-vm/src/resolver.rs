//! Call resolution: the single level of indirection.
//!
//! Dynamic functions "are not invoked directly using only the mechanisms of
//! the programming language(s)" (§2): every call goes through a
//! [`CallResolver`], which hands back the ability to call — in this
//! implementation, the code block itself. Changing only the resolver
//! (without changing calling code) changes which implementation runs; this
//! indirection is the key enabler of dynamic configurability.
//!
//! Two resolvers exist in the workspace:
//!
//! - [`StaticResolver`] (here): a frozen function table, used by normal
//!   (monolithic) Legion objects — the baseline the paper compares against.
//!   It ignores visibility and enablement because a monolithic executable is
//!   checked at link time and never changes.
//! - `Dfm` (in `dcdo-core`): the dynamic function mapper, which checks
//!   visibility and enablement at every call and maintains active-thread
//!   counters.
//!
//! # Inline-cache tokens
//!
//! Resolution by name costs a hash (or an ordered-map walk) per call. A
//! resolver that keeps its per-function records in a flat slot table can
//! hand the caller a [`CallToken`] — a `(slot, generation)` pair — via
//! [`CallResolver::resolve_with_token`]. The caller stores the token next
//! to the call site; on the next call, [`CallResolver::resolve_token`]
//! turns it back into a [`ResolvedCall`] with a single bounds-checked index
//! — *if* the resolver's configuration generation still matches. Every
//! configuration operation moves the resolver to a fresh, globally unique
//! generation (see [`next_generation`]), so a stale token can never
//! dispatch through an outdated table, and a token can never be honored by
//! a resolver other than the one that issued it.
//!
//! Tokens elide the name lookup and the visibility/enablement checks, so
//! they are only valid for [`CallOrigin::Internal`] call sites (internal
//! calls may reach both exported and internal functions). Issuing resolvers
//! must keep resolved code alive until the next generation bump, so a
//! token's slot can never name freed code.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dcdo_types::{ComponentId, FunctionName};

use crate::decoded::{fusion_default, DecodeCacheStats, DecodedCode};
use crate::instr::CodeBlock;

/// Where a call originates, which determines the visibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallOrigin {
    /// The call arrived from another object; only exported functions may be
    /// resolved.
    External,
    /// The call came from code already executing inside the object; both
    /// exported and internal functions may be resolved.
    Internal,
}

/// Why a call could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveError {
    /// No implementation of the function is present.
    Missing,
    /// An implementation is present but disabled.
    Disabled,
    /// The function is internal and the call came from outside.
    NotExported,
}

/// A successful resolution: the code to run and the component it lives in.
///
/// The code arrives **pre-decoded**: resolvers decode each [`CodeBlock`]
/// into its direct-threaded [`DecodedCode`] form once, at configuration
/// time, and hand out shared references. The decode cache rides the same
/// generation machinery as [`CallToken`]s — a configuration operation
/// replaces the cached decode exactly when it invalidates outstanding
/// tokens.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// The pre-decoded implementation to execute (shared, decoded once per
    /// configuration generation, never per call).
    pub code: Arc<DecodedCode>,
    /// The component containing the implementation (for thread-activity
    /// accounting and the disappearing-component check).
    pub component: ComponentId,
}

/// A generation-stamped slot reference cacheable at a call site.
///
/// Issued by [`CallResolver::resolve_with_token`]; redeemed by
/// [`CallResolver::resolve_token`]. Valid only while the issuing resolver
/// remains at `generation` — any configuration change moves the resolver to
/// a fresh generation and silently invalidates every outstanding token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallToken {
    /// Index into the issuing resolver's slot table.
    pub slot: u32,
    /// The resolver configuration generation the token was issued at.
    pub generation: u64,
}

/// Issues the next globally unique configuration generation.
///
/// Generations are drawn from one process-wide counter rather than
/// per-resolver counters so a [`CallToken`] issued by one resolver can never
/// accidentally match another resolver that happens to have seen the same
/// number of configuration changes. Generation `0` is reserved and never
/// issued, so it is safe as a "never matches" sentinel.
pub fn next_generation() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Maps dynamic-function calls to implementations at call time.
pub trait CallResolver {
    /// Resolves a call to `function` originating from `origin`.
    fn resolve(
        &mut self,
        function: &FunctionName,
        origin: CallOrigin,
    ) -> Result<ResolvedCall, ResolveError>;

    /// Resolves like [`CallResolver::resolve`], additionally issuing a
    /// [`CallToken`] the caller may cache when the resolver supports slot
    /// redemption. The default implementation issues no token, which keeps
    /// plain resolvers correct with zero extra work.
    fn resolve_with_token(
        &mut self,
        function: &FunctionName,
        origin: CallOrigin,
    ) -> Result<(ResolvedCall, Option<CallToken>), ResolveError> {
        self.resolve(function, origin).map(|r| (r, None))
    }

    /// Redeems a previously issued token, or returns `None` if the token's
    /// generation no longer matches (the caller must then re-resolve by
    /// name). Only [`CallOrigin::Internal`] call sites may redeem tokens.
    fn resolve_token(&mut self, token: CallToken) -> Option<ResolvedCall> {
        let _ = token;
        None
    }

    /// Cheap form of [`CallResolver::resolve_token`] for call sites that
    /// cached everything they need from an earlier redemption: returns
    /// `true` iff redeeming `token` now would succeed, without re-fetching
    /// the entry. A `true` return counts against the resolver's cache
    /// accounting exactly like a full redemption, so fused and unfused
    /// execution report identical dispatch statistics. Slot-table resolvers
    /// should override this together with `resolve_token`; the default
    /// (matching `resolve_token`'s default) revalidates nothing.
    fn revalidate_token(&mut self, token: CallToken) -> bool {
        let _ = token;
        false
    }

    /// Notifies that a thread entered the implementation of `function` in
    /// `component` (push of a call frame).
    fn enter(&mut self, function: &FunctionName, component: ComponentId) {
        let _ = (function, component);
    }

    /// Notifies that a thread left the implementation of `function` in
    /// `component` (pop of a call frame, normal or unwinding).
    fn exit(&mut self, function: &FunctionName, component: ComponentId) {
        let _ = (function, component);
    }

    /// Simulated cost, in nanoseconds, charged per resolved call. The DFM
    /// resolver uses this to model the paper's 10–15 µs indirection
    /// overhead; the static resolver models a direct call.
    fn dispatch_cost_nanos(&mut self) -> u64 {
        0
    }
}

/// A frozen function table: the resolver of a monolithic Legion object.
///
/// All functions are implicitly enabled and exported — exactly the contract
/// a statically linked executable provides. Entries live in a flat slot
/// table (name → slot index resolved once, then cached via [`CallToken`]s),
/// so steady-state dispatch is a bounds-checked index.
#[derive(Debug, Clone)]
pub struct StaticResolver {
    slots_by_name: HashMap<FunctionName, u32>,
    entries: Vec<ResolvedEntry>,
    generation: u64,
    dispatch_cost_nanos: u64,
    fuse: bool,
    stats: DecodeCacheStats,
}

#[derive(Debug, Clone)]
struct ResolvedEntry {
    code: Arc<DecodedCode>,
    component: ComponentId,
}

impl Default for StaticResolver {
    fn default() -> Self {
        StaticResolver {
            slots_by_name: HashMap::new(),
            entries: Vec::new(),
            generation: next_generation(),
            dispatch_cost_nanos: 0,
            fuse: fusion_default(),
            stats: DecodeCacheStats::default(),
        }
    }
}

impl StaticResolver {
    /// Creates an empty table.
    pub fn new() -> Self {
        StaticResolver::default()
    }

    /// Sets the simulated per-call dispatch cost (a direct call is a few
    /// hundred nanoseconds on the paper's hardware).
    pub fn with_dispatch_cost_nanos(mut self, nanos: u64) -> Self {
        self.dispatch_cost_nanos = nanos;
        self
    }

    /// Selects whether the decode pass fuses superinstructions. Defaults to
    /// the process-wide [`fusion_default`] (`DCDO_VM_FUSE`). Flipping the
    /// mode re-decodes every installed function and moves the table to a
    /// fresh generation, exactly like any other configuration change.
    pub fn with_fusion(mut self, fuse: bool) -> Self {
        self.set_fusion(fuse);
        self
    }

    /// See [`StaticResolver::with_fusion`].
    pub fn set_fusion(&mut self, fuse: bool) {
        if self.fuse == fuse {
            return;
        }
        self.fuse = fuse;
        for entry in &mut self.entries {
            self.stats.invalidations += 1;
            self.stats.decodes += 1;
            entry.code = Arc::new(DecodedCode::decode(Arc::clone(entry.code.block()), fuse));
        }
        if !self.entries.is_empty() {
            self.generation = next_generation();
        }
    }

    /// Pre-decode cache counters: decodes performed, resolutions served
    /// from the cache, and cached decodes invalidated by configuration
    /// changes.
    pub fn decode_stats(&self) -> DecodeCacheStats {
        self.stats
    }

    /// Installs a function implementation, decoding it once into its
    /// direct-threaded form. Later insertions replace earlier ones (link
    /// order) and invalidate the replaced decode. Each insertion moves the
    /// table to a fresh generation, invalidating outstanding [`CallToken`]s.
    pub fn insert(&mut self, code: CodeBlock, component: ComponentId) {
        let name = code.signature().name().clone();
        self.stats.decodes += 1;
        let entry = ResolvedEntry {
            code: Arc::new(DecodedCode::decode(Arc::new(code), self.fuse)),
            component,
        };
        match self.slots_by_name.get(&name) {
            Some(&slot) => {
                self.stats.invalidations += 1;
                self.entries[slot as usize] = entry;
            }
            None => {
                let slot = u32::try_from(self.entries.len()).expect("slot overflow");
                self.entries.push(entry);
                self.slots_by_name.insert(name, slot);
            }
        }
        self.generation = next_generation();
    }

    /// The table's current configuration generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Returns the number of functions in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if the table contains `function`.
    pub fn contains(&self, function: &FunctionName) -> bool {
        self.slots_by_name.contains_key(function)
    }

    fn entry_call(&mut self, slot: u32) -> ResolvedCall {
        self.stats.hits += 1;
        let entry = &self.entries[slot as usize];
        ResolvedCall {
            code: Arc::clone(&entry.code),
            component: entry.component,
        }
    }
}

impl CallResolver for StaticResolver {
    fn resolve(
        &mut self,
        function: &FunctionName,
        _origin: CallOrigin,
    ) -> Result<ResolvedCall, ResolveError> {
        let slot = *self
            .slots_by_name
            .get(function)
            .ok_or(ResolveError::Missing)?;
        Ok(self.entry_call(slot))
    }

    fn resolve_with_token(
        &mut self,
        function: &FunctionName,
        _origin: CallOrigin,
    ) -> Result<(ResolvedCall, Option<CallToken>), ResolveError> {
        let slot = *self
            .slots_by_name
            .get(function)
            .ok_or(ResolveError::Missing)?;
        let token = CallToken {
            slot,
            generation: self.generation,
        };
        Ok((self.entry_call(slot), Some(token)))
    }

    fn resolve_token(&mut self, token: CallToken) -> Option<ResolvedCall> {
        if token.generation != self.generation || token.slot as usize >= self.entries.len() {
            return None;
        }
        Some(self.entry_call(token.slot))
    }

    fn revalidate_token(&mut self, token: CallToken) -> bool {
        if token.generation != self.generation || token.slot as usize >= self.entries.len() {
            return false;
        }
        self.stats.hits += 1;
        true
    }

    fn dispatch_cost_nanos(&mut self) -> u64 {
        self.dispatch_cost_nanos
    }
}

#[cfg(test)]
mod tests {
    use dcdo_types::FunctionSignature;

    use super::*;
    use crate::instr::Instr;

    fn block(sig: &str) -> CodeBlock {
        let sig: FunctionSignature = sig.parse().expect("valid");
        CodeBlock::new(sig, 0, vec![Instr::Ret])
    }

    #[test]
    fn static_resolver_finds_installed_functions() {
        let mut r = StaticResolver::new();
        r.insert(block("f() -> unit"), ComponentId::from_raw(1));
        assert!(r.contains(&"f".into()));
        assert_eq!(r.len(), 1);
        let resolved = r.resolve(&"f".into(), CallOrigin::External).expect("found");
        assert_eq!(resolved.component, ComponentId::from_raw(1));
    }

    #[test]
    fn static_resolver_reports_missing() {
        let mut r = StaticResolver::new();
        assert!(r.is_empty());
        assert_eq!(
            r.resolve(&"g".into(), CallOrigin::Internal).unwrap_err(),
            ResolveError::Missing
        );
    }

    #[test]
    fn later_insertions_replace() {
        let mut r = StaticResolver::new();
        r.insert(block("f() -> unit"), ComponentId::from_raw(1));
        r.insert(block("f() -> unit"), ComponentId::from_raw(2));
        let resolved = r.resolve(&"f".into(), CallOrigin::Internal).expect("found");
        assert_eq!(resolved.component, ComponentId::from_raw(2));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn dispatch_cost_configurable() {
        let mut r = StaticResolver::new().with_dispatch_cost_nanos(300);
        assert_eq!(r.dispatch_cost_nanos(), 300);
    }

    #[test]
    fn tokens_redeem_until_the_table_changes() {
        let mut r = StaticResolver::new();
        r.insert(block("f() -> unit"), ComponentId::from_raw(1));
        let (first, token) = r
            .resolve_with_token(&"f".into(), CallOrigin::Internal)
            .expect("resolves");
        let token = token.expect("static resolver issues tokens");
        let redeemed = r.resolve_token(token).expect("fresh token redeems");
        assert_eq!(redeemed.component, first.component);
        assert!(Arc::ptr_eq(&redeemed.code, &first.code), "same shared code");

        // Any insertion invalidates outstanding tokens...
        r.insert(block("f() -> unit"), ComponentId::from_raw(2));
        assert!(r.resolve_token(token).is_none());
        // ...and re-resolving yields a fresh, redeemable token.
        let (_, token2) = r
            .resolve_with_token(&"f".into(), CallOrigin::Internal)
            .expect("resolves");
        let redeemed = r.resolve_token(token2.expect("token")).expect("redeems");
        assert_eq!(redeemed.component, ComponentId::from_raw(2));
    }

    #[test]
    fn foreign_and_malformed_tokens_are_rejected() {
        let mut a = StaticResolver::new();
        let mut b = StaticResolver::new();
        a.insert(block("f() -> unit"), ComponentId::from_raw(1));
        b.insert(block("f() -> unit"), ComponentId::from_raw(9));
        let (_, token) = a
            .resolve_with_token(&"f".into(), CallOrigin::Internal)
            .expect("resolves");
        let token = token.expect("token");
        // Generations are globally unique, so b can never honor a's token.
        assert!(b.resolve_token(token).is_none());
        // An out-of-range slot is rejected even with a matching generation.
        let bad = CallToken {
            slot: 99,
            generation: a.generation(),
        };
        assert!(a.resolve_token(bad).is_none());
    }

    #[test]
    fn resolved_calls_share_one_code_allocation() {
        let mut r = StaticResolver::new();
        r.insert(block("f() -> unit"), ComponentId::from_raw(1));
        let x = r.resolve(&"f".into(), CallOrigin::Internal).expect("ok");
        let y = r.resolve(&"f".into(), CallOrigin::Internal).expect("ok");
        assert!(Arc::ptr_eq(&x.code, &y.code));
    }
}

//! Call resolution: the single level of indirection.
//!
//! Dynamic functions "are not invoked directly using only the mechanisms of
//! the programming language(s)" (§2): every call goes through a
//! [`CallResolver`], which hands back the ability to call — in this
//! implementation, the code block itself. Changing only the resolver
//! (without changing calling code) changes which implementation runs; this
//! indirection is the key enabler of dynamic configurability.
//!
//! Two resolvers exist in the workspace:
//!
//! - [`StaticResolver`] (here): a frozen function table, used by normal
//!   (monolithic) Legion objects — the baseline the paper compares against.
//!   It ignores visibility and enablement because a monolithic executable is
//!   checked at link time and never changes.
//! - `Dfm` (in `dcdo-core`): the dynamic function mapper, which checks
//!   visibility and enablement at every call and maintains active-thread
//!   counters.

use std::collections::HashMap;

use dcdo_types::{ComponentId, FunctionName};

use crate::instr::CodeBlock;

/// Where a call originates, which determines the visibility check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallOrigin {
    /// The call arrived from another object; only exported functions may be
    /// resolved.
    External,
    /// The call came from code already executing inside the object; both
    /// exported and internal functions may be resolved.
    Internal,
}

/// Why a call could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveError {
    /// No implementation of the function is present.
    Missing,
    /// An implementation is present but disabled.
    Disabled,
    /// The function is internal and the call came from outside.
    NotExported,
}

/// A successful resolution: the code to run and the component it lives in.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// The implementation to execute.
    pub code: CodeBlock,
    /// The component containing the implementation (for thread-activity
    /// accounting and the disappearing-component check).
    pub component: ComponentId,
}

/// Maps dynamic-function calls to implementations at call time.
pub trait CallResolver {
    /// Resolves a call to `function` originating from `origin`.
    fn resolve(&mut self, function: &FunctionName, origin: CallOrigin)
        -> Result<ResolvedCall, ResolveError>;

    /// Notifies that a thread entered the implementation of `function` in
    /// `component` (push of a call frame).
    fn enter(&mut self, function: &FunctionName, component: ComponentId) {
        let _ = (function, component);
    }

    /// Notifies that a thread left the implementation of `function` in
    /// `component` (pop of a call frame, normal or unwinding).
    fn exit(&mut self, function: &FunctionName, component: ComponentId) {
        let _ = (function, component);
    }

    /// Simulated cost, in nanoseconds, charged per resolved call. The DFM
    /// resolver uses this to model the paper's 10–15 µs indirection
    /// overhead; the static resolver models a direct call.
    fn dispatch_cost_nanos(&mut self) -> u64 {
        0
    }
}

/// A frozen function table: the resolver of a monolithic Legion object.
///
/// All functions are implicitly enabled and exported — exactly the contract
/// a statically linked executable provides — and resolution is a plain map
/// lookup with no bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct StaticResolver {
    table: HashMap<FunctionName, ResolvedEntry>,
    dispatch_cost_nanos: u64,
}

#[derive(Debug, Clone)]
struct ResolvedEntry {
    code: CodeBlock,
    component: ComponentId,
}

impl StaticResolver {
    /// Creates an empty table.
    pub fn new() -> Self {
        StaticResolver::default()
    }

    /// Sets the simulated per-call dispatch cost (a direct call is a few
    /// hundred nanoseconds on the paper's hardware).
    pub fn with_dispatch_cost_nanos(mut self, nanos: u64) -> Self {
        self.dispatch_cost_nanos = nanos;
        self
    }

    /// Installs a function implementation. Later insertions replace earlier
    /// ones (link order).
    pub fn insert(&mut self, code: CodeBlock, component: ComponentId) {
        self.table.insert(code.signature().name().clone(), ResolvedEntry { code, component });
    }

    /// Returns the number of functions in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Returns `true` if the table contains `function`.
    pub fn contains(&self, function: &FunctionName) -> bool {
        self.table.contains_key(function)
    }
}

impl CallResolver for StaticResolver {
    fn resolve(
        &mut self,
        function: &FunctionName,
        _origin: CallOrigin,
    ) -> Result<ResolvedCall, ResolveError> {
        let entry = self.table.get(function).ok_or(ResolveError::Missing)?;
        Ok(ResolvedCall {
            code: entry.code.clone(),
            component: entry.component,
        })
    }

    fn dispatch_cost_nanos(&mut self) -> u64 {
        self.dispatch_cost_nanos
    }
}

#[cfg(test)]
mod tests {
    use dcdo_types::FunctionSignature;

    use super::*;
    use crate::instr::Instr;

    fn block(sig: &str) -> CodeBlock {
        let sig: FunctionSignature = sig.parse().expect("valid");
        CodeBlock::new(sig, 0, vec![Instr::Ret])
    }

    #[test]
    fn static_resolver_finds_installed_functions() {
        let mut r = StaticResolver::new();
        r.insert(block("f() -> unit"), ComponentId::from_raw(1));
        assert!(r.contains(&"f".into()));
        assert_eq!(r.len(), 1);
        let resolved = r.resolve(&"f".into(), CallOrigin::External).expect("found");
        assert_eq!(resolved.component, ComponentId::from_raw(1));
    }

    #[test]
    fn static_resolver_reports_missing() {
        let mut r = StaticResolver::new();
        assert!(r.is_empty());
        assert_eq!(
            r.resolve(&"g".into(), CallOrigin::Internal).unwrap_err(),
            ResolveError::Missing
        );
    }

    #[test]
    fn later_insertions_replace() {
        let mut r = StaticResolver::new();
        r.insert(block("f() -> unit"), ComponentId::from_raw(1));
        r.insert(block("f() -> unit"), ComponentId::from_raw(2));
        let resolved = r.resolve(&"f".into(), CallOrigin::Internal).expect("found");
        assert_eq!(resolved.component, ComponentId::from_raw(2));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn dispatch_cost_configurable() {
        let mut r = StaticResolver::new().with_dispatch_cost_nanos(300);
        assert_eq!(r.dispatch_cost_nanos(), 300);
    }
}

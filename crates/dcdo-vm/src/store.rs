//! Persistent object state.
//!
//! Implementation components "may also contain a set of internal data
//! structures, but these data structures must be accessed from outside the
//! component by calling the component's exported dynamic functions" (§2).
//! A [`ValueStore`] is that internal data: a named-slot store that survives
//! across invocations, is readable/writable only from bytecode
//! (`GlobalGet`/`GlobalSet`), and is what Legion state capture serializes
//! when an object migrates or evolves.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::codec::{read_value, write_value, DecodeError, Reader, Writer};
use crate::value::Value;

/// The persistent internal state of an active object.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueStore {
    slots: BTreeMap<Arc<str>, Value>,
}

impl ValueStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ValueStore::default()
    }

    /// Reads a slot; absent slots read as [`Value::Unit`].
    pub fn get(&self, key: &str) -> Value {
        self.slots.get(key).cloned().unwrap_or(Value::Unit)
    }

    /// Writes a slot, returning the previous value if any.
    pub fn set(&mut self, key: impl Into<Arc<str>>, value: Value) -> Option<Value> {
        self.slots.insert(key.into(), value)
    }

    /// Removes a slot.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.slots.remove(key)
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Approximate in-memory size, used for state-capture cost accounting.
    pub fn approx_size(&self) -> u64 {
        self.slots
            .iter()
            .map(|(k, v)| k.len() as u64 + v.approx_size())
            .sum()
    }

    /// Serializes the store (Legion state capture).
    pub fn capture(&self) -> bytes::Bytes {
        let mut w = Writer::new();
        w.u32(self.slots.len() as u32);
        for (k, v) in &self.slots {
            w.str(k);
            write_value(&mut w, v);
        }
        w.finish()
    }

    /// Deserializes a captured store (Legion state restore).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input.
    pub fn restore(bytes: bytes::Bytes) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let n = r.read_len()?;
        let mut slots = BTreeMap::new();
        for _ in 0..n {
            let key: Arc<str> = r.str()?.into();
            let value = read_value(&mut r)?;
            slots.insert(key, value);
        }
        Ok(ValueStore { slots })
    }

    /// Iterates over slots in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.slots.iter().map(|(k, v)| (k.as_ref(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_slots_read_unit() {
        let store = ValueStore::new();
        assert_eq!(store.get("missing"), Value::Unit);
        assert!(store.is_empty());
    }

    #[test]
    fn set_get_remove() {
        let mut store = ValueStore::new();
        assert_eq!(store.set("count", Value::Int(1)), None);
        assert_eq!(store.set("count", Value::Int(2)), Some(Value::Int(1)));
        assert_eq!(store.get("count"), Value::Int(2));
        assert_eq!(store.len(), 1);
        assert_eq!(store.remove("count"), Some(Value::Int(2)));
        assert!(store.is_empty());
    }

    #[test]
    fn capture_restore_round_trips() {
        let mut store = ValueStore::new();
        store.set("name", Value::str("svc"));
        store.set("hits", Value::Int(42));
        store.set("log", Value::List(vec![Value::str("a"), Value::str("b")]));
        let restored = ValueStore::restore(store.capture()).expect("round trip");
        assert_eq!(restored, store);
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(ValueStore::restore(bytes::Bytes::from_static(&[1, 2, 3])).is_err());
    }

    #[test]
    fn approx_size_grows() {
        let mut store = ValueStore::new();
        let empty = store.approx_size();
        store.set("payload", Value::str("x".repeat(100)));
        assert!(store.approx_size() > empty + 100);
    }

    #[test]
    fn iter_in_key_order() {
        let mut store = ValueStore::new();
        store.set("b", Value::Int(2));
        store.set("a", Value::Int(1));
        let keys: Vec<&str> = store.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}

//! The serialized component object-code format.
//!
//! Implementation components travel through the system as byte blobs: an ICO
//! stores the encoded form, a DCDO downloads and decodes ("maps") it. The
//! format is a compact binary encoding with a magic number and format
//! version — the `dcdo-bytecode` object-code format named by
//! [`ObjectCodeFormat::DcdoBytecode`](dcdo_types::ObjectCodeFormat).

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dcdo_types::{FunctionSignature, ObjectId};

use crate::instr::{CodeBlock, Instr};
use crate::value::Value;

/// Magic number opening every encoded component ("DCDO").
pub const MAGIC: u32 = 0x4443_444F;

/// Current format version.
pub const FORMAT_VERSION: u16 = 1;

/// Maximum length accepted for any string or sequence while decoding.
const MAX_LEN: usize = 1 << 24;

/// Error produced while decoding the component format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    UnexpectedEof,
    /// The magic number did not match [`MAGIC`].
    BadMagic(u32),
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// An unknown instruction opcode was found.
    BadOpcode(u8),
    /// An unknown value/type tag was found.
    BadTag(u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A signature string did not parse.
    BadSignature(String),
    /// A length field exceeded sanity limits.
    TooLarge(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadMagic(m) => write!(f, "bad magic number {m:#010x}"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::BadSignature(s) => write!(f, "invalid signature {s:?}"),
            DecodeError::TooLarge(n) => write!(f, "length field {n} exceeds limits"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Incremental writer for the component format.
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a `u16` (big-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Writes a `u32` (big-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Writes a `u64` (big-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Writes an `i64` (big-endian).
    pub fn i64(&mut self, v: i64) {
        self.buf.put_i64(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
    }
}

/// Incremental reader for the component format.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Creates a reader over encoded bytes.
    pub fn new(buf: Bytes) -> Self {
        Reader { buf }
    }

    /// Returns the number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::UnexpectedEof)
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        self.need(2)?;
        Ok(self.buf.get_u16())
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_i64())
    }

    /// Reads a length prefix, enforcing sanity limits.
    pub fn read_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n > MAX_LEN {
            return Err(DecodeError::TooLarge(n));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.read_len()?;
        self.need(n)?;
        let bytes = self.buf.copy_to_bytes(n);
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

// ---- Value ----------------------------------------------------------------

const TAG_UNIT: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_LIST: u8 = 4;
const TAG_OBJREF: u8 = 5;

/// Encodes a [`Value`].
pub fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Unit => w.u8(TAG_UNIT),
        Value::Int(n) => {
            w.u8(TAG_INT);
            w.i64(*n);
        }
        Value::Bool(b) => {
            w.u8(TAG_BOOL);
            w.u8(u8::from(*b));
        }
        Value::Str(s) => {
            w.u8(TAG_STR);
            w.str(s);
        }
        Value::List(items) => {
            w.u8(TAG_LIST);
            w.u32(items.len() as u32);
            for item in items {
                write_value(w, item);
            }
        }
        Value::ObjRef(o) => {
            w.u8(TAG_OBJREF);
            w.u64(o.as_raw());
        }
    }
}

/// Decodes a [`Value`].
pub fn read_value(r: &mut Reader) -> Result<Value, DecodeError> {
    match r.u8()? {
        TAG_UNIT => Ok(Value::Unit),
        TAG_INT => Ok(Value::Int(r.i64()?)),
        TAG_BOOL => Ok(Value::Bool(r.u8()? != 0)),
        TAG_STR => Ok(Value::str(r.str()?)),
        TAG_LIST => {
            let n = r.read_len()?;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(read_value(r)?);
            }
            Ok(Value::List(items))
        }
        TAG_OBJREF => Ok(Value::ObjRef(ObjectId::from_raw(r.u64()?))),
        t => Err(DecodeError::BadTag(t)),
    }
}

// ---- Instr ----------------------------------------------------------------

#[rustfmt::skip]
mod op {
    pub const PUSH: u8 = 0x01; pub const POP: u8 = 0x02; pub const DUP: u8 = 0x03;
    pub const SWAP: u8 = 0x04; pub const LOAD_ARG: u8 = 0x05; pub const LOAD_LOCAL: u8 = 0x06;
    pub const STORE_LOCAL: u8 = 0x07; pub const ADD: u8 = 0x08; pub const SUB: u8 = 0x09;
    pub const MUL: u8 = 0x0A; pub const DIV: u8 = 0x0B; pub const REM: u8 = 0x0C;
    pub const NEG: u8 = 0x0D; pub const NOT: u8 = 0x0E; pub const AND: u8 = 0x0F;
    pub const OR: u8 = 0x10; pub const EQ: u8 = 0x11; pub const NE: u8 = 0x12;
    pub const LT: u8 = 0x13; pub const LE: u8 = 0x14; pub const GT: u8 = 0x15;
    pub const GE: u8 = 0x16; pub const JUMP: u8 = 0x17; pub const JUMP_IF_FALSE: u8 = 0x18;
    pub const JUMP_IF_TRUE: u8 = 0x19; pub const CALL_DYN: u8 = 0x1A;
    pub const CALL_NATIVE: u8 = 0x1B; pub const CALL_REMOTE: u8 = 0x1C; pub const RET: u8 = 0x1D;
    pub const MAKE_LIST: u8 = 0x1E; pub const LIST_GET: u8 = 0x1F; pub const LIST_SET: u8 = 0x20;
    pub const LIST_LEN: u8 = 0x21; pub const LIST_PUSH: u8 = 0x22; pub const STR_CONCAT: u8 = 0x23;
    pub const STR_LEN: u8 = 0x24; pub const WORK: u8 = 0x25;
    pub const GLOBAL_GET: u8 = 0x26; pub const GLOBAL_SET: u8 = 0x27;
}

/// Encodes one instruction.
pub fn write_instr(w: &mut Writer, i: &Instr) {
    match i {
        Instr::Push(v) => {
            w.u8(op::PUSH);
            write_value(w, v);
        }
        Instr::Pop => w.u8(op::POP),
        Instr::Dup => w.u8(op::DUP),
        Instr::Swap => w.u8(op::SWAP),
        Instr::LoadArg(n) => {
            w.u8(op::LOAD_ARG);
            w.u8(*n);
        }
        Instr::LoadLocal(n) => {
            w.u8(op::LOAD_LOCAL);
            w.u8(*n);
        }
        Instr::StoreLocal(n) => {
            w.u8(op::STORE_LOCAL);
            w.u8(*n);
        }
        Instr::Add => w.u8(op::ADD),
        Instr::Sub => w.u8(op::SUB),
        Instr::Mul => w.u8(op::MUL),
        Instr::Div => w.u8(op::DIV),
        Instr::Rem => w.u8(op::REM),
        Instr::Neg => w.u8(op::NEG),
        Instr::Not => w.u8(op::NOT),
        Instr::And => w.u8(op::AND),
        Instr::Or => w.u8(op::OR),
        Instr::Eq => w.u8(op::EQ),
        Instr::Ne => w.u8(op::NE),
        Instr::Lt => w.u8(op::LT),
        Instr::Le => w.u8(op::LE),
        Instr::Gt => w.u8(op::GT),
        Instr::Ge => w.u8(op::GE),
        Instr::Jump(t) => {
            w.u8(op::JUMP);
            w.u32(*t);
        }
        Instr::JumpIfFalse(t) => {
            w.u8(op::JUMP_IF_FALSE);
            w.u32(*t);
        }
        Instr::JumpIfTrue(t) => {
            w.u8(op::JUMP_IF_TRUE);
            w.u32(*t);
        }
        Instr::CallDyn { function, argc } => {
            w.u8(op::CALL_DYN);
            w.str(function.as_str());
            w.u8(*argc);
        }
        Instr::CallNative { function, argc } => {
            w.u8(op::CALL_NATIVE);
            w.str(function.as_str());
            w.u8(*argc);
        }
        Instr::CallRemote { function, argc } => {
            w.u8(op::CALL_REMOTE);
            w.str(function.as_str());
            w.u8(*argc);
        }
        Instr::Ret => w.u8(op::RET),
        Instr::MakeList(n) => {
            w.u8(op::MAKE_LIST);
            w.u8(*n);
        }
        Instr::ListGet => w.u8(op::LIST_GET),
        Instr::ListSet => w.u8(op::LIST_SET),
        Instr::ListLen => w.u8(op::LIST_LEN),
        Instr::ListPush => w.u8(op::LIST_PUSH),
        Instr::StrConcat => w.u8(op::STR_CONCAT),
        Instr::StrLen => w.u8(op::STR_LEN),
        Instr::Work(n) => {
            w.u8(op::WORK);
            w.u64(*n);
        }
        Instr::GlobalGet(k) => {
            w.u8(op::GLOBAL_GET);
            w.str(k.as_str());
        }
        Instr::GlobalSet(k) => {
            w.u8(op::GLOBAL_SET);
            w.str(k.as_str());
        }
    }
}

/// Decodes one instruction.
pub fn read_instr(r: &mut Reader) -> Result<Instr, DecodeError> {
    Ok(match r.u8()? {
        op::PUSH => Instr::Push(read_value(r)?),
        op::POP => Instr::Pop,
        op::DUP => Instr::Dup,
        op::SWAP => Instr::Swap,
        op::LOAD_ARG => Instr::LoadArg(r.u8()?),
        op::LOAD_LOCAL => Instr::LoadLocal(r.u8()?),
        op::STORE_LOCAL => Instr::StoreLocal(r.u8()?),
        op::ADD => Instr::Add,
        op::SUB => Instr::Sub,
        op::MUL => Instr::Mul,
        op::DIV => Instr::Div,
        op::REM => Instr::Rem,
        op::NEG => Instr::Neg,
        op::NOT => Instr::Not,
        op::AND => Instr::And,
        op::OR => Instr::Or,
        op::EQ => Instr::Eq,
        op::NE => Instr::Ne,
        op::LT => Instr::Lt,
        op::LE => Instr::Le,
        op::GT => Instr::Gt,
        op::GE => Instr::Ge,
        op::JUMP => Instr::Jump(r.u32()?),
        op::JUMP_IF_FALSE => Instr::JumpIfFalse(r.u32()?),
        op::JUMP_IF_TRUE => Instr::JumpIfTrue(r.u32()?),
        op::CALL_DYN => Instr::CallDyn {
            function: r.str()?.into(),
            argc: r.u8()?,
        },
        op::CALL_NATIVE => Instr::CallNative {
            function: r.str()?.into(),
            argc: r.u8()?,
        },
        op::CALL_REMOTE => Instr::CallRemote {
            function: r.str()?.into(),
            argc: r.u8()?,
        },
        op::RET => Instr::Ret,
        op::MAKE_LIST => Instr::MakeList(r.u8()?),
        op::LIST_GET => Instr::ListGet,
        op::LIST_SET => Instr::ListSet,
        op::LIST_LEN => Instr::ListLen,
        op::LIST_PUSH => Instr::ListPush,
        op::STR_CONCAT => Instr::StrConcat,
        op::STR_LEN => Instr::StrLen,
        op::WORK => Instr::Work(r.u64()?),
        op::GLOBAL_GET => Instr::GlobalGet(r.str()?.into()),
        op::GLOBAL_SET => Instr::GlobalSet(r.str()?.into()),
        other => return Err(DecodeError::BadOpcode(other)),
    })
}

// ---- CodeBlock ------------------------------------------------------------

/// Encodes a [`CodeBlock`].
pub fn write_code_block(w: &mut Writer, block: &CodeBlock) {
    w.str(&block.signature().to_string());
    w.u8(block.locals());
    w.u32(block.len() as u32);
    for i in block.instrs() {
        write_instr(w, i);
    }
}

/// Decodes a [`CodeBlock`].
pub fn read_code_block(r: &mut Reader) -> Result<CodeBlock, DecodeError> {
    let sig_str = r.str()?;
    let signature: FunctionSignature = sig_str
        .parse()
        .map_err(|_| DecodeError::BadSignature(sig_str))?;
    let locals = r.u8()?;
    let n = r.read_len()?;
    let mut instrs = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        instrs.push(read_instr(r)?);
    }
    Ok(CodeBlock::new(signature, locals, instrs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_value(v: Value) {
        let mut w = Writer::new();
        write_value(&mut w, &v);
        let mut r = Reader::new(w.finish());
        assert_eq!(read_value(&mut r).expect("decodes"), v);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn value_round_trips() {
        round_trip_value(Value::Unit);
        round_trip_value(Value::Int(-42));
        round_trip_value(Value::Bool(true));
        round_trip_value(Value::str("héllo"));
        round_trip_value(Value::ObjRef(ObjectId::from_raw(99)));
        round_trip_value(Value::List(vec![
            Value::Int(1),
            Value::List(vec![Value::str("nested")]),
            Value::Unit,
        ]));
    }

    #[test]
    fn instr_round_trips() {
        let instrs = vec![
            Instr::Push(Value::Int(7)),
            Instr::LoadArg(2),
            Instr::Jump(13),
            Instr::CallDyn {
                function: "compare".into(),
                argc: 2,
            },
            Instr::CallRemote {
                function: "fetch".into(),
                argc: 1,
            },
            Instr::Work(12345),
            Instr::Ret,
        ];
        for i in instrs {
            let mut w = Writer::new();
            write_instr(&mut w, &i);
            let mut r = Reader::new(w.finish());
            assert_eq!(read_instr(&mut r).expect("decodes"), i);
        }
    }

    #[test]
    fn code_block_round_trips() {
        let block = CodeBlock::new(
            "f(int, str) -> list".parse().expect("signature"),
            3,
            vec![
                Instr::LoadArg(0),
                Instr::LoadArg(1),
                Instr::StrLen,
                Instr::Add,
                Instr::MakeList(1),
                Instr::Ret,
            ],
        );
        let mut w = Writer::new();
        write_code_block(&mut w, &block);
        let mut r = Reader::new(w.finish());
        assert_eq!(read_code_block(&mut r).expect("decodes"), block);
    }

    #[test]
    fn truncated_input_is_eof() {
        let mut w = Writer::new();
        write_value(&mut w, &Value::Int(1));
        let bytes = w.finish();
        let mut r = Reader::new(bytes.slice(0..bytes.len() - 1));
        assert_eq!(read_value(&mut r), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn bad_opcode_and_tag_are_rejected() {
        let mut r = Reader::new(Bytes::from_static(&[0xFF]));
        assert_eq!(read_instr(&mut r), Err(DecodeError::BadOpcode(0xFF)));
        let mut r = Reader::new(Bytes::from_static(&[0xEE]));
        assert_eq!(read_value(&mut r), Err(DecodeError::BadTag(0xEE)));
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut w = Writer::new();
        w.u32(u32::MAX);
        let mut r = Reader::new(w.finish());
        assert!(matches!(r.read_len(), Err(DecodeError::TooLarge(_))));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = Writer::new();
        w.u32(2);
        w.u8(0xC3);
        w.u8(0x28); // invalid UTF-8 sequence
        let mut r = Reader::new(w.finish());
        assert_eq!(r.str(), Err(DecodeError::BadUtf8));
    }
}

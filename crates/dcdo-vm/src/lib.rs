//! Dynamic-code substrate for the DCDO reproduction.
//!
//! Rust cannot safely load arbitrary new native code into a running
//! process, so this crate provides the substitute the reproduction uses for
//! Legion's OS-level dynamic linking: implementation components carry
//! *bytecode* for a small stack machine. The substitution preserves what
//! matters to the DCDO model — behavior that did not exist when the object
//! was first deployed can be authored, serialized
//! ([`ComponentBinary::encode`]), shipped as bytes, incorporated, and then
//! invoked **through one level of indirection** (a [`CallResolver`]; for
//! DCDOs, the DFM in `dcdo-core`).
//!
//! Key pieces:
//!
//! - [`Value`], [`Instr`], [`CodeBlock`] — the bytecode language.
//! - [`FunctionBuilder`] / [`ComponentBuilder`] — assembler APIs for
//!   authoring function bodies and packaging them into components.
//! - [`VmThread`] — a resumable interpreter: threads suspend at remote
//!   outcalls ([`Instr::CallRemote`]) with their full state parked, exactly
//!   the blocked-thread state in which the paper's §3.1 problems strike.
//! - [`CallResolver`] — the indirection point; [`StaticResolver`] is the
//!   frozen table of a monolithic (non-configurable) object.
//! - [`ComponentBinary`] / [`ComponentDescriptor`] — the unit of
//!   incorporation, with a binary object-code format and automatic
//!   structural-dependency analysis.
//! - [`NativeRegistry`] — unchanging host intrinsics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod builder;
pub mod codec;
mod component;
mod decoded;
mod error;
mod instr;
mod interp;
mod native;
mod profile;
mod resolver;
mod store;
mod value;

pub use asm::{assemble, disassemble, AsmError};
pub use builder::{BuildError, FunctionBuilder, Label};
pub use codec::DecodeError;
pub use component::{
    ComponentBinary, ComponentBuilder, ComponentDescriptor, ComponentError, FunctionDecl,
    FunctionMeta,
};
pub use decoded::{
    fusion_default, fusion_stats, reset_fusion_stats, DecodeCacheStats, DecodedCode, FusionStats,
};
pub use error::VmError;
pub use instr::{CodeBlock, CodeValidationError, Instr, OPCODE_COUNT, OPCODE_NAMES};
pub use interp::{OutcallRequest, RunOutcome, ThreadStatus, VmThread, MAX_CALL_DEPTH};
pub use native::{NativeFn, NativeRegistry};
pub use profile::{
    global_vm_profile, record_global_vm_profile, reset_global_vm_profile, FnProfile, FnStats,
    VmProfile,
};
pub use resolver::{
    next_generation, CallOrigin, CallResolver, CallToken, ResolveError, ResolvedCall,
    StaticResolver,
};
pub use store::ValueStore;
pub use value::Value;

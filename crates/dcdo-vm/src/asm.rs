//! The textual component assembly language (`Language::VmAssembly`).
//!
//! Components can be authored as text and assembled at runtime — the
//! "source form" of this reproduction's dynamic code. The same format is
//! produced by [`disassemble`], so components round-trip through text:
//!
//! ```text
//! component "counter-core" id=101 arch=portable
//! static_data 1024
//!
//! export fn incr() -> int {
//!     global_get count
//!     call_dyn step/0
//!     add
//!     dup
//!     global_set count
//!     ret
//! }
//!
//! internal fn step() -> int mandatory {
//!     push 1
//!     ret
//! }
//!
//! depend [incr, self] -> [step]
//! auto_deps
//! ```
//!
//! - `export`/`internal` set visibility; an optional trailing `mandatory` or
//!   `permanent` sets the protection request (§3.2).
//! - Labels are written `name:` on their own line and referenced by jumps.
//! - `depend [f1, self] -> [f2]` declares dependencies; `self` pins to this
//!   component, a raw number pins to another component id, no pin means any
//!   implementation (the four §3.2 types).
//! - `auto_deps` additionally runs structural-dependency analysis.

use std::collections::HashMap;
use std::fmt::Write as _;

use dcdo_types::{
    Architecture, ComponentId, Dependency, DependencyEnd, FunctionSignature, Protection, Visibility,
};

use crate::builder::FunctionBuilder;
use crate::component::{ComponentBinary, ComponentBuilder};
use crate::instr::Instr;
use crate::value::Value;

/// An error while assembling component text, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// The offending line (1-based).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Assembles component text into a [`ComponentBinary`].
///
/// # Examples
///
/// ```
/// let component = dcdo_vm::assemble(
///     "component \"math\" id=1\nexport fn double(int) -> int {\n    load_arg 0\n    push 2\n    mul\n    ret\n}\n",
/// )?;
/// assert_eq!(component.functions().len(), 1);
/// # Ok::<(), dcdo_vm::AsmError>(())
/// ```
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics, unbound labels, or component validation failures.
pub fn assemble(source: &str) -> Result<ComponentBinary, AsmError> {
    let mut lines = source
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l)))
        .filter(|(_, l)| !l.trim().is_empty());

    // Header.
    let (header_line, header) = lines
        .next()
        .ok_or_else(|| err(0, "empty component source"))?;
    let (name, id, arch) = parse_header(header_line, header.trim())?;

    let mut builder = ComponentBuilder::new(id, name);
    if arch != Architecture::Portable {
        builder = builder.impl_type(dcdo_types::ImplementationType::native(arch));
    }
    let mut auto_deps = false;
    let mut deps: Vec<Dependency> = Vec::new();

    while let Some((lineno, raw)) = lines.next() {
        let line = raw.trim();
        if let Some(rest) = line.strip_prefix("static_data ") {
            let bytes: u64 = rest
                .trim()
                .parse()
                .map_err(|_| err(lineno, format!("bad static_data size {rest:?}")))?;
            builder = builder.static_data_size(bytes);
        } else if line == "auto_deps" {
            auto_deps = true;
        } else if let Some(rest) = line.strip_prefix("depend ") {
            deps.push(parse_dependency(lineno, rest.trim(), id)?);
        } else if line.starts_with("export fn ") || line.starts_with("internal fn ") {
            let visibility = if line.starts_with("export") {
                Visibility::Exported
            } else {
                Visibility::Internal
            };
            let rest = line
                .trim_start_matches("export fn ")
                .trim_start_matches("internal fn ");
            let (sig_part, protection) = parse_fn_header(lineno, rest)?;
            let mut body: Vec<(usize, String)> = Vec::new();
            let mut closed = false;
            for (bl, braw) in lines.by_ref() {
                let b = braw.trim();
                if b == "}" {
                    closed = true;
                    break;
                }
                body.push((bl, b.to_owned()));
            }
            if !closed {
                return Err(err(lineno, "unterminated function body (missing '}')"));
            }
            let code = assemble_body(&sig_part, &body)?;
            builder = builder.function(code, visibility, protection);
        } else {
            return Err(err(lineno, format!("unrecognized directive {line:?}")));
        }
    }

    for d in deps {
        builder = builder.dependency(d);
    }
    if auto_deps {
        builder = builder.auto_structural_deps();
    }
    builder
        .build()
        .map_err(|e| err(0, format!("component validation failed: {e}")))
}

fn strip_comment(line: &str) -> &str {
    match line.find(';') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_header(
    lineno: usize,
    line: &str,
) -> Result<(String, ComponentId, Architecture), AsmError> {
    let rest = line
        .strip_prefix("component ")
        .ok_or_else(|| err(lineno, "expected `component \"name\" id=N [arch=...]`"))?
        .trim();
    let (name, rest) = if let Some(stripped) = rest.strip_prefix('"') {
        let close = stripped
            .find('"')
            .ok_or_else(|| err(lineno, "unterminated component name"))?;
        (stripped[..close].to_owned(), stripped[close + 1..].trim())
    } else {
        return Err(err(lineno, "component name must be quoted"));
    };
    let mut id = None;
    let mut arch = Architecture::Portable;
    for part in rest.split_whitespace() {
        if let Some(v) = part.strip_prefix("id=") {
            id =
                Some(ComponentId::from_raw(v.parse().map_err(|_| {
                    err(lineno, format!("bad component id {v:?}"))
                })?));
        } else if let Some(v) = part.strip_prefix("arch=") {
            arch = match v {
                "x86" => Architecture::X86,
                "alpha" => Architecture::Alpha,
                "sparc" => Architecture::Sparc,
                "portable" => Architecture::Portable,
                other => return Err(err(lineno, format!("unknown architecture {other:?}"))),
            };
        } else {
            return Err(err(lineno, format!("unknown header attribute {part:?}")));
        }
    }
    let id = id.ok_or_else(|| err(lineno, "component header needs id=N"))?;
    Ok((name, id, arch))
}

fn parse_fn_header(lineno: usize, rest: &str) -> Result<(String, Protection), AsmError> {
    let rest = rest.trim();
    let body_open = rest
        .strip_suffix('{')
        .ok_or_else(|| err(lineno, "function header must end with '{'"))?
        .trim();
    let (sig, protection) = if let Some(s) = body_open.strip_suffix(" mandatory") {
        (s, Protection::Mandatory)
    } else if let Some(s) = body_open.strip_suffix(" permanent") {
        (s, Protection::Permanent)
    } else {
        (body_open, Protection::FullyDynamic)
    };
    // Validate the signature parses now, for a good error location.
    sig.parse::<FunctionSignature>()
        .map_err(|e| err(lineno, e.to_string()))?;
    Ok((sig.trim().to_owned(), protection))
}

fn parse_dependency(lineno: usize, rest: &str, this: ComponentId) -> Result<Dependency, AsmError> {
    let (lhs, rhs) = rest
        .split_once("->")
        .ok_or_else(|| err(lineno, "expected `depend [f1, pin] -> [f2, pin]`"))?;
    let parse_end = |s: &str| -> Result<DependencyEnd, AsmError> {
        let inner = s
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| err(lineno, format!("dependency end {s:?} must be bracketed")))?;
        match inner.split_once(',') {
            None => Ok(DependencyEnd::any_impl(inner.trim())),
            Some((f, pin)) => {
                let pin = pin.trim();
                let component = if pin == "self" {
                    this
                } else {
                    ComponentId::from_raw(
                        pin.parse()
                            .map_err(|_| err(lineno, format!("bad component pin {pin:?}")))?,
                    )
                };
                Ok(DependencyEnd::in_component(f.trim(), component))
            }
        }
    };
    Ok(Dependency::new(parse_end(lhs)?, parse_end(rhs)?))
}

fn assemble_body(sig: &str, body: &[(usize, String)]) -> Result<crate::CodeBlock, AsmError> {
    let first_line = body.first().map(|(l, _)| *l).unwrap_or(0);
    let mut b = FunctionBuilder::parse(sig).map_err(|e| err(first_line, e.to_string()))?;
    let mut labels: HashMap<String, crate::Label> = HashMap::new();
    // Pre-scan labels so forward references resolve.
    for (_, line) in body {
        if let Some(name) = line.strip_suffix(':') {
            let label = b.new_label();
            if labels.insert(name.trim().to_owned(), label).is_some() {
                return Err(err(first_line, format!("duplicate label {name:?}")));
            }
        }
    }
    let mut max_local: Option<u8> = None;
    let mut declared_locals: u8 = 0;
    for (lineno, line) in body {
        let lineno = *lineno;
        if let Some(name) = line.strip_suffix(':') {
            let label = labels[name.trim()];
            b.bind(label);
            continue;
        }
        let (mnemonic, operand) = match line.split_once(char::is_whitespace) {
            Some((m, o)) => (m, o.trim()),
            None => (line.as_str(), ""),
        };
        let want_u8 = |what: &str| -> Result<u8, AsmError> {
            operand
                .parse()
                .map_err(|_| err(lineno, format!("{mnemonic} needs a small integer {what}")))
        };
        let want_u64 = || -> Result<u64, AsmError> {
            operand
                .parse()
                .map_err(|_| err(lineno, format!("{mnemonic} needs an integer operand")))
        };
        let want_label =
            |labels: &HashMap<String, crate::Label>| -> Result<crate::Label, AsmError> {
                labels
                    .get(operand)
                    .copied()
                    .ok_or_else(|| err(lineno, format!("unknown label {operand:?}")))
            };
        let want_call = || -> Result<(String, u8), AsmError> {
            let (name, argc) = operand
                .rsplit_once('/')
                .ok_or_else(|| err(lineno, format!("{mnemonic} needs `name/argc`")))?;
            let argc = argc
                .parse()
                .map_err(|_| err(lineno, format!("bad argc in {operand:?}")))?;
            Ok((name.to_owned(), argc))
        };
        match mnemonic {
            "push" => {
                let value = parse_value(lineno, operand)?;
                b.push(value);
            }
            "pop" => {
                b.pop();
            }
            "dup" => {
                b.dup();
            }
            "swap" => {
                b.swap();
            }
            "locals" => {
                declared_locals = want_u8("count")?;
                b.locals(declared_locals);
            }
            "load_arg" => {
                b.load_arg(want_u8("index")?);
            }
            "load_local" => {
                let n = want_u8("slot")?;
                max_local = Some(max_local.map_or(n, |m| m.max(n)));
                b.load_local(n);
            }
            "store_local" => {
                let n = want_u8("slot")?;
                max_local = Some(max_local.map_or(n, |m| m.max(n)));
                b.store_local(n);
            }
            "add" => {
                b.add();
            }
            "sub" => {
                b.sub();
            }
            "mul" => {
                b.mul();
            }
            "div" => {
                b.div();
            }
            "rem" => {
                b.rem();
            }
            "neg" => {
                b.neg();
            }
            "not" => {
                b.not();
            }
            "and" => {
                b.instr(Instr::And);
            }
            "or" => {
                b.instr(Instr::Or);
            }
            "eq" => {
                b.eq();
            }
            "ne" => {
                b.ne();
            }
            "lt" => {
                b.lt();
            }
            "le" => {
                b.le();
            }
            "gt" => {
                b.gt();
            }
            "ge" => {
                b.ge();
            }
            "jump" => {
                let l = want_label(&labels)?;
                b.jump(l);
            }
            "jump_if_false" => {
                let l = want_label(&labels)?;
                b.jump_if_false(l);
            }
            "jump_if_true" => {
                let l = want_label(&labels)?;
                b.jump_if_true(l);
            }
            "call_dyn" => {
                let (name, argc) = want_call()?;
                b.call_dyn(&name, argc);
            }
            "call_native" => {
                let (name, argc) = want_call()?;
                b.call_native(&name, argc);
            }
            "call_remote" => {
                let (name, argc) = want_call()?;
                b.call_remote(&name, argc);
            }
            "ret" => {
                b.ret();
            }
            "make_list" => {
                b.make_list(want_u8("arity")?);
            }
            "list_get" => {
                b.instr(Instr::ListGet);
            }
            "list_set" => {
                b.instr(Instr::ListSet);
            }
            "list_len" => {
                b.instr(Instr::ListLen);
            }
            "list_push" => {
                b.instr(Instr::ListPush);
            }
            "str_concat" => {
                b.instr(Instr::StrConcat);
            }
            "str_len" => {
                b.instr(Instr::StrLen);
            }
            "work" => {
                b.work(want_u64()?);
            }
            "global_get" => {
                b.global_get(operand);
            }
            "global_set" => {
                b.global_set(operand);
            }
            other => return Err(err(lineno, format!("unknown mnemonic {other:?}"))),
        }
    }
    if let Some(m) = max_local {
        // Ensure the local count covers every used slot even when the
        // author omitted (or under-declared) `locals` — but never shrink an
        // explicit declaration.
        b.locals(declared_locals.max(m + 1));
    }
    b.build().map_err(|e| err(first_line, e.to_string()))
}

fn parse_value(lineno: usize, operand: &str) -> Result<Value, AsmError> {
    if operand == "unit" {
        return Ok(Value::Unit);
    }
    if operand == "true" {
        return Ok(Value::Bool(true));
    }
    if operand == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(stripped) = operand.strip_prefix('"') {
        let s = stripped
            .strip_suffix('"')
            .ok_or_else(|| err(lineno, "unterminated string literal"))?;
        return Ok(Value::str(s));
    }
    operand
        .parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(lineno, format!("cannot parse push operand {operand:?}")))
}

/// Renders a component back into assembly text. The output re-assembles to
/// an equal component (modulo generated label names and an explicit `locals`
/// directive).
pub fn disassemble(component: &ComponentBinary) -> String {
    let mut out = String::new();
    let arch = component.impl_type().architecture();
    let _ = writeln!(
        out,
        "component \"{}\" id={} arch={arch}",
        component.name(),
        component.id().as_raw(),
    );
    if component.static_data_size() > 0 {
        let _ = writeln!(out, "static_data {}", component.static_data_size());
    }
    for f in component.functions() {
        let _ = writeln!(out);
        let vis = if f.visibility().is_exported() {
            "export"
        } else {
            "internal"
        };
        let prot = match f.protection_request() {
            Protection::FullyDynamic => "",
            Protection::Mandatory => " mandatory",
            Protection::Permanent => " permanent",
        };
        let _ = writeln!(out, "{vis} fn {}{prot} {{", f.signature());
        let code = f.code();
        if code.locals() > 0 {
            let _ = writeln!(out, "    locals {}", code.locals());
        }
        // Collect jump targets to synthesize labels.
        let mut targets: Vec<u32> = code
            .instrs()
            .iter()
            .filter_map(|i| match i {
                Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => Some(*t),
                _ => None,
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let label_of = |t: u32| format!("l{t}");
        for (pc, instr) in code.instrs().iter().enumerate() {
            if targets.contains(&(pc as u32)) {
                let _ = writeln!(out, "  {}:", label_of(pc as u32));
            }
            let text = match instr {
                Instr::Push(Value::Unit) => "push unit".to_owned(),
                Instr::Push(Value::Bool(x)) => format!("push {x}"),
                Instr::Push(Value::Int(n)) => format!("push {n}"),
                Instr::Push(Value::Str(s)) => format!("push \"{s}\""),
                Instr::Push(other) => format!("push {other}"),
                Instr::Pop => "pop".into(),
                Instr::Dup => "dup".into(),
                Instr::Swap => "swap".into(),
                Instr::LoadArg(n) => format!("load_arg {n}"),
                Instr::LoadLocal(n) => format!("load_local {n}"),
                Instr::StoreLocal(n) => format!("store_local {n}"),
                Instr::Add => "add".into(),
                Instr::Sub => "sub".into(),
                Instr::Mul => "mul".into(),
                Instr::Div => "div".into(),
                Instr::Rem => "rem".into(),
                Instr::Neg => "neg".into(),
                Instr::Not => "not".into(),
                Instr::And => "and".into(),
                Instr::Or => "or".into(),
                Instr::Eq => "eq".into(),
                Instr::Ne => "ne".into(),
                Instr::Lt => "lt".into(),
                Instr::Le => "le".into(),
                Instr::Gt => "gt".into(),
                Instr::Ge => "ge".into(),
                Instr::Jump(t) => format!("jump {}", label_of(*t)),
                Instr::JumpIfFalse(t) => format!("jump_if_false {}", label_of(*t)),
                Instr::JumpIfTrue(t) => format!("jump_if_true {}", label_of(*t)),
                Instr::CallDyn { function, argc } => format!("call_dyn {function}/{argc}"),
                Instr::CallNative { function, argc } => {
                    format!("call_native {function}/{argc}")
                }
                Instr::CallRemote { function, argc } => {
                    format!("call_remote {function}/{argc}")
                }
                Instr::Ret => "ret".into(),
                Instr::MakeList(n) => format!("make_list {n}"),
                Instr::ListGet => "list_get".into(),
                Instr::ListSet => "list_set".into(),
                Instr::ListLen => "list_len".into(),
                Instr::ListPush => "list_push".into(),
                Instr::StrConcat => "str_concat".into(),
                Instr::StrLen => "str_len".into(),
                Instr::Work(n) => format!("work {n}"),
                Instr::GlobalGet(k) => format!("global_get {k}"),
                Instr::GlobalSet(k) => format!("global_set {k}"),
            };
            let _ = writeln!(out, "    {text}");
        }
        let _ = writeln!(out, "}}");
    }
    for dep in component.dependencies() {
        let end = |e: &DependencyEnd| match e.component() {
            Some(c) if c == component.id() => format!("[{}, self]", e.function()),
            Some(c) => format!("[{}, {}]", e.function(), c.as_raw()),
            None => format!("[{}]", e.function()),
        };
        let _ = writeln!(out, "depend {} -> {}", end(dep.source()), end(dep.target()));
    }
    out
}

#[cfg(test)]
mod tests {
    use dcdo_types::{FunctionName, Visibility};

    use super::*;
    use crate::{CallOrigin, NativeRegistry, RunOutcome, StaticResolver, ValueStore, VmThread};

    const COUNTER: &str = r#"
component "counter" id=7 arch=portable
static_data 512

export fn incr() -> int {
    global_get count
    dup
    push unit
    eq
    jump_if_false has
    pop
    push 0
  has:
    call_dyn step/0
    add
    dup
    global_set count
    ret
}

internal fn step() -> int mandatory {
    push 1
    ret
}

depend [incr, self] -> [step]
"#;

    #[test]
    fn assembles_and_runs() {
        let component = assemble(COUNTER).expect("assembles");
        assert_eq!(component.id(), ComponentId::from_raw(7));
        assert_eq!(component.name(), "counter");
        assert_eq!(component.static_data_size(), 512);
        assert_eq!(component.functions().len(), 2);
        let step = component
            .function(&FunctionName::new("step"))
            .expect("step");
        assert_eq!(step.visibility(), Visibility::Internal);
        assert_eq!(step.protection_request(), Protection::Mandatory);
        assert_eq!(component.dependencies().len(), 1);

        let mut r = StaticResolver::new();
        for f in component.functions() {
            r.insert(f.code().clone(), component.id());
        }
        let mut g = ValueStore::new();
        for expected in 1..=3 {
            let mut t = VmThread::call(&mut r, &"incr".into(), vec![], CallOrigin::External)
                .expect("starts");
            let out = t.run(&mut r, &NativeRegistry::standard(), &mut g, 10_000);
            assert_eq!(out, RunOutcome::Completed(Value::Int(expected)));
        }
    }

    #[test]
    fn disassemble_round_trips() {
        let component = assemble(COUNTER).expect("assembles");
        let text = disassemble(&component);
        let again = assemble(&text).expect("reassembles");
        assert_eq!(again, component);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = r#"
component "c" id=1 ; the header
; a full-line comment

export fn f() -> int {
    push 5 ; five
    ret
}
"#;
        let component = assemble(src).expect("assembles");
        assert_eq!(component.functions().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "component \"c\" id=1\nexport fn f() -> int {\n    frobnicate\n    ret\n}\n";
        let e = assemble(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));

        let e = assemble("component \"c\"\n").unwrap_err();
        assert!(e.message.contains("id=N"));

        let e = assemble("component \"c\" id=1\nexport fn f() -> int {\n    push 1\n").unwrap_err();
        assert!(e.message.contains("unterminated"));

        let e = assemble("component \"c\" id=1\nexport fn nope {\n}\n").unwrap_err();
        assert!(e.message.contains("invalid signature"));
    }

    #[test]
    fn unknown_labels_are_reported() {
        let src = "component \"c\" id=1\nexport fn f() -> unit {\n    jump nowhere\n}\n";
        let e = assemble(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn dependency_pins_parse() {
        let src = r#"
component "c" id=5
export fn f() -> unit {
    ret
}
depend [f, self] -> [g, 9]
depend [f] -> [g]
"#;
        let component = assemble(src).expect("assembles");
        let deps = component.dependencies();
        assert_eq!(deps.len(), 2);
        assert_eq!(deps[0].source().component(), Some(ComponentId::from_raw(5)));
        assert_eq!(deps[0].target().component(), Some(ComponentId::from_raw(9)));
        assert_eq!(deps[1].dependency_type(), dcdo_types::DependencyType::D);
    }

    #[test]
    fn native_arch_header() {
        let src = "component \"n\" id=2 arch=alpha\nexport fn f() -> unit {\n    ret\n}\n";
        let component = assemble(src).expect("assembles");
        assert_eq!(component.impl_type().architecture(), Architecture::Alpha);
        let text = disassemble(&component);
        assert!(text.contains("arch=alpha"));
        assert_eq!(assemble(&text).expect("round trip"), component);
    }

    #[test]
    fn string_and_bool_literals() {
        let src = r#"
component "lits" id=3
export fn greet() -> str {
    push "hi "
    push "there"
    str_concat
    ret
}
export fn yes() -> bool {
    push true
    ret
}
"#;
        let component = assemble(src).expect("assembles");
        let mut r = StaticResolver::new();
        for f in component.functions() {
            r.insert(f.code().clone(), component.id());
        }
        let mut g = ValueStore::new();
        let mut t =
            VmThread::call(&mut r, &"greet".into(), vec![], CallOrigin::External).expect("starts");
        assert_eq!(
            t.run(&mut r, &NativeRegistry::standard(), &mut g, 1000),
            RunOutcome::Completed(Value::str("hi there"))
        );
    }
}

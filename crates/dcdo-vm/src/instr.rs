//! The bytecode instruction set and code blocks.
//!
//! The instruction set is a small stack machine. The two call instructions
//! are where dynamic configurability bites:
//!
//! - [`Instr::CallDyn`] calls another dynamic function *in the same object*
//!   through the object's call resolver — for a DCDO that is the DFM, the
//!   single level of indirection the paper builds on. Resolution happens at
//!   call time, so a function disabled or removed since the code was built
//!   produces a runtime [`MissingFunction`](crate::VmError::MissingFunction)
//!   fault, exactly the missing-internal-function problem of §3.1.
//! - [`Instr::CallRemote`] invokes an exported function on *another object*;
//!   the thread suspends (its full VM state is parked) until the reply
//!   arrives — the blocked-on-an-outcall state in which the disappearing
//!   function/component problems strike.

use std::fmt;
use std::sync::Arc;

use dcdo_types::{FunctionName, FunctionSignature};
use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A bytecode instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Push a constant.
    Push(Value),
    /// Discard the top of the stack.
    Pop,
    /// Duplicate the top of the stack.
    Dup,
    /// Swap the two topmost values.
    Swap,
    /// Push argument `n` of the current call.
    LoadArg(u8),
    /// Push local variable `n`.
    LoadLocal(u8),
    /// Pop into local variable `n`.
    StoreLocal(u8),
    /// Integer addition: pops `b`, `a`; pushes `a + b`.
    Add,
    /// Integer subtraction: pops `b`, `a`; pushes `a - b`.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division. Faults on division by zero.
    Div,
    /// Integer remainder. Faults on division by zero.
    Rem,
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Equality on any two values; pushes a boolean.
    Eq,
    /// Inequality.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop a boolean; jump if it is `false`.
    JumpIfFalse(u32),
    /// Pop a boolean; jump if it is `true`.
    JumpIfTrue(u32),
    /// Call a dynamic function in the same object through the call resolver
    /// (the DFM, for a DCDO). Pops `argc` arguments (last on top).
    CallDyn {
        /// The dynamic function to call.
        function: FunctionName,
        /// Number of arguments popped from the stack.
        argc: u8,
    },
    /// Call a host-provided native intrinsic. Pops `argc` arguments.
    CallNative {
        /// The intrinsic name.
        function: FunctionName,
        /// Number of arguments popped from the stack.
        argc: u8,
    },
    /// Call an exported function on another object. Pops `argc` arguments,
    /// then the target object reference. Suspends the thread.
    CallRemote {
        /// The exported function to invoke on the target.
        function: FunctionName,
        /// Number of arguments popped from the stack.
        argc: u8,
    },
    /// Return from the current function with the top of the stack (or unit
    /// if the stack is empty).
    Ret,
    /// Pop `n` values and push them as a list (bottom-most popped first).
    MakeList(u8),
    /// Pops index and list; pushes `list[index]`. Faults if out of range.
    ListGet,
    /// Pops value, index, and list; pushes the updated list.
    ListSet,
    /// Pops a list; pushes its length.
    ListLen,
    /// Pops value and list; pushes the list with the value appended.
    ListPush,
    /// Pops two strings; pushes their concatenation.
    StrConcat,
    /// Pops a string; pushes its length.
    StrLen,
    /// Charge `n` nanoseconds of simulated compute time.
    Work(u64),
    /// Push the value of the named persistent state slot (unit if absent).
    GlobalGet(FunctionName),
    /// Pop a value into the named persistent state slot.
    GlobalSet(FunctionName),
}

/// Number of distinct opcodes ([`Instr`] variants) — the length of the
/// per-opcode aggregate array kept by the profiling hook.
pub const OPCODE_COUNT: usize = 39;

/// Stable opcode names, indexed by [`Instr::opcode`].
pub const OPCODE_NAMES: [&str; OPCODE_COUNT] = [
    "push",
    "pop",
    "dup",
    "swap",
    "load_arg",
    "load_local",
    "store_local",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "not",
    "and",
    "or",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "jump",
    "jump_if_false",
    "jump_if_true",
    "call_dyn",
    "call_native",
    "call_remote",
    "ret",
    "make_list",
    "list_get",
    "list_set",
    "list_len",
    "list_push",
    "str_concat",
    "str_len",
    "work",
    "global_get",
    "global_set",
];

impl Instr {
    /// A dense opcode index in declaration order, `0..OPCODE_COUNT`.
    ///
    /// Stable across builds (it follows the declaration order above), so the
    /// profiler's per-opcode aggregates are comparable between runs.
    pub const fn opcode(&self) -> usize {
        match self {
            Instr::Push(_) => 0,
            Instr::Pop => 1,
            Instr::Dup => 2,
            Instr::Swap => 3,
            Instr::LoadArg(_) => 4,
            Instr::LoadLocal(_) => 5,
            Instr::StoreLocal(_) => 6,
            Instr::Add => 7,
            Instr::Sub => 8,
            Instr::Mul => 9,
            Instr::Div => 10,
            Instr::Rem => 11,
            Instr::Neg => 12,
            Instr::Not => 13,
            Instr::And => 14,
            Instr::Or => 15,
            Instr::Eq => 16,
            Instr::Ne => 17,
            Instr::Lt => 18,
            Instr::Le => 19,
            Instr::Gt => 20,
            Instr::Ge => 21,
            Instr::Jump(_) => 22,
            Instr::JumpIfFalse(_) => 23,
            Instr::JumpIfTrue(_) => 24,
            Instr::CallDyn { .. } => 25,
            Instr::CallNative { .. } => 26,
            Instr::CallRemote { .. } => 27,
            Instr::Ret => 28,
            Instr::MakeList(_) => 29,
            Instr::ListGet => 30,
            Instr::ListSet => 31,
            Instr::ListLen => 32,
            Instr::ListPush => 33,
            Instr::StrConcat => 34,
            Instr::StrLen => 35,
            Instr::Work(_) => 36,
            Instr::GlobalGet(_) => 37,
            Instr::GlobalSet(_) => 38,
        }
    }

    /// The stable short name of this instruction's opcode.
    pub const fn opcode_name(&self) -> &'static str {
        OPCODE_NAMES[self.opcode()]
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::CallDyn { function, argc } => write!(f, "call_dyn {function}/{argc}"),
            Instr::CallNative { function, argc } => write!(f, "call_native {function}/{argc}"),
            Instr::CallRemote { function, argc } => write!(f, "call_remote {function}/{argc}"),
            Instr::Push(v) => write!(f, "push {v}"),
            Instr::GlobalGet(k) => write!(f, "global_get {k}"),
            Instr::GlobalSet(k) => write!(f, "global_set {k}"),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

/// The compiled body of one dynamic-function implementation.
///
/// A code block records its declared signature (checked at call
/// boundaries), the number of local-variable slots, and the instructions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeBlock {
    signature: FunctionSignature,
    locals: u8,
    instrs: Arc<[Instr]>,
}

impl CodeBlock {
    /// Creates a code block.
    pub fn new(signature: FunctionSignature, locals: u8, instrs: Vec<Instr>) -> Self {
        CodeBlock {
            signature,
            locals,
            instrs: instrs.into(),
        }
    }

    /// The declared signature of the function this block implements.
    pub fn signature(&self) -> &FunctionSignature {
        &self.signature
    }

    /// The number of local-variable slots the block uses.
    pub fn locals(&self) -> u8 {
        self.locals
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Returns the number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the block has no instructions (it then implicitly
    /// returns unit).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Names of dynamic functions this block calls via [`Instr::CallDyn`] —
    /// the raw material for automatic structural-dependency analysis
    /// (§3.2 suggests structural dependencies "could be automated via static
    /// analysis of source code").
    pub fn dynamic_callees(&self) -> Vec<FunctionName> {
        let mut out: Vec<FunctionName> = self
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::CallDyn { function, .. } => Some(function.clone()),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Validates internal consistency: all jump targets in range, local
    /// slots within the declared count, and argument loads within the
    /// declared arity.
    pub fn validate(&self) -> Result<(), CodeValidationError> {
        let len = self.instrs.len() as u32;
        let arity = self.signature.params().len() as u8;
        for (pc, instr) in self.instrs.iter().enumerate() {
            match *instr {
                Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) if t >= len => {
                    return Err(CodeValidationError::JumpOutOfRange { pc, target: t });
                }
                Instr::LoadArg(n) if n >= arity => {
                    return Err(CodeValidationError::ArgOutOfRange { pc, arg: n, arity });
                }
                Instr::LoadLocal(n) | Instr::StoreLocal(n) if n >= self.locals => {
                    return Err(CodeValidationError::LocalOutOfRange {
                        pc,
                        local: n,
                        locals: self.locals,
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// Error returned by [`CodeBlock::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeValidationError {
    /// A jump targets an instruction index outside the block.
    JumpOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// A `LoadArg` names an argument beyond the declared arity.
    ArgOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The argument index loaded.
        arg: u8,
        /// The declared arity.
        arity: u8,
    },
    /// A local access names a slot beyond the declared local count.
    LocalOutOfRange {
        /// Offending instruction index.
        pc: usize,
        /// The local slot accessed.
        local: u8,
        /// The declared local count.
        locals: u8,
    },
}

impl fmt::Display for CodeValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeValidationError::JumpOutOfRange { pc, target } => {
                write!(f, "instruction {pc}: jump target {target} out of range")
            }
            CodeValidationError::ArgOutOfRange { pc, arg, arity } => {
                write!(f, "instruction {pc}: argument {arg} beyond arity {arity}")
            }
            CodeValidationError::LocalOutOfRange { pc, local, locals } => {
                write!(f, "instruction {pc}: local {local} beyond {locals} slots")
            }
        }
    }
}

impl std::error::Error for CodeValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(s: &str) -> FunctionSignature {
        s.parse().expect("valid signature")
    }

    #[test]
    fn dynamic_callees_are_deduplicated_and_sorted() {
        let block = CodeBlock::new(
            sig("f() -> unit"),
            0,
            vec![
                Instr::CallDyn {
                    function: "zeta".into(),
                    argc: 0,
                },
                Instr::Pop,
                Instr::CallDyn {
                    function: "alpha".into(),
                    argc: 0,
                },
                Instr::Pop,
                Instr::CallDyn {
                    function: "zeta".into(),
                    argc: 0,
                },
                Instr::Ret,
            ],
        );
        let callees: Vec<String> = block
            .dynamic_callees()
            .iter()
            .map(|f| f.as_str().to_owned())
            .collect();
        assert_eq!(callees, vec!["alpha", "zeta"]);
    }

    #[test]
    fn validate_accepts_well_formed_code() {
        let block = CodeBlock::new(
            sig("inc(int) -> int"),
            1,
            vec![
                Instr::LoadArg(0),
                Instr::Push(Value::Int(1)),
                Instr::Add,
                Instr::StoreLocal(0),
                Instr::LoadLocal(0),
                Instr::Ret,
            ],
        );
        assert_eq!(block.validate(), Ok(()));
        assert_eq!(block.len(), 6);
        assert!(!block.is_empty());
    }

    #[test]
    fn validate_rejects_bad_jump() {
        let block = CodeBlock::new(sig("f() -> unit"), 0, vec![Instr::Jump(5)]);
        assert!(matches!(
            block.validate(),
            Err(CodeValidationError::JumpOutOfRange { pc: 0, target: 5 })
        ));
    }

    #[test]
    fn validate_rejects_bad_arg_and_local() {
        let block = CodeBlock::new(sig("f(int) -> int"), 1, vec![Instr::LoadArg(1)]);
        assert!(matches!(
            block.validate(),
            Err(CodeValidationError::ArgOutOfRange {
                arg: 1,
                arity: 1,
                ..
            })
        ));
        let block = CodeBlock::new(sig("f() -> unit"), 1, vec![Instr::StoreLocal(2)]);
        assert!(matches!(
            block.validate(),
            Err(CodeValidationError::LocalOutOfRange {
                local: 2,
                locals: 1,
                ..
            })
        ));
    }

    #[test]
    fn display_of_calls_shows_arity() {
        let i = Instr::CallDyn {
            function: "compare".into(),
            argc: 2,
        };
        assert_eq!(i.to_string(), "call_dyn compare/2");
    }

    #[test]
    fn validation_errors_display() {
        let e = CodeValidationError::JumpOutOfRange { pc: 3, target: 9 };
        assert!(e.to_string().contains("jump target 9"));
    }
}

//! Opt-in VM cost attribution.
//!
//! A [`VmThread`](crate::VmThread) can carry a [`ThreadProfile`]: per-function
//! call / instruction / `Work`-nanosecond counters plus a per-opcode
//! aggregate. Profiling is off by default and costs **one predicted branch
//! per retired instruction** when disabled (`Option::None` check); enabled,
//! it is three array increments per instruction with no allocation on the
//! hot path (names are interned once per function).
//!
//! The fuel cost of a function equals its instruction count — the fuel loop
//! charges exactly one unit per retired instruction — so `instructions`
//! doubles as the fuel attribution the profiler reports.

use std::sync::{Mutex, OnceLock};

use dcdo_types::{FunctionInterner, FunctionName};

use crate::instr::OPCODE_COUNT;

fn global_aggregate() -> &'static Mutex<VmProfile> {
    static GLOBAL: OnceLock<Mutex<VmProfile>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(VmProfile::new()))
}

/// Folds `profile` into the process-wide VM profile aggregate.
///
/// The aggregate exists for offline inspection tooling (`dcdo-inspect vm`)
/// that wants per-opcode totals across every profiled thread in a run
/// without threading a collector through the runtime. Hosts that emit
/// per-object profiles (the legion object runtime) record here as they
/// finish each thread.
pub fn record_global_vm_profile(profile: &VmProfile) {
    global_aggregate()
        .lock()
        .expect("vm profile aggregate poisoned")
        .merge(profile);
}

/// A snapshot of the process-wide VM profile aggregate.
pub fn global_vm_profile() -> VmProfile {
    global_aggregate()
        .lock()
        .expect("vm profile aggregate poisoned")
        .clone()
}

/// Clears the process-wide VM profile aggregate (start of a measured run).
pub fn reset_global_vm_profile() {
    *global_aggregate()
        .lock()
        .expect("vm profile aggregate poisoned") = VmProfile::new();
}

/// Per-function counters inside a [`ThreadProfile`] / [`VmProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnStats {
    /// Times the function was entered.
    pub calls: u64,
    /// Instructions retired while the function was the innermost frame
    /// (equal to the fuel it consumed).
    pub instructions: u64,
    /// Simulated nanoseconds charged by `Work` instructions inside it.
    pub work_nanos: u64,
}

impl FnStats {
    fn merge(&mut self, other: &FnStats) {
        self.calls += other.calls;
        self.instructions += other.instructions;
        self.work_nanos += other.work_nanos;
    }
}

/// Live profiling state attached to one running thread.
///
/// Maintains a shadow stack of interned function ids parallel to the
/// thread's call frames, so each retired instruction is attributed to the
/// innermost function without touching the frame itself.
#[derive(Debug)]
pub struct ThreadProfile {
    interner: FunctionInterner,
    stats: Vec<FnStats>,
    shadow: Vec<u32>,
    opcodes: [u64; OPCODE_COUNT],
}

impl Default for ThreadProfile {
    fn default() -> Self {
        ThreadProfile {
            interner: FunctionInterner::default(),
            stats: Vec::new(),
            shadow: Vec::new(),
            opcodes: [0; OPCODE_COUNT],
        }
    }
}

impl ThreadProfile {
    /// Records entry into `function`: interns the name, pushes the shadow
    /// frame, and counts the call.
    pub(crate) fn enter(&mut self, function: &FunctionName) {
        let id = self.interner.intern(function);
        let index = id.index();
        if index >= self.stats.len() {
            self.stats.resize(index + 1, FnStats::default());
        }
        self.stats[index].calls += 1;
        self.shadow.push(index as u32);
    }

    /// Records exit from the innermost function.
    pub(crate) fn exit(&mut self) {
        self.shadow.pop();
    }

    /// Attributes one retired instruction (opcode `opcode`, charging
    /// `work_nanos` of simulated compute) to the innermost function.
    #[inline]
    pub(crate) fn instruction(&mut self, opcode: usize, work_nanos: u64) {
        self.opcodes[opcode] += 1;
        if let Some(&top) = self.shadow.last() {
            let s = &mut self.stats[top as usize];
            s.instructions += 1;
            s.work_nanos += work_nanos;
        }
    }

    /// Freezes the counters into a report.
    pub fn snapshot(&self) -> VmProfile {
        let functions = self
            .stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.calls > 0 || s.instructions > 0)
            .map(|(i, s)| FnProfile {
                name: self
                    .interner
                    .name(dcdo_types::FunctionId::from_index(i))
                    .expect("interned id")
                    .clone(),
                stats: *s,
            })
            .collect();
        VmProfile {
            functions,
            opcodes: self.opcodes,
        }
    }
}

/// Per-function cost inside a [`VmProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnProfile {
    /// The function's name.
    pub name: FunctionName,
    /// Its counters.
    pub stats: FnStats,
}

/// A frozen VM cost report: per-function counters plus the per-opcode
/// aggregate, for one thread or merged across many.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmProfile {
    /// Per-function costs, in first-entered order (deterministic).
    pub functions: Vec<FnProfile>,
    /// Retired-instruction count per opcode, indexed by
    /// [`Instr::opcode`](crate::Instr::opcode).
    pub opcodes: [u64; OPCODE_COUNT],
}

impl Default for VmProfile {
    fn default() -> Self {
        VmProfile::new()
    }
}

impl VmProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        VmProfile {
            functions: Vec::new(),
            opcodes: [0; OPCODE_COUNT],
        }
    }

    /// Total instructions retired across all opcodes.
    pub fn total_instructions(&self) -> u64 {
        self.opcodes.iter().sum()
    }

    /// Folds `other` into `self`, matching functions by name (appended in
    /// `other`'s order when new — still deterministic).
    pub fn merge(&mut self, other: &VmProfile) {
        for f in &other.functions {
            match self.functions.iter_mut().find(|mine| mine.name == f.name) {
                Some(mine) => mine.stats.merge(&f.stats),
                None => self.functions.push(f.clone()),
            }
        }
        for (mine, theirs) in self.opcodes.iter_mut().zip(other.opcodes.iter()) {
            *mine += theirs;
        }
    }

    /// The stats recorded for `name`, if the function was ever entered.
    pub fn function(&self, name: &str) -> Option<&FnStats> {
        self.functions
            .iter()
            .find(|f| f.name.as_str() == name)
            .map(|f| &f.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_instruction_exit_attribute_to_innermost() {
        let mut p = ThreadProfile::default();
        p.enter(&"outer".into());
        p.instruction(0, 0);
        p.enter(&"inner".into());
        p.instruction(36, 50);
        p.instruction(28, 0);
        p.exit();
        p.instruction(28, 0);
        p.exit();
        let snap = p.snapshot();
        let outer = snap.function("outer").expect("outer profiled");
        assert_eq!(
            (outer.calls, outer.instructions, outer.work_nanos),
            (1, 2, 0)
        );
        let inner = snap.function("inner").expect("inner profiled");
        assert_eq!(
            (inner.calls, inner.instructions, inner.work_nanos),
            (1, 2, 50)
        );
        assert_eq!(snap.opcodes[0], 1);
        assert_eq!(snap.opcodes[36], 1);
        assert_eq!(snap.opcodes[28], 2);
        assert_eq!(snap.total_instructions(), 4);
    }

    #[test]
    fn merge_sums_by_name_and_keeps_order() {
        let mut a = ThreadProfile::default();
        a.enter(&"f".into());
        a.instruction(0, 10);
        a.exit();
        let mut b = ThreadProfile::default();
        b.enter(&"f".into());
        b.instruction(0, 5);
        b.enter(&"g".into());
        b.instruction(7, 0);
        b.exit();
        b.exit();
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.functions.len(), 2);
        assert_eq!(merged.functions[0].name.as_str(), "f");
        let f = merged.function("f").expect("f");
        assert_eq!((f.calls, f.instructions, f.work_nanos), (2, 2, 15));
        assert_eq!(merged.function("g").expect("g").calls, 1);
        assert_eq!(merged.opcodes[0], 2);
        assert_eq!(merged.opcodes[7], 1);
    }
}

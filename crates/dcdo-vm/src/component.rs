//! Implementation components (§2, §2.3).
//!
//! A component packages a set of dynamic-function implementations, internal
//! metadata (visibility and requested protection per function, declared
//! dependencies), and an implementation type. Components are the unit of
//! incorporation: a DCDO grows and shrinks its implementation by adding and
//! removing whole components.
//!
//! The serialized form ([`ComponentBinary::encode`]) is what ICOs store and
//! what travels over the network; [`ComponentBinary::size_bytes`] includes a
//! declared static-data size so workloads can model the hundreds-of-
//! kilobytes native components of the paper while the actual bytecode stays
//! small.

use std::collections::BTreeSet;
use std::fmt;

use bytes::Bytes;
use dcdo_types::{
    Architecture, ComponentId, Dependency, DependencyEnd, FunctionName, FunctionSignature,
    ImplementationType, Language, ObjectCodeFormat, Protection, Visibility,
};
use serde::{Deserialize, Serialize};

use crate::builder::{BuildError, FunctionBuilder};
use crate::codec::{self, DecodeError, Reader, Writer, FORMAT_VERSION, MAGIC};
use crate::instr::CodeBlock;

/// One function implementation inside a component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionDecl {
    code: CodeBlock,
    visibility: Visibility,
    protection_request: Protection,
}

impl FunctionDecl {
    /// Creates a declaration.
    pub fn new(code: CodeBlock, visibility: Visibility, protection_request: Protection) -> Self {
        FunctionDecl {
            code,
            visibility,
            protection_request,
        }
    }

    /// The implementation code.
    pub fn code(&self) -> &CodeBlock {
        &self.code
    }

    /// The function name (from the code's signature).
    pub fn name(&self) -> &FunctionName {
        self.code.signature().name()
    }

    /// The declared signature.
    pub fn signature(&self) -> &FunctionSignature {
        self.code.signature()
    }

    /// Exported or internal.
    pub fn visibility(&self) -> Visibility {
        self.visibility
    }

    /// The protection the component requests for this function wherever it
    /// is incorporated (§3.2: "programmers can mark a dynamic function as
    /// mandatory (or permanent) within a descriptor that is maintained with
    /// the component itself").
    pub fn protection_request(&self) -> Protection {
        self.protection_request
    }
}

/// Metadata-only view of one function in a component descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionMeta {
    /// The declared signature.
    pub signature: FunctionSignature,
    /// Exported or internal.
    pub visibility: Visibility,
    /// Requested protection.
    pub protection_request: Protection,
}

/// The descriptor of a component: everything about it except the code.
///
/// This is what a DCDO Manager inspects when configuring DFM descriptors and
/// what an ICO serves to metadata queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentDescriptor {
    /// The component's stable logical identity.
    pub id: ComponentId,
    /// Human-readable name, e.g. `"sorting-v2"`.
    pub name: String,
    /// Architecture / format / language characteristics.
    pub impl_type: ImplementationType,
    /// Per-function metadata.
    pub functions: Vec<FunctionMeta>,
    /// Dependencies declared with the component.
    pub dependencies: Vec<Dependency>,
    /// Total size of the encoded component, in bytes.
    pub size_bytes: u64,
}

impl ComponentDescriptor {
    /// Looks up the metadata for `function`, if the component implements it.
    pub fn function(&self, function: &FunctionName) -> Option<&FunctionMeta> {
        self.functions
            .iter()
            .find(|f| f.signature.name() == function)
    }

    /// Names of all functions the component implements.
    pub fn function_names(&self) -> Vec<FunctionName> {
        self.functions
            .iter()
            .map(|f| f.signature.name().clone())
            .collect()
    }
}

/// Validation failures for a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentError {
    /// Two declarations share a function name.
    DuplicateFunction(FunctionName),
    /// A code block failed validation.
    InvalidCode {
        /// The offending function.
        function: FunctionName,
        /// Why its code is invalid.
        reason: String,
    },
    /// A declared dependency's source names a function the component does
    /// not implement.
    DanglingDependencySource(FunctionName),
}

impl fmt::Display for ComponentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentError::DuplicateFunction(name) => {
                write!(f, "component declares function {name} more than once")
            }
            ComponentError::InvalidCode { function, reason } => {
                write!(f, "invalid code for {function}: {reason}")
            }
            ComponentError::DanglingDependencySource(name) => write!(
                f,
                "dependency source {name} is not implemented by this component"
            ),
        }
    }
}

impl std::error::Error for ComponentError {}

/// A complete implementation component: descriptor metadata plus code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentBinary {
    id: ComponentId,
    name: String,
    impl_type: ImplementationType,
    functions: Vec<FunctionDecl>,
    dependencies: Vec<Dependency>,
    static_data_size: u64,
    /// Length of [`ComponentBinary::encode`]'s output, computed once at
    /// construction. `wire_size` is consulted on every simulated send of a
    /// component-bearing message, so [`ComponentBinary::size_bytes`] must
    /// not re-encode per call.
    encoded_len: u64,
}

impl ComponentBinary {
    /// The component's stable logical identity.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Architecture / format / language characteristics.
    pub fn impl_type(&self) -> ImplementationType {
        self.impl_type
    }

    /// The function implementations.
    pub fn functions(&self) -> &[FunctionDecl] {
        &self.functions
    }

    /// Looks up a function implementation by name.
    pub fn function(&self, name: &FunctionName) -> Option<&FunctionDecl> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// Dependencies declared with the component (manually via the builder
    /// plus any produced by [`ComponentBuilder::auto_structural_deps`]).
    pub fn dependencies(&self) -> &[Dependency] {
        &self.dependencies
    }

    /// The declared static-data padding (models native code/data bulk).
    pub fn static_data_size(&self) -> u64 {
        self.static_data_size
    }

    /// Total transferable size: encoded metadata + code + static data.
    ///
    /// The encoded length is cached at construction; this is a constant-time
    /// accessor, safe to call from per-message `wire_size` hooks.
    pub fn size_bytes(&self) -> u64 {
        self.encoded_len + self.static_data_size
    }

    /// Returns the metadata-only descriptor.
    pub fn descriptor(&self) -> ComponentDescriptor {
        ComponentDescriptor {
            id: self.id,
            name: self.name.clone(),
            impl_type: self.impl_type,
            functions: self
                .functions
                .iter()
                .map(|f| FunctionMeta {
                    signature: f.signature().clone(),
                    visibility: f.visibility(),
                    protection_request: f.protection_request(),
                })
                .collect(),
            dependencies: self.dependencies.clone(),
            size_bytes: self.size_bytes(),
        }
    }

    /// Computes Type A structural dependencies by static analysis of the
    /// bytecode: for every implementation `[F, self]` that contains a
    /// `CallDyn` to `G`, emit `[F, self] -> [G]` (§3.2: "creating structural
    /// dependencies could be automated via static analysis").
    pub fn analyze_structural_deps(&self) -> Vec<Dependency> {
        let mut out = Vec::new();
        for decl in &self.functions {
            for callee in decl.code().dynamic_callees() {
                out.push(Dependency::new(
                    DependencyEnd::in_component(decl.name().clone(), self.id),
                    DependencyEnd::any_impl(callee),
                ));
            }
        }
        out
    }

    /// Validates the component: unique function names, valid code, and
    /// dependency sources implemented here.
    pub fn validate(&self) -> Result<(), ComponentError> {
        // Name lookups go through `&str` so the happy path allocates
        // nothing: `FunctionName` is only cloned (a refcount bump) when
        // building an error.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for decl in &self.functions {
            if !seen.insert(decl.name().as_str()) {
                return Err(ComponentError::DuplicateFunction(decl.name().clone()));
            }
            decl.code()
                .validate()
                .map_err(|e| ComponentError::InvalidCode {
                    function: decl.name().clone(),
                    reason: e.to_string(),
                })?;
        }
        for dep in &self.dependencies {
            // Only pinned-to-self sources can be checked locally.
            if dep.source().component() == Some(self.id)
                && !seen.contains(dep.source().function().as_str())
            {
                return Err(ComponentError::DanglingDependencySource(
                    dep.source().function().clone(),
                ));
            }
        }
        Ok(())
    }

    /// Serializes the component to the `dcdo-bytecode` object-code format.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::new();
        w.u32(MAGIC);
        w.u16(FORMAT_VERSION);
        w.u64(self.id.as_raw());
        w.str(&self.name);
        w.u8(arch_code(self.impl_type.architecture()));
        w.u8(format_code(self.impl_type.format()));
        w.u8(lang_code(self.impl_type.language()));
        w.u64(self.static_data_size);
        w.u32(self.functions.len() as u32);
        for f in &self.functions {
            w.u8(if f.visibility.is_exported() { 1 } else { 0 });
            w.u8(protection_code(f.protection_request));
            codec::write_code_block(&mut w, &f.code);
        }
        w.u32(self.dependencies.len() as u32);
        for d in &self.dependencies {
            write_dep_end(&mut w, d.source());
            write_dep_end(&mut w, d.target());
        }
        w.finish()
    }

    /// Deserializes a component from the `dcdo-bytecode` object-code format.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on malformed input (bad magic, unsupported
    /// version, truncated data, unknown opcodes, invalid signatures).
    pub fn decode(bytes: Bytes) -> Result<Self, DecodeError> {
        let total_len = bytes.len() as u64;
        let mut r = Reader::new(bytes);
        let magic = r.u32()?;
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = r.u16()?;
        if version != FORMAT_VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let id = ComponentId::from_raw(r.u64()?);
        let name = r.str()?;
        let architecture = arch_from_code(r.u8()?)?;
        let format = format_from_code(r.u8()?)?;
        let language = lang_from_code(r.u8()?)?;
        let static_data_size = r.u64()?;
        let n_functions = r.read_len()?;
        let mut functions = Vec::with_capacity(n_functions.min(4096));
        for _ in 0..n_functions {
            let visibility = if r.u8()? == 1 {
                Visibility::Exported
            } else {
                Visibility::Internal
            };
            let protection_request = protection_from_code(r.u8()?)?;
            let code = codec::read_code_block(&mut r)?;
            functions.push(FunctionDecl {
                code,
                visibility,
                protection_request,
            });
        }
        let n_deps = r.read_len()?;
        let mut dependencies = Vec::with_capacity(n_deps.min(4096));
        for _ in 0..n_deps {
            let source = read_dep_end(&mut r)?;
            let target = read_dep_end(&mut r)?;
            dependencies.push(Dependency::new(source, target));
        }
        Ok(ComponentBinary {
            id,
            name,
            impl_type: ImplementationType::new(architecture, format, language),
            functions,
            dependencies,
            static_data_size,
            encoded_len: total_len - r.remaining() as u64,
        })
    }
}

fn write_dep_end(w: &mut Writer, end: &DependencyEnd) {
    w.str(end.function().as_str());
    match end.component() {
        Some(c) => {
            w.u8(1);
            w.u64(c.as_raw());
        }
        None => w.u8(0),
    }
}

fn read_dep_end(r: &mut Reader) -> Result<DependencyEnd, DecodeError> {
    let function: FunctionName = r.str()?.into();
    Ok(if r.u8()? == 1 {
        DependencyEnd::in_component(function, ComponentId::from_raw(r.u64()?))
    } else {
        DependencyEnd::any_impl(function)
    })
}

fn arch_code(a: Architecture) -> u8 {
    match a {
        Architecture::X86 => 0,
        Architecture::Alpha => 1,
        Architecture::Sparc => 2,
        Architecture::Portable => 3,
    }
}

fn arch_from_code(c: u8) -> Result<Architecture, DecodeError> {
    Ok(match c {
        0 => Architecture::X86,
        1 => Architecture::Alpha,
        2 => Architecture::Sparc,
        3 => Architecture::Portable,
        other => return Err(DecodeError::BadTag(other)),
    })
}

fn format_code(f: ObjectCodeFormat) -> u8 {
    match f {
        ObjectCodeFormat::ElfSharedObject => 0,
        ObjectCodeFormat::DcdoBytecode => 1,
    }
}

fn format_from_code(c: u8) -> Result<ObjectCodeFormat, DecodeError> {
    Ok(match c {
        0 => ObjectCodeFormat::ElfSharedObject,
        1 => ObjectCodeFormat::DcdoBytecode,
        other => return Err(DecodeError::BadTag(other)),
    })
}

fn lang_code(l: Language) -> u8 {
    match l {
        Language::Cpp => 0,
        Language::VmAssembly => 1,
        Language::Unspecified => 2,
    }
}

fn lang_from_code(c: u8) -> Result<Language, DecodeError> {
    Ok(match c {
        0 => Language::Cpp,
        1 => Language::VmAssembly,
        2 => Language::Unspecified,
        other => return Err(DecodeError::BadTag(other)),
    })
}

fn protection_code(p: Protection) -> u8 {
    match p {
        Protection::FullyDynamic => 0,
        Protection::Mandatory => 1,
        Protection::Permanent => 2,
    }
}

fn protection_from_code(c: u8) -> Result<Protection, DecodeError> {
    Ok(match c {
        0 => Protection::FullyDynamic,
        1 => Protection::Mandatory,
        2 => Protection::Permanent,
        other => return Err(DecodeError::BadTag(other)),
    })
}

/// Builder for [`ComponentBinary`].
///
/// # Examples
///
/// ```
/// use dcdo_types::{ComponentId, Visibility};
/// use dcdo_vm::{ComponentBuilder, FunctionBuilder};
///
/// let comp = ComponentBuilder::new(ComponentId::from_raw(1), "math")
///     .exported_fn(
///         FunctionBuilder::parse("double(int) -> int")?
///             .load_arg(0)
///             .push_int(2)
///             .mul()
///             .ret()
///             .build()?,
///     )
///     .build()?;
/// assert_eq!(comp.functions().len(), 1);
/// assert_eq!(comp.functions()[0].visibility(), Visibility::Exported);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ComponentBuilder {
    id: ComponentId,
    name: String,
    impl_type: ImplementationType,
    functions: Vec<FunctionDecl>,
    dependencies: Vec<Dependency>,
    static_data_size: u64,
    auto_deps: bool,
}

impl ComponentBuilder {
    /// Starts a component with the given identity and name. The
    /// implementation type defaults to portable bytecode.
    pub fn new(id: ComponentId, name: impl Into<String>) -> Self {
        ComponentBuilder {
            id,
            name: name.into(),
            impl_type: ImplementationType::portable_bytecode(),
            functions: Vec::new(),
            dependencies: Vec::new(),
            static_data_size: 0,
            auto_deps: false,
        }
    }

    /// Sets the implementation type.
    pub fn impl_type(mut self, t: ImplementationType) -> Self {
        self.impl_type = t;
        self
    }

    /// Declares the static-data padding in bytes (models native bulk).
    pub fn static_data_size(mut self, bytes: u64) -> Self {
        self.static_data_size = bytes;
        self
    }

    /// Adds a function with explicit visibility and protection request.
    pub fn function(
        mut self,
        code: CodeBlock,
        visibility: Visibility,
        protection: Protection,
    ) -> Self {
        self.functions
            .push(FunctionDecl::new(code, visibility, protection));
        self
    }

    /// Adds an exported, fully dynamic function.
    pub fn exported_fn(self, code: CodeBlock) -> Self {
        self.function(code, Visibility::Exported, Protection::FullyDynamic)
    }

    /// Adds an internal, fully dynamic function.
    pub fn internal_fn(self, code: CodeBlock) -> Self {
        self.function(code, Visibility::Internal, Protection::FullyDynamic)
    }

    /// Declares a dependency to ship with the component.
    pub fn dependency(mut self, dep: Dependency) -> Self {
        self.dependencies.push(dep);
        self
    }

    /// Enables automatic Type A structural-dependency analysis at build
    /// time: every `CallDyn` in the component's code yields a
    /// `[caller, this] -> [callee]` dependency.
    pub fn auto_structural_deps(mut self) -> Self {
        self.auto_deps = true;
        self
    }

    /// Convenience: assembles a function with [`FunctionBuilder`] and adds
    /// it exported.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors.
    pub fn exported(
        self,
        signature: &str,
        f: impl FnOnce(&mut FunctionBuilder) -> &mut FunctionBuilder,
    ) -> Result<Self, BuildError> {
        let mut b = FunctionBuilder::parse(signature)?;
        f(&mut b);
        Ok(self.exported_fn(b.build()?))
    }

    /// Convenience: assembles a function with [`FunctionBuilder`] and adds
    /// it internal.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors.
    pub fn internal(
        self,
        signature: &str,
        f: impl FnOnce(&mut FunctionBuilder) -> &mut FunctionBuilder,
    ) -> Result<Self, BuildError> {
        let mut b = FunctionBuilder::parse(signature)?;
        f(&mut b);
        Ok(self.internal_fn(b.build()?))
    }

    /// Finishes and validates the component.
    ///
    /// # Errors
    ///
    /// Returns a [`ComponentError`] if validation fails.
    pub fn build(self) -> Result<ComponentBinary, ComponentError> {
        let mut component = ComponentBinary {
            id: self.id,
            name: self.name,
            impl_type: self.impl_type,
            functions: self.functions,
            dependencies: self.dependencies,
            static_data_size: self.static_data_size,
            encoded_len: 0,
        };
        if self.auto_deps {
            let mut auto = component.analyze_structural_deps();
            auto.retain(|d| !component.dependencies.contains(d));
            component.dependencies.extend(auto);
        }
        component.validate()?;
        component.encoded_len = component.encode().len() as u64;
        Ok(component)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    fn simple_block(sig: &str) -> CodeBlock {
        CodeBlock::new(sig.parse().expect("signature"), 0, vec![Instr::Ret])
    }

    fn calls_block(sig: &str, callee: &str) -> CodeBlock {
        CodeBlock::new(
            sig.parse().expect("signature"),
            0,
            vec![
                Instr::CallDyn {
                    function: callee.into(),
                    argc: 0,
                },
                Instr::Ret,
            ],
        )
    }

    #[test]
    fn builder_builds_and_validates() {
        let comp = ComponentBuilder::new(ComponentId::from_raw(1), "util")
            .exported_fn(simple_block("f() -> unit"))
            .internal_fn(simple_block("g() -> unit"))
            .build()
            .expect("valid");
        assert_eq!(comp.functions().len(), 2);
        assert_eq!(comp.name(), "util");
        assert!(comp.function(&"f".into()).is_some());
        assert!(comp.function(&"missing".into()).is_none());
    }

    #[test]
    fn duplicate_function_rejected() {
        let err = ComponentBuilder::new(ComponentId::from_raw(1), "dup")
            .exported_fn(simple_block("f() -> unit"))
            .exported_fn(simple_block("f() -> unit"))
            .build()
            .unwrap_err();
        assert!(matches!(err, ComponentError::DuplicateFunction(_)));
    }

    #[test]
    fn dangling_dependency_source_rejected() {
        let id = ComponentId::from_raw(1);
        let err = ComponentBuilder::new(id, "dep")
            .exported_fn(simple_block("f() -> unit"))
            .dependency(Dependency::type_a("ghost", id, "f"))
            .build()
            .unwrap_err();
        assert!(matches!(err, ComponentError::DanglingDependencySource(_)));
    }

    #[test]
    fn auto_structural_deps_found_by_static_analysis() {
        let id = ComponentId::from_raw(7);
        let comp = ComponentBuilder::new(id, "sorting")
            .exported_fn(calls_block("sort() -> unit", "compare"))
            .auto_structural_deps()
            .build()
            .expect("valid");
        let deps = comp.dependencies();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0], Dependency::type_a("sort", id, "compare"));
    }

    #[test]
    fn auto_deps_do_not_duplicate_manual_ones() {
        let id = ComponentId::from_raw(7);
        let manual = Dependency::type_a("sort", id, "compare");
        let comp = ComponentBuilder::new(id, "sorting")
            .exported_fn(calls_block("sort() -> unit", "compare"))
            .dependency(manual)
            .auto_structural_deps()
            .build()
            .expect("valid");
        assert_eq!(comp.dependencies().len(), 1);
    }

    #[test]
    fn encode_decode_round_trips() {
        let id = ComponentId::from_raw(9);
        let comp = ComponentBuilder::new(id, "roundtrip")
            .static_data_size(1024)
            .exported_fn(calls_block("f() -> unit", "g"))
            .internal_fn(simple_block("g() -> unit"))
            .dependency(Dependency::type_b("f", id, "g", id))
            .auto_structural_deps()
            .build()
            .expect("valid");
        let encoded = comp.encode();
        let decoded = ComponentBinary::decode(encoded).expect("decodes");
        assert_eq!(decoded, comp);
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let comp = ComponentBuilder::new(ComponentId::from_raw(1), "x")
            .exported_fn(simple_block("f() -> unit"))
            .build()
            .expect("valid");
        let good = comp.encode();

        let mut corrupted = good.to_vec();
        corrupted[0] = 0;
        assert!(matches!(
            ComponentBinary::decode(Bytes::from(corrupted)),
            Err(DecodeError::BadMagic(_))
        ));

        let mut wrong_version = good.to_vec();
        wrong_version[5] = 99;
        assert!(matches!(
            ComponentBinary::decode(Bytes::from(wrong_version)),
            Err(DecodeError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn size_includes_static_data() {
        let small = ComponentBuilder::new(ComponentId::from_raw(1), "s")
            .exported_fn(simple_block("f() -> unit"))
            .build()
            .expect("valid");
        let padded = ComponentBuilder::new(ComponentId::from_raw(1), "s")
            .exported_fn(simple_block("f() -> unit"))
            .static_data_size(550_000)
            .build()
            .expect("valid");
        assert_eq!(padded.size_bytes() - small.size_bytes(), 550_000);
    }

    #[test]
    fn descriptor_reflects_contents() {
        let id = ComponentId::from_raw(3);
        let comp = ComponentBuilder::new(id, "desc")
            .function(
                simple_block("f() -> unit"),
                Visibility::Exported,
                Protection::Mandatory,
            )
            .build()
            .expect("valid");
        let d = comp.descriptor();
        assert_eq!(d.id, id);
        assert_eq!(d.functions.len(), 1);
        assert_eq!(d.functions[0].protection_request, Protection::Mandatory);
        assert_eq!(
            d.function(&"f".into()).expect("present").visibility,
            Visibility::Exported
        );
        assert_eq!(d.function_names(), vec![FunctionName::new("f")]);
        assert_eq!(d.size_bytes, comp.size_bytes());
    }
}

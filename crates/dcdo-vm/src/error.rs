//! Runtime faults of the dynamic-code substrate.
//!
//! The variants [`VmError::MissingFunction`], [`VmError::FunctionDisabled`],
//! and [`VmError::ComponentGone`] are the concrete runtime manifestations of
//! the §3.1 problems (missing internal function, disappearing internal
//! function, disappearing component). The evolution-restriction machinery in
//! `dcdo-core` exists precisely to make these unreachable.

use std::fmt;

use dcdo_types::{ComponentId, FunctionName, TypeTag};
use serde::{Deserialize, Serialize};

/// A fault raised while executing dynamic-function code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmError {
    /// An instruction needed more operands than the stack holds.
    StackUnderflow,
    /// An operand had the wrong runtime type.
    TypeMismatch {
        /// The type the instruction required.
        expected: TypeTag,
        /// The type actually found.
        found: TypeTag,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// A list access was out of range.
    IndexOutOfRange {
        /// The index used.
        index: i64,
        /// The length of the list.
        len: usize,
    },
    /// A call supplied the wrong number of arguments.
    ArityMismatch {
        /// The function called.
        function: FunctionName,
        /// Declared arity.
        expected: usize,
        /// Arguments supplied.
        found: usize,
    },
    /// A call argument had a type incompatible with the signature.
    ArgumentType {
        /// The function called.
        function: FunctionName,
        /// Zero-based argument position.
        position: usize,
        /// The declared parameter type.
        expected: TypeTag,
        /// The argument's type.
        found: TypeTag,
    },
    /// A function returned a value incompatible with its declared return
    /// type.
    ReturnType {
        /// The returning function.
        function: FunctionName,
        /// The declared return type.
        expected: TypeTag,
        /// The returned value's type.
        found: TypeTag,
    },
    /// No implementation of the function exists in the object — the
    /// *missing internal function* problem (§3.1).
    MissingFunction(FunctionName),
    /// The function exists but is disabled, so the DFM disallows the call —
    /// how a *disappearing* function manifests to a caller (§3.1).
    FunctionDisabled(FunctionName),
    /// The function exists but is internal and the call came from outside
    /// the object — the failed remnant of a *disappearing exported
    /// function* (§3.1).
    NotExported(FunctionName),
    /// The component a suspended thread was executing in was removed while
    /// it was blocked — the *disappearing component* problem (§3.1).
    ComponentGone(ComponentId),
    /// A native intrinsic was not found in the host registry.
    UnknownNative(FunctionName),
    /// A native intrinsic reported an error.
    NativeError(String),
    /// The call stack exceeded the depth limit.
    CallDepthExceeded(usize),
    /// The thread exhausted its instruction budget.
    FuelExhausted,
    /// A remote outcall failed (timeout, dead object, remote fault).
    RemoteCallFailed(String),
    /// The thread was aborted by its owner (e.g. forced component removal).
    Aborted(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StackUnderflow => write!(f, "stack underflow"),
            VmError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            VmError::DivideByZero => write!(f, "division by zero"),
            VmError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for list of length {len}")
            }
            VmError::ArityMismatch {
                function,
                expected,
                found,
            } => write!(
                f,
                "function {function} expects {expected} arguments, got {found}"
            ),
            VmError::ArgumentType {
                function,
                position,
                expected,
                found,
            } => write!(
                f,
                "argument {position} of {function}: expected {expected}, found {found}"
            ),
            VmError::ReturnType {
                function,
                expected,
                found,
            } => write!(
                f,
                "function {function} returned {found}, expected {expected}"
            ),
            VmError::MissingFunction(name) => {
                write!(f, "no implementation of function {name} is present")
            }
            VmError::FunctionDisabled(name) => write!(f, "function {name} is disabled"),
            VmError::NotExported(name) => write!(f, "function {name} is not exported"),
            VmError::ComponentGone(c) => {
                write!(f, "component {c} was removed while a thread was inside it")
            }
            VmError::UnknownNative(name) => write!(f, "unknown native intrinsic {name}"),
            VmError::NativeError(msg) => write!(f, "native intrinsic failed: {msg}"),
            VmError::CallDepthExceeded(depth) => {
                write!(f, "call depth limit of {depth} exceeded")
            }
            VmError::FuelExhausted => write!(f, "instruction budget exhausted"),
            VmError::RemoteCallFailed(msg) => write!(f, "remote call failed: {msg}"),
            VmError::Aborted(msg) => write!(f, "thread aborted: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        let cases: Vec<VmError> = vec![
            VmError::StackUnderflow,
            VmError::DivideByZero,
            VmError::MissingFunction("f".into()),
            VmError::FunctionDisabled("g".into()),
            VmError::NotExported("h".into()),
            VmError::ComponentGone(ComponentId::from_raw(3)),
            VmError::FuelExhausted,
        ];
        for e in cases {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().expect("nonempty").is_lowercase() || s.starts_with('n'));
        }
    }

    #[test]
    fn structured_variants_carry_context() {
        let e = VmError::ArgumentType {
            function: "compare".into(),
            position: 1,
            expected: TypeTag::Int,
            found: TypeTag::Str,
        };
        let s = e.to_string();
        assert!(s.contains("compare") && s.contains("int") && s.contains("str"));
    }
}

//! Runtime values of the dynamic-code substrate.

use std::fmt;
use std::sync::Arc;

use dcdo_types::{ObjectId, TypeTag};
use serde::{Deserialize, Serialize};

/// A value manipulated by dynamic functions.
///
/// Values are dynamically typed; [`TypeTag`]s are checked at call
/// boundaries (argument and return positions) against declared signatures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Value {
    /// The unit value.
    #[default]
    Unit,
    /// A 64-bit signed integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An immutable string.
    Str(Arc<str>),
    /// A list of values.
    List(Vec<Value>),
    /// A reference to another distributed object.
    ObjRef(ObjectId),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the [`TypeTag`] describing this value.
    pub fn type_tag(&self) -> TypeTag {
        match self {
            Value::Unit => TypeTag::Unit,
            Value::Int(_) => TypeTag::Int,
            Value::Bool(_) => TypeTag::Bool,
            Value::Str(_) => TypeTag::Str,
            Value::List(_) => TypeTag::List,
            Value::ObjRef(_) => TypeTag::ObjRef,
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the object reference, if this is a [`Value::ObjRef`].
    pub fn as_obj_ref(&self) -> Option<ObjectId> {
        match self {
            Value::ObjRef(o) => Some(*o),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes, used for wire-size accounting.
    pub fn approx_size(&self) -> u64 {
        match self {
            Value::Unit => 1,
            Value::Int(_) => 9,
            Value::Bool(_) => 2,
            Value::Str(s) => 5 + s.len() as u64,
            Value::List(v) => 5 + v.iter().map(Value::approx_size).sum::<u64>(),
            Value::ObjRef(_) => 9,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::ObjRef(o) => write!(f, "{o}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<ObjectId> for Value {
    fn from(o: ObjectId) -> Self {
        Value::ObjRef(o)
    }
}

impl From<()> for Value {
    fn from((): ()) -> Self {
        Value::Unit
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_match_variants() {
        assert_eq!(Value::Unit.type_tag(), TypeTag::Unit);
        assert_eq!(Value::Int(1).type_tag(), TypeTag::Int);
        assert_eq!(Value::Bool(true).type_tag(), TypeTag::Bool);
        assert_eq!(Value::str("x").type_tag(), TypeTag::Str);
        assert_eq!(Value::List(vec![]).type_tag(), TypeTag::List);
        assert_eq!(
            Value::ObjRef(ObjectId::from_raw(1)).type_tag(),
            TypeTag::ObjRef
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(
            Value::List(vec![Value::Int(1)]).as_list(),
            Some(&[Value::Int(1)][..])
        );
        assert_eq!(
            Value::ObjRef(ObjectId::from_raw(2)).as_obj_ref(),
            Some(ObjectId::from_raw(2))
        );
        assert_eq!(Value::Unit.as_int(), None);
        assert_eq!(Value::Int(0).as_bool(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(false), Value::Bool(false));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(()), Value::Unit);
        assert_eq!(Value::default(), Value::Unit);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Bool(true)]).to_string(),
            "[1, true]"
        );
    }

    #[test]
    fn approx_size_grows_with_content() {
        assert!(Value::str("hello world").approx_size() > Value::str("x").approx_size());
        let nested = Value::List(vec![Value::Int(1); 10]);
        assert!(nested.approx_size() > Value::List(vec![]).approx_size());
    }
}

//! Property tests: the assembly text format round-trips valid components.

use dcdo_types::{ComponentId, Protection, Visibility};
use dcdo_vm::{assemble, disassemble, CodeBlock, ComponentBuilder, Instr, Value};
use proptest::prelude::*;

/// Straight-line (jump-free) instructions that are valid for a
/// `f(any, any) -> any` signature with 4 locals.
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        any::<i64>().prop_map(|n| Instr::Push(Value::Int(n))),
        any::<bool>().prop_map(|b| Instr::Push(Value::Bool(b))),
        Just(Instr::Push(Value::Unit)),
        "[a-zA-Z0-9 _.-]{0,12}".prop_map(|s| Instr::Push(Value::str(s))),
        Just(Instr::Pop),
        Just(Instr::Dup),
        Just(Instr::Swap),
        (0u8..2).prop_map(Instr::LoadArg),
        (0u8..4).prop_map(Instr::LoadLocal),
        (0u8..4).prop_map(Instr::StoreLocal),
        Just(Instr::Add),
        Just(Instr::Sub),
        Just(Instr::Mul),
        Just(Instr::Eq),
        Just(Instr::Ne),
        Just(Instr::Lt),
        Just(Instr::Ge),
        Just(Instr::Ret),
        (0u8..5).prop_map(Instr::MakeList),
        Just(Instr::ListLen),
        Just(Instr::ListPush),
        Just(Instr::StrConcat),
        Just(Instr::StrLen),
        any::<u64>().prop_map(Instr::Work),
        ("[a-z][a-z0-9_]{0,8}", 0u8..4).prop_map(|(f, argc)| Instr::CallDyn {
            function: f.as_str().into(),
            argc,
        }),
        ("[a-z][a-z0-9_]{0,8}", 0u8..4).prop_map(|(f, argc)| Instr::CallNative {
            function: f.as_str().into(),
            argc,
        }),
        ("[a-z][a-z0-9_]{0,8}", 0u8..4).prop_map(|(f, argc)| Instr::CallRemote {
            function: f.as_str().into(),
            argc,
        }),
        "[a-z][a-z0-9_]{0,8}".prop_map(|k| Instr::GlobalGet(k.as_str().into())),
        "[a-z][a-z0-9_]{0,8}".prop_map(|k| Instr::GlobalSet(k.as_str().into())),
    ]
}

fn arb_component() -> impl Strategy<Value = dcdo_vm::ComponentBinary> {
    (
        1u64..500,
        "[a-z][a-z0-9-]{0,10}",
        prop::collection::vec(
            (
                "[a-z][a-z0-9_]{0,8}",
                prop::collection::vec(arb_instr(), 0..12),
                any::<bool>(),
                0u8..3,
            ),
            1..5,
        ),
        0u64..100_000,
    )
        .prop_map(|(id, name, fns, padding)| {
            let mut seen = std::collections::HashSet::new();
            let mut b =
                ComponentBuilder::new(ComponentId::from_raw(id), name).static_data_size(padding);
            for (fname, instrs, exported, prot) in fns {
                if !seen.insert(fname.clone()) {
                    continue;
                }
                let code = CodeBlock::new(
                    format!("{fname}(any, any) -> any").parse().expect("sig"),
                    4,
                    instrs,
                );
                let visibility = if exported {
                    Visibility::Exported
                } else {
                    Visibility::Internal
                };
                let protection = match prot {
                    0 => Protection::FullyDynamic,
                    1 => Protection::Mandatory,
                    _ => Protection::Permanent,
                };
                b = b.function(code, visibility, protection);
            }
            b.build().expect("generated component is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// disassemble → assemble is the identity on valid components.
    #[test]
    fn asm_round_trips(component in arb_component()) {
        let text = disassemble(&component);
        let again = assemble(&text)
            .map_err(|e| TestCaseError::fail(format!("reassembly failed: {e}\n{text}")))?;
        prop_assert_eq!(again, component);
    }

    /// The assembler never panics on arbitrary text.
    #[test]
    fn assemble_never_panics(text in "\\PC{0,400}") {
        let _ = assemble(&text);
    }
}

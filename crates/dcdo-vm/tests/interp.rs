//! End-to-end interpreter tests: arithmetic, control flow, recursion,
//! suspension at outcalls, fault unwinding, and resolver bookkeeping.

use std::collections::HashMap;

use dcdo_types::{ComponentId, FunctionName, ObjectId};
use dcdo_vm::{
    CallOrigin, CallResolver, CodeBlock, FunctionBuilder, NativeRegistry, ResolveError,
    ResolvedCall, RunOutcome, StaticResolver, ThreadStatus, Value, ValueStore, VmError, VmThread,
};

const FUEL: u64 = 1_000_000;

fn natives() -> NativeRegistry {
    NativeRegistry::standard()
}

fn globals() -> ValueStore {
    ValueStore::new()
}

/// Resolver that wraps a StaticResolver and counts enter/exit pairs —
/// a miniature of the DFM's thread-activity monitoring.
#[derive(Default)]
struct CountingResolver {
    inner: StaticResolver,
    active: HashMap<FunctionName, i64>,
    max_seen: i64,
}

impl CountingResolver {
    fn insert(&mut self, code: CodeBlock) {
        self.inner.insert(code, ComponentId::from_raw(1));
    }

    fn all_idle(&self) -> bool {
        self.active.values().all(|&n| n == 0)
    }
}

impl CallResolver for CountingResolver {
    fn resolve(
        &mut self,
        function: &FunctionName,
        origin: CallOrigin,
    ) -> Result<ResolvedCall, ResolveError> {
        self.inner.resolve(function, origin)
    }

    fn enter(&mut self, function: &FunctionName, _component: ComponentId) {
        let n = self.active.entry(function.clone()).or_insert(0);
        *n += 1;
        self.max_seen = self.max_seen.max(*n);
    }

    fn exit(&mut self, function: &FunctionName, _component: ComponentId) {
        let n = self.active.entry(function.clone()).or_insert(0);
        *n -= 1;
        assert!(*n >= 0, "exit without matching enter for {function}");
    }
}

fn run_to_completion(resolver: &mut dyn CallResolver, name: &str, args: Vec<Value>) -> Value {
    let mut thread =
        VmThread::call(resolver, &name.into(), args, CallOrigin::External).expect("call starts");
    match thread.run(resolver, &natives(), &mut globals(), FUEL) {
        RunOutcome::Completed(v) => v,
        other => panic!("expected completion, got {other:?}"),
    }
}

fn fib_code() -> CodeBlock {
    // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
    let mut b = FunctionBuilder::parse("fib(int) -> int").expect("signature");
    let recurse = b.new_label();
    b.load_arg(0)
        .push_int(2)
        .lt()
        .jump_if_false(recurse)
        .load_arg(0)
        .ret()
        .bind(recurse)
        .load_arg(0)
        .push_int(1)
        .sub()
        .call_dyn("fib", 1)
        .load_arg(0)
        .push_int(2)
        .sub()
        .call_dyn("fib", 1)
        .add()
        .ret();
    b.build().expect("valid")
}

#[test]
fn arithmetic_and_control_flow() {
    let mut r = StaticResolver::new();
    // sum of 1..=n by loop
    let mut b = FunctionBuilder::parse("sum_to(int) -> int").expect("signature");
    b.locals(2);
    let top = b.new_label();
    let done = b.new_label();
    b.push_int(0)
        .store_local(0) // acc
        .push_int(1)
        .store_local(1) // i
        .bind(top)
        .load_local(1)
        .load_arg(0)
        .le()
        .jump_if_false(done)
        .load_local(0)
        .load_local(1)
        .add()
        .store_local(0)
        .load_local(1)
        .push_int(1)
        .add()
        .store_local(1)
        .jump(top)
        .bind(done)
        .load_local(0)
        .ret();
    r.insert(b.build().expect("valid"), ComponentId::from_raw(1));
    assert_eq!(
        run_to_completion(&mut r, "sum_to", vec![Value::Int(100)]),
        Value::Int(5050)
    );
}

#[test]
fn recursion_through_the_resolver() {
    let mut r = CountingResolver::default();
    r.insert(fib_code());
    assert_eq!(
        run_to_completion(&mut r, "fib", vec![Value::Int(15)]),
        Value::Int(610)
    );
    assert!(r.all_idle(), "all enters matched by exits");
    assert!(
        r.max_seen > 1,
        "recursion nests frames in the same function"
    );
}

#[test]
fn native_intrinsics_from_bytecode() {
    let mut r = StaticResolver::new();
    let code = FunctionBuilder::parse("norm(str) -> str")
        .expect("signature")
        .load_arg(0)
        .call_native("str_upper", 1)
        .ret()
        .build()
        .expect("valid");
    r.insert(code, ComponentId::from_raw(1));
    assert_eq!(
        run_to_completion(&mut r, "norm", vec![Value::str("abc")]),
        Value::str("ABC")
    );
}

#[test]
fn list_operations() {
    let mut r = StaticResolver::new();
    let code = FunctionBuilder::parse("second(list) -> any")
        .expect("signature")
        .load_arg(0)
        .push_int(1)
        .instr(dcdo_vm::Instr::ListGet)
        .ret()
        .build()
        .expect("valid");
    r.insert(code, ComponentId::from_raw(1));
    let list = Value::List(vec![Value::Int(10), Value::str("x")]);
    assert_eq!(
        run_to_completion(&mut r, "second", vec![list]),
        Value::str("x")
    );
}

#[test]
fn missing_function_faults_with_the_papers_error() {
    let mut r = CountingResolver::default();
    let code = FunctionBuilder::parse("f() -> unit")
        .expect("signature")
        .call_dyn("ghost", 0)
        .pop()
        .ret()
        .build()
        .expect("valid");
    r.insert(code);
    let mut thread =
        VmThread::call(&mut r, &"f".into(), vec![], CallOrigin::External).expect("starts");
    let outcome = thread.run(&mut r, &natives(), &mut globals(), FUEL);
    assert_eq!(
        outcome,
        RunOutcome::Faulted(VmError::MissingFunction("ghost".into()))
    );
    assert_eq!(thread.status(), ThreadStatus::Done);
    assert!(r.all_idle(), "fault unwound the enter of f");
}

#[test]
fn suspension_and_resume_at_remote_outcall() {
    let mut r = CountingResolver::default();
    // f(peer) = remote peer.double(21) + 1
    let code = FunctionBuilder::parse("f(objref) -> int")
        .expect("signature")
        .load_arg(0)
        .push_int(21)
        .call_remote("double", 1)
        .push_int(1)
        .add()
        .ret()
        .build()
        .expect("valid");
    r.insert(code);
    let peer = ObjectId::from_raw(77);
    let mut thread = VmThread::call(
        &mut r,
        &"f".into(),
        vec![Value::ObjRef(peer)],
        CallOrigin::External,
    )
    .expect("starts");
    let outcome = thread.run(&mut r, &natives(), &mut globals(), FUEL);
    let req = match outcome {
        RunOutcome::Suspended(req) => req,
        other => panic!("expected suspension, got {other:?}"),
    };
    assert_eq!(req.target, peer);
    assert_eq!(req.function, "double".into());
    assert_eq!(req.args, vec![Value::Int(21)]);
    assert_eq!(thread.status(), ThreadStatus::Suspended);
    // While suspended the thread is still *inside* f (activity monitoring).
    assert_eq!(r.active[&"f".into()], 1);
    assert_eq!(thread.functions_on_stack(), vec![FunctionName::new("f")]);

    thread.resume(Value::Int(42));
    match thread.run(&mut r, &natives(), &mut globals(), FUEL) {
        RunOutcome::Completed(v) => assert_eq!(v, Value::Int(43)),
        other => panic!("expected completion, got {other:?}"),
    }
    assert!(r.all_idle());
}

#[test]
fn resume_err_faults_and_unwinds() {
    let mut r = CountingResolver::default();
    let code = FunctionBuilder::parse("f(objref) -> int")
        .expect("signature")
        .load_arg(0)
        .push_int(1)
        .call_remote("g", 1)
        .ret()
        .build()
        .expect("valid");
    r.insert(code);
    let mut thread = VmThread::call(
        &mut r,
        &"f".into(),
        vec![Value::ObjRef(ObjectId::from_raw(1))],
        CallOrigin::External,
    )
    .expect("starts");
    assert!(matches!(
        thread.run(&mut r, &natives(), &mut globals(), FUEL),
        RunOutcome::Suspended(_)
    ));
    thread.resume_err(VmError::RemoteCallFailed("peer died".into()));
    assert_eq!(
        thread.run(&mut r, &natives(), &mut globals(), FUEL),
        RunOutcome::Faulted(VmError::RemoteCallFailed("peer died".into()))
    );
    assert!(r.all_idle());
}

#[test]
fn abort_unwinds_suspended_thread() {
    let mut r = CountingResolver::default();
    let code = FunctionBuilder::parse("f(objref) -> unit")
        .expect("signature")
        .load_arg(0)
        .call_remote("g", 0)
        .pop()
        .ret()
        .build()
        .expect("valid");
    r.insert(code);
    let mut thread = VmThread::call(
        &mut r,
        &"f".into(),
        vec![Value::ObjRef(ObjectId::from_raw(1))],
        CallOrigin::External,
    )
    .expect("starts");
    assert!(matches!(
        thread.run(&mut r, &natives(), &mut globals(), FUEL),
        RunOutcome::Suspended(_)
    ));
    assert_eq!(r.active[&"f".into()], 1);
    let err = thread.abort(&mut r, "component removal timed out");
    assert!(matches!(err, VmError::Aborted(_)));
    assert_eq!(thread.status(), ThreadStatus::Done);
    assert!(r.all_idle());
}

#[test]
fn fuel_exhaustion_faults() {
    let mut r = StaticResolver::new();
    // infinite loop
    let mut b = FunctionBuilder::parse("spin() -> unit").expect("signature");
    let top = b.new_label();
    b.bind(top).jump(top);
    r.insert(b.build().expect("valid"), ComponentId::from_raw(1));
    let mut thread =
        VmThread::call(&mut r, &"spin".into(), vec![], CallOrigin::External).expect("starts");
    assert_eq!(
        thread.run(&mut r, &natives(), &mut globals(), 1_000),
        RunOutcome::Faulted(VmError::FuelExhausted)
    );
}

#[test]
fn call_depth_limit_faults() {
    let mut r = StaticResolver::new();
    // f() = f()  — unbounded recursion
    let code = FunctionBuilder::parse("f() -> unit")
        .expect("signature")
        .call_dyn("f", 0)
        .ret()
        .build()
        .expect("valid");
    r.insert(code, ComponentId::from_raw(1));
    let mut thread =
        VmThread::call(&mut r, &"f".into(), vec![], CallOrigin::External).expect("starts");
    assert_eq!(
        thread.run(&mut r, &natives(), &mut globals(), FUEL),
        RunOutcome::Faulted(VmError::CallDepthExceeded(dcdo_vm::MAX_CALL_DEPTH))
    );
}

#[test]
fn arity_and_type_errors_fail_fast() {
    let mut r = StaticResolver::new();
    let code = FunctionBuilder::parse("pair(int, str) -> list")
        .expect("signature")
        .load_arg(0)
        .load_arg(1)
        .make_list(2)
        .ret()
        .build()
        .expect("valid");
    r.insert(code, ComponentId::from_raw(1));
    // Wrong arity.
    let err = VmThread::call(
        &mut r,
        &"pair".into(),
        vec![Value::Int(1)],
        CallOrigin::External,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        VmError::ArityMismatch {
            expected: 2,
            found: 1,
            ..
        }
    ));
    // Wrong type.
    let err = VmThread::call(
        &mut r,
        &"pair".into(),
        vec![Value::str("x"), Value::str("y")],
        CallOrigin::External,
    )
    .unwrap_err();
    assert!(matches!(err, VmError::ArgumentType { position: 0, .. }));
}

#[test]
fn return_type_is_checked() {
    let mut r = StaticResolver::new();
    let code = FunctionBuilder::parse("lie() -> int")
        .expect("signature")
        .push("not an int")
        .ret()
        .build()
        .expect("valid");
    r.insert(code, ComponentId::from_raw(1));
    let mut thread =
        VmThread::call(&mut r, &"lie".into(), vec![], CallOrigin::External).expect("starts");
    assert!(matches!(
        thread.run(&mut r, &natives(), &mut globals(), FUEL),
        RunOutcome::Faulted(VmError::ReturnType { .. })
    ));
}

#[test]
fn divide_by_zero_faults() {
    let mut r = StaticResolver::new();
    let code = FunctionBuilder::parse("div(int, int) -> int")
        .expect("signature")
        .load_arg(0)
        .load_arg(1)
        .div()
        .ret()
        .build()
        .expect("valid");
    r.insert(code, ComponentId::from_raw(1));
    let mut thread = VmThread::call(
        &mut r,
        &"div".into(),
        vec![Value::Int(1), Value::Int(0)],
        CallOrigin::External,
    )
    .expect("starts");
    assert_eq!(
        thread.run(&mut r, &natives(), &mut globals(), FUEL),
        RunOutcome::Faulted(VmError::DivideByZero)
    );
}

#[test]
fn implicit_return_of_unit() {
    let mut r = StaticResolver::new();
    let code = CodeBlock::new("noop() -> unit".parse().expect("signature"), 0, vec![]);
    r.insert(code, ComponentId::from_raw(1));
    assert_eq!(run_to_completion(&mut r, "noop", vec![]), Value::Unit);
}

#[test]
fn work_instruction_accumulates_compute_time() {
    let mut r = StaticResolver::new();
    let code = FunctionBuilder::parse("busy() -> unit")
        .expect("signature")
        .work(5_000)
        .work(7_000)
        .ret()
        .build()
        .expect("valid");
    r.insert(code, ComponentId::from_raw(1));
    let mut thread =
        VmThread::call(&mut r, &"busy".into(), vec![], CallOrigin::External).expect("starts");
    assert!(matches!(
        thread.run(&mut r, &natives(), &mut globals(), FUEL),
        RunOutcome::Completed(Value::Unit)
    ));
    assert_eq!(thread.take_consumed_nanos(), 12_000);
    assert_eq!(thread.take_consumed_nanos(), 0, "drained");
}

#[test]
fn dispatch_cost_is_charged_per_dynamic_call() {
    let mut r = StaticResolver::new().with_dispatch_cost_nanos(10_000);
    let helper = FunctionBuilder::parse("helper() -> unit")
        .expect("signature")
        .ret()
        .build()
        .expect("valid");
    let code = FunctionBuilder::parse("f() -> unit")
        .expect("signature")
        .call_dyn("helper", 0)
        .pop()
        .call_dyn("helper", 0)
        .pop()
        .ret()
        .build()
        .expect("valid");
    r.insert(helper, ComponentId::from_raw(1));
    r.insert(code, ComponentId::from_raw(1));
    let mut thread =
        VmThread::call(&mut r, &"f".into(), vec![], CallOrigin::External).expect("starts");
    assert!(matches!(
        thread.run(&mut r, &natives(), &mut globals(), FUEL),
        RunOutcome::Completed(_)
    ));
    // Root call + two dynamic calls = 3 dispatches.
    assert_eq!(thread.take_consumed_nanos(), 30_000);
}

#[test]
fn components_on_stack_reports_suspended_location() {
    let mut r = StaticResolver::new();
    let code = FunctionBuilder::parse("f(objref) -> unit")
        .expect("signature")
        .load_arg(0)
        .call_remote("g", 0)
        .pop()
        .ret()
        .build()
        .expect("valid");
    r.insert(code, ComponentId::from_raw(42));
    let mut thread = VmThread::call(
        &mut r,
        &"f".into(),
        vec![Value::ObjRef(ObjectId::from_raw(1))],
        CallOrigin::External,
    )
    .expect("starts");
    assert!(matches!(
        thread.run(&mut r, &natives(), &mut globals(), FUEL),
        RunOutcome::Suspended(_)
    ));
    assert_eq!(
        thread.components_on_stack(),
        vec![ComponentId::from_raw(42)]
    );
    assert_eq!(thread.depth(), 1);
}

#[test]
fn helper_results_flow_between_frames() {
    let mut r = StaticResolver::new();
    let double = FunctionBuilder::parse("double(int) -> int")
        .expect("signature")
        .load_arg(0)
        .push_int(2)
        .mul()
        .ret()
        .build()
        .expect("valid");
    let quad = FunctionBuilder::parse("quad(int) -> int")
        .expect("signature")
        .load_arg(0)
        .call_dyn("double", 1)
        .call_dyn("double", 1)
        .ret()
        .build()
        .expect("valid");
    r.insert(double, ComponentId::from_raw(1));
    r.insert(quad, ComponentId::from_raw(2));
    assert_eq!(
        run_to_completion(&mut r, "quad", vec![Value::Int(5)]),
        Value::Int(20)
    );
}

#[test]
fn string_operations() {
    let mut r = StaticResolver::new();
    let code = FunctionBuilder::parse("greet(str) -> str")
        .expect("signature")
        .push("hello, ")
        .load_arg(0)
        .instr(dcdo_vm::Instr::StrConcat)
        .ret()
        .build()
        .expect("valid");
    r.insert(code, ComponentId::from_raw(1));
    assert_eq!(
        run_to_completion(&mut r, "greet", vec![Value::str("world")]),
        Value::str("hello, world")
    );
}

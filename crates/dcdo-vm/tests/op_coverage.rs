//! Exhaustive instruction coverage: every opcode is executed at least once
//! with its happy path and (where applicable) its fault path.

use dcdo_types::ComponentId;
use dcdo_vm::{
    CallOrigin, CodeBlock, Instr, NativeRegistry, RunOutcome, StaticResolver, Value, ValueStore,
    VmError, VmThread,
};

fn run_block(sig: &str, instrs: Vec<Instr>, args: Vec<Value>) -> RunOutcome {
    let mut r = StaticResolver::new();
    let block = CodeBlock::new(sig.parse().expect("signature"), 8, instrs);
    block.validate().expect("valid block");
    r.insert(block, ComponentId::from_raw(1));
    let name = sig.split('(').next().expect("name");
    let mut t = VmThread::call(&mut r, &name.into(), args, CallOrigin::External).expect("starts");
    t.run(
        &mut r,
        &NativeRegistry::standard(),
        &mut ValueStore::new(),
        100_000,
    )
}

fn expect_int(sig: &str, instrs: Vec<Instr>, args: Vec<Value>, expected: i64) {
    assert_eq!(
        run_block(sig, instrs, args),
        RunOutcome::Completed(Value::Int(expected))
    );
}

fn expect_bool(instrs: Vec<Instr>, expected: bool) {
    assert_eq!(
        run_block("f() -> bool", instrs, vec![]),
        RunOutcome::Completed(Value::Bool(expected))
    );
}

#[test]
fn arithmetic_ops() {
    use Instr::*;
    expect_int(
        "f() -> int",
        vec![Push(Value::Int(7)), Push(Value::Int(3)), Sub, Ret],
        vec![],
        4,
    );
    expect_int(
        "f() -> int",
        vec![Push(Value::Int(7)), Push(Value::Int(3)), Rem, Ret],
        vec![],
        1,
    );
    expect_int(
        "f() -> int",
        vec![Push(Value::Int(7)), Neg, Ret],
        vec![],
        -7,
    );
    expect_int(
        "f() -> int",
        vec![Push(Value::Int(6)), Push(Value::Int(7)), Mul, Ret],
        vec![],
        42,
    );
    expect_int(
        "f() -> int",
        vec![Push(Value::Int(42)), Push(Value::Int(6)), Div, Ret],
        vec![],
        7,
    );
}

#[test]
fn boolean_ops() {
    use Instr::*;
    expect_bool(
        vec![Push(Value::Bool(true)), Push(Value::Bool(false)), And, Ret],
        false,
    );
    expect_bool(
        vec![Push(Value::Bool(true)), Push(Value::Bool(false)), Or, Ret],
        true,
    );
    expect_bool(vec![Push(Value::Bool(false)), Not, Ret], true);
    expect_bool(
        vec![Push(Value::Int(1)), Push(Value::Int(2)), Ne, Ret],
        true,
    );
    expect_bool(
        vec![Push(Value::Int(3)), Push(Value::Int(2)), Gt, Ret],
        true,
    );
    expect_bool(
        vec![Push(Value::Int(2)), Push(Value::Int(2)), Le, Ret],
        true,
    );
}

#[test]
fn stack_shuffling() {
    use Instr::*;
    // swap: [1, 2] -> [2, 1]; top (1) is returned after a Sub: 1 - 2 would
    // be -1 unswapped; swapped it is 2 - 1 = 1.
    expect_int(
        "f() -> int",
        vec![Push(Value::Int(1)), Push(Value::Int(2)), Swap, Sub, Ret],
        vec![],
        1,
    );
    // dup then pop leaves the original.
    expect_int(
        "f() -> int",
        vec![Push(Value::Int(9)), Dup, Pop, Ret],
        vec![],
        9,
    );
}

#[test]
fn jump_if_true_takes_the_branch() {
    use Instr::*;
    // if true jump over the 111 push.
    expect_int(
        "f() -> int",
        vec![
            Push(Value::Bool(true)),
            JumpIfTrue(3),
            Push(Value::Int(111)),
            Push(Value::Int(5)),
            Ret,
        ],
        vec![],
        5,
    );
}

#[test]
fn list_ops() {
    use Instr::*;
    // make [10, 20], set [1] = 99, read it back; also len and push.
    expect_int(
        "f() -> int",
        vec![
            Push(Value::Int(10)),
            Push(Value::Int(20)),
            MakeList(2),
            Push(Value::Int(1)),
            Push(Value::Int(99)),
            ListSet,
            Push(Value::Int(1)),
            ListGet,
            Ret,
        ],
        vec![],
        99,
    );
    expect_int(
        "f() -> int",
        vec![MakeList(0), Push(Value::Int(7)), ListPush, ListLen, Ret],
        vec![],
        1,
    );
}

#[test]
fn string_ops() {
    use Instr::*;
    expect_int(
        "f() -> int",
        vec![Push(Value::str("hello")), StrLen, Ret],
        vec![],
        5,
    );
}

#[test]
fn store_and_load_locals() {
    use Instr::*;
    expect_int(
        "f(int) -> int",
        vec![
            LoadArg(0),
            StoreLocal(3),
            LoadLocal(3),
            LoadLocal(3),
            Add,
            Ret,
        ],
        vec![Value::Int(21)],
        42,
    );
}

#[test]
fn fault_paths() {
    use Instr::*;
    // list index out of range
    assert!(matches!(
        run_block(
            "f() -> int",
            vec![MakeList(0), Push(Value::Int(0)), ListGet, Ret],
            vec![]
        ),
        RunOutcome::Faulted(VmError::IndexOutOfRange { .. })
    ));
    // negative index
    assert!(matches!(
        run_block(
            "f() -> int",
            vec![
                Push(Value::Int(1)),
                MakeList(1),
                Push(Value::Int(-1)),
                ListGet,
                Ret
            ],
            vec![]
        ),
        RunOutcome::Faulted(VmError::IndexOutOfRange { .. })
    ));
    // remainder by zero
    assert!(matches!(
        run_block(
            "f() -> int",
            vec![Push(Value::Int(1)), Push(Value::Int(0)), Rem, Ret],
            vec![]
        ),
        RunOutcome::Faulted(VmError::DivideByZero)
    ));
    // type confusion: And on ints
    assert!(matches!(
        run_block(
            "f() -> bool",
            vec![Push(Value::Int(1)), Push(Value::Int(2)), And, Ret],
            vec![]
        ),
        RunOutcome::Faulted(VmError::TypeMismatch { .. })
    ));
    // stack underflow
    assert!(matches!(
        run_block("f() -> int", vec![Instr::Pop, Instr::Ret], vec![]),
        RunOutcome::Faulted(VmError::StackUnderflow)
    ));
    // str_concat with a non-string
    assert!(matches!(
        run_block(
            "f() -> str",
            vec![Push(Value::str("a")), Push(Value::Int(1)), StrConcat, Ret],
            vec![]
        ),
        RunOutcome::Faulted(VmError::TypeMismatch { .. })
    ));
}

#[test]
fn eq_compares_structurally() {
    use Instr::*;
    expect_bool(
        vec![
            Push(Value::Int(1)),
            Push(Value::Int(2)),
            MakeList(2),
            Push(Value::Int(1)),
            Push(Value::Int(2)),
            MakeList(2),
            Eq,
            Ret,
        ],
        true,
    );
}

#[test]
fn wrapping_arithmetic_does_not_panic() {
    use Instr::*;
    assert!(matches!(
        run_block(
            "f() -> int",
            vec![Push(Value::Int(i64::MAX)), Push(Value::Int(1)), Add, Ret],
            vec![]
        ),
        RunOutcome::Completed(Value::Int(i64::MIN))
    ));
    assert!(matches!(
        run_block(
            "f() -> int",
            vec![Push(Value::Int(i64::MIN)), Neg, Ret],
            vec![]
        ),
        RunOutcome::Completed(Value::Int(i64::MIN))
    ));
}

//! Property tests: the component object-code format round-trips arbitrary
//! well-formed components, and decoding never panics on corrupted input.

use bytes::Bytes;
use dcdo_types::{ComponentId, Dependency, Protection, Visibility};
use dcdo_vm::{CodeBlock, ComponentBinary, ComponentBuilder, Instr, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        arb_value().prop_map(Instr::Push),
        Just(Instr::Pop),
        Just(Instr::Dup),
        Just(Instr::Add),
        Just(Instr::Sub),
        Just(Instr::Mul),
        Just(Instr::Eq),
        Just(Instr::Lt),
        Just(Instr::Ret),
        Just(Instr::ListLen),
        Just(Instr::StrConcat),
        (0u8..4).prop_map(Instr::LoadArg),
        (0u8..4).prop_map(Instr::LoadLocal),
        (0u8..4).prop_map(Instr::StoreLocal),
        any::<u64>().prop_map(Instr::Work),
        ("[a-z]{1,8}", 0u8..4).prop_map(|(f, argc)| Instr::CallDyn {
            function: f.as_str().into(),
            argc,
        }),
        ("[a-z]{1,8}", 0u8..4).prop_map(|(f, argc)| Instr::CallRemote {
            function: f.as_str().into(),
            argc,
        }),
    ]
}

/// Code that need not be *valid* (jumps may dangle) — the codec must
/// round-trip it regardless; validity is a separate concern.
fn arb_code_block(name: String) -> impl Strategy<Value = CodeBlock> {
    (prop::collection::vec(arb_instr(), 0..20), 0u8..8).prop_map(move |(instrs, locals)| {
        CodeBlock::new(
            format!("{name}(any, any, any, any) -> any")
                .parse()
                .expect("valid signature"),
            locals.max(4),
            instrs,
        )
    })
}

fn arb_component() -> impl Strategy<Value = ComponentBinary> {
    (
        1u64..1000,
        "[a-z]{1,10}",
        prop::collection::vec(("[a-z]{1,6}", any::<u8>(), any::<bool>()), 1..6),
        0u64..1_000_000,
    )
        .prop_flat_map(|(id, name, fn_specs, padding)| {
            // Deduplicate function names.
            let mut names: Vec<(String, u8, bool)> = Vec::new();
            for (n, p, v) in fn_specs {
                if !names.iter().any(|(existing, _, _)| *existing == n) {
                    names.push((n, p, v));
                }
            }
            let blocks: Vec<_> = names
                .iter()
                .map(|(n, _, _)| arb_code_block(n.clone()).boxed())
                .collect();
            (Just((id, name, names, padding)), blocks)
        })
        .prop_map(|((id, name, specs, padding), blocks)| {
            let cid = ComponentId::from_raw(id);
            let mut b = ComponentBuilder::new(cid, name).static_data_size(padding);
            for ((_, prot, vis), code) in specs.into_iter().zip(blocks) {
                let protection = match prot % 3 {
                    0 => Protection::FullyDynamic,
                    1 => Protection::Mandatory,
                    _ => Protection::Permanent,
                };
                let visibility = if vis {
                    Visibility::Exported
                } else {
                    Visibility::Internal
                };
                b = b.function(code, visibility, protection);
            }
            b = b.dependency(Dependency::type_d("x", "y"));
            // Skip validation: arbitrary code may have dangling jumps; the
            // codec round-trip property is about serialization only.
            match b.build() {
                Ok(c) => c,
                Err(_) => ComponentBuilder::new(cid, "fallback")
                    .exported_fn(CodeBlock::new(
                        "f() -> unit".parse().expect("sig"),
                        0,
                        vec![Instr::Ret],
                    ))
                    .build()
                    .expect("fallback valid"),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is the identity on components.
    #[test]
    fn component_round_trips(comp in arb_component()) {
        let encoded = comp.encode();
        let decoded = ComponentBinary::decode(encoded).expect("round trip decodes");
        prop_assert_eq!(decoded, comp);
    }

    /// Decoding arbitrary garbage never panics; it errors or (vanishingly
    /// unlikely) produces a component.
    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = ComponentBinary::decode(Bytes::from(bytes));
    }

    /// Truncating a valid encoding at any point yields an error, not a panic.
    #[test]
    fn decode_handles_truncation(comp in arb_component(), cut in 0.0f64..1.0) {
        let encoded = comp.encode();
        let cut_at = ((encoded.len() as f64) * cut) as usize;
        if cut_at < encoded.len() {
            let truncated = encoded.slice(0..cut_at);
            prop_assert!(ComponentBinary::decode(truncated).is_err());
        }
    }

    /// size_bytes is always at least the static padding plus header.
    #[test]
    fn size_accounts_for_padding(comp in arb_component()) {
        prop_assert!(comp.size_bytes() >= comp.static_data_size());
        prop_assert!(comp.size_bytes() > comp.static_data_size());
    }
}

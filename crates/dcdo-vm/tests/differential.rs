//! Differential execution properties: the threaded/fused dispatch path must
//! be observably indistinguishable from the legacy single-step interpreter.
//!
//! Random programs — arithmetic, stack shuffles, branches, dynamic calls
//! (hitting the inline leaf-call path), natives, remote outcalls, `Work`,
//! globals — run through three configurations:
//!
//! 1. **legacy**: the original single-step interpreter over undecoded code
//!    (the oracle),
//! 2. **unfused**: the threaded loop with superinstruction fusion disabled,
//! 3. **fused**: the threaded loop over the peephole-fused stream.
//!
//! All three must produce identical outcomes (results, suspension requests,
//! faults — in order), identical simulated-time consumption, identical
//! global-store state, and — with profiling on — bit-identical [`VmProfile`]s
//! in original-opcode terms. Fuel values are chosen small enough that
//! exhaustion regularly lands *inside* fused superinstructions, which must
//! charge per-constituent exactly like the unfused program.

use dcdo_types::{ComponentId, ObjectId};
use dcdo_vm::{
    CallOrigin, CodeBlock, Instr, NativeRegistry, RunOutcome, StaticResolver, Value, ValueStore,
    VmError, VmProfile, VmThread,
};
use proptest::prelude::*;

/// Everything one run makes observable.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    /// Suspension requests in order, then how the thread ended.
    events: Vec<String>,
    consumed_nanos: u64,
    globals: ValueStore,
    profile: Option<VmProfile>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Legacy,
    Unfused,
    Fused,
}

/// Instructions drawn for random bodies. Call targets name the real
/// functions `f0`/`f1` (arity 2) so dynamic calls mostly resolve — with the
/// occasional missing name and wrong arity so resolution and arity faults
/// are diffed too.
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (-50i64..50).prop_map(|n| Instr::Push(Value::Int(n))),
        any::<bool>().prop_map(|b| Instr::Push(Value::Bool(b))),
        Just(Instr::Push(Value::Unit)),
        Just(Instr::Push(Value::str("s"))),
        Just(Instr::Push(Value::ObjRef(ObjectId::from_raw(7)))),
        Just(Instr::Pop),
        Just(Instr::Dup),
        Just(Instr::Swap),
        (0u8..2).prop_map(Instr::LoadArg),
        (0u8..4).prop_map(Instr::LoadLocal),
        (0u8..4).prop_map(Instr::StoreLocal),
        Just(Instr::Add),
        Just(Instr::Sub),
        Just(Instr::Mul),
        Just(Instr::Div),
        Just(Instr::Eq),
        Just(Instr::Ne),
        Just(Instr::Lt),
        Just(Instr::Le),
        Just(Instr::Gt),
        Just(Instr::Ge),
        Just(Instr::Not),
        Just(Instr::Ret),
        (0u32..16).prop_map(Instr::Jump),
        (0u32..16).prop_map(Instr::JumpIfFalse),
        (0u32..16).prop_map(Instr::JumpIfTrue),
        (0u8..4).prop_map(Instr::MakeList),
        Just(Instr::ListLen),
        Just(Instr::ListPush),
        Just(Instr::StrConcat),
        Just(Instr::StrLen),
        (0u64..500).prop_map(Instr::Work),
        (prop_oneof![Just("f0"), Just("f1"), Just("nope")], 0u8..3).prop_map(|(f, argc)| {
            Instr::CallDyn {
                function: f.into(),
                argc,
            }
        }),
        Just(Instr::CallNative {
            function: "abs".into(),
            argc: 1,
        }),
        (prop_oneof![Just("remote")], 0u8..2).prop_map(|(f, argc)| Instr::CallRemote {
            function: f.into(),
            argc,
        }),
        Just(Instr::GlobalGet("g".into())),
        Just(Instr::GlobalSet("g".into())),
    ]
}

/// A program is a set of bodies for `f0`, `f1`, `f2`; `f0` is the entry.
/// `f2` is shaped like the hot leaf the interpreter inlines (`arg + const,
/// return`) so the leaf fast path gets differential coverage through `f1`'s
/// random calls; its own body still comes last so selector coverage varies.
fn arb_program() -> impl Strategy<Value = Vec<Vec<Instr>>> {
    (
        prop::collection::vec(arb_instr(), 0..14),
        prop::collection::vec(arb_instr(), 0..14),
    )
        .prop_map(|(b0, b1)| {
            let mut b1 = b1;
            // Bias f1 toward the fused call shape: operand + CallDyn f2/1.
            b1.push(Instr::LoadArg(0));
            b1.push(Instr::CallDyn {
                function: "f2".into(),
                argc: 1,
            });
            b1.push(Instr::Ret);
            let b2 = vec![
                Instr::LoadArg(0),
                Instr::Push(Value::Int(3)),
                Instr::Mul,
                Instr::Ret,
            ];
            vec![b0, b1, b2]
        })
}

fn build_resolver(bodies: &[Vec<Instr>], mode: Mode) -> StaticResolver {
    let mut r = StaticResolver::new().with_fusion(mode == Mode::Fused);
    for (i, body) in bodies.iter().enumerate() {
        let sig = match i {
            2 => "f2(any) -> any".parse().expect("sig"),
            _ => format!("f{i}(any, any) -> any").parse().expect("sig"),
        };
        r.insert(
            CodeBlock::new(sig, 4, body.clone()),
            ComponentId::from_raw(1),
        );
    }
    r
}

/// Runs the program to quiescence in one mode, resuming suspensions a fixed
/// number of times and then aborting the next one with an error so the
/// unwind path is diffed as well.
fn observe(bodies: &[Vec<Instr>], mode: Mode, fuel: u64, profiled: bool) -> Observed {
    let mut resolver = build_resolver(bodies, mode);
    let natives = NativeRegistry::standard();
    let mut globals = ValueStore::new();
    let mut events = Vec::new();
    let args = vec![Value::Int(11), Value::Int(4)];
    let mut thread = match VmThread::call(&mut resolver, &"f0".into(), args, CallOrigin::External) {
        Ok(thread) => thread,
        Err(err) => {
            return Observed {
                events: vec![format!("call-err {err:?}")],
                consumed_nanos: 0,
                globals,
                profile: None,
            }
        }
    };
    thread.set_legacy_stepper(mode == Mode::Legacy);
    if profiled {
        thread.enable_profiling();
    }
    let mut resumes = 0;
    loop {
        match thread.run(&mut resolver, &natives, &mut globals, fuel) {
            RunOutcome::Completed(v) => {
                events.push(format!("done {v:?}"));
                break;
            }
            RunOutcome::Faulted(e) => {
                events.push(format!("fault {e:?}"));
                break;
            }
            RunOutcome::Suspended(req) => {
                events.push(format!(
                    "suspend {} {} {:?} depth={} fns={:?}",
                    req.target,
                    req.function,
                    req.args,
                    thread.depth(),
                    thread.functions_on_stack(),
                ));
                if resumes < 3 {
                    resumes += 1;
                    thread.resume(Value::Int(9));
                } else {
                    thread.resume_err(VmError::StackUnderflow);
                }
            }
        }
    }
    Observed {
        events,
        consumed_nanos: thread.take_consumed_nanos(),
        globals,
        profile: thread.take_profile(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unprofiled: outcomes, nanos, and global state agree across all three
    /// paths, and the two threaded paths retire identical original-opcode
    /// counts, for fuels that exhaust mid-superinstruction and fuels that
    /// never exhaust.
    #[test]
    fn threaded_paths_match_the_legacy_oracle(
        bodies in arb_program(),
        fuel in prop_oneof![Just(3u64), Just(7), Just(19), Just(41), Just(100_000)],
    ) {
        let legacy = observe(&bodies, Mode::Legacy, fuel, false);
        let unfused = observe(&bodies, Mode::Unfused, fuel, false);
        let fused = observe(&bodies, Mode::Fused, fuel, false);
        prop_assert_eq!(&legacy, &unfused);
        prop_assert_eq!(&legacy, &fused);
    }

    /// Profiled: the per-opcode/per-function accounting is bit-identical in
    /// original-opcode terms on every path (superinstructions charge their
    /// constituents through the same hook, in program order).
    #[test]
    fn profiles_are_identical_in_original_opcode_terms(
        bodies in arb_program(),
        fuel in prop_oneof![Just(5u64), Just(23), Just(100_000)],
    ) {
        let legacy = observe(&bodies, Mode::Legacy, fuel, true);
        let unfused = observe(&bodies, Mode::Unfused, fuel, true);
        let fused = observe(&bodies, Mode::Fused, fuel, true);
        prop_assert!(legacy.profile.is_some());
        prop_assert_eq!(&legacy, &unfused);
        prop_assert_eq!(&legacy, &fused);
    }

    /// The fused and unfused threaded paths retire the same total number of
    /// original opcodes; only the share executed inside superinstructions
    /// may differ.
    #[test]
    fn retirement_totals_are_fusion_invariant(
        bodies in arb_program(),
        fuel in prop_oneof![Just(13u64), Just(100_000)],
    ) {
        let natives = NativeRegistry::standard();
        let mut totals = Vec::new();
        for mode in [Mode::Unfused, Mode::Fused] {
            let mut resolver = build_resolver(&bodies, mode);
            let mut globals = ValueStore::new();
            let args = vec![Value::Int(11), Value::Int(4)];
            let Ok(mut thread) =
                VmThread::call(&mut resolver, &"f0".into(), args, CallOrigin::External)
            else {
                return Ok(());
            };
            let mut resumes = 0;
            loop {
                match thread.run(&mut resolver, &natives, &mut globals, fuel) {
                    RunOutcome::Suspended(_) if resumes < 3 => {
                        resumes += 1;
                        thread.resume(Value::Int(9));
                    }
                    RunOutcome::Suspended(_) => {
                        thread.resume_err(VmError::StackUnderflow);
                    }
                    _ => break,
                }
            }
            let (total, fused_part) = thread.retired_counts();
            prop_assert!(fused_part <= total);
            if mode == Mode::Unfused {
                prop_assert_eq!(fused_part, 0);
            }
            totals.push(total);
        }
        prop_assert_eq!(totals[0], totals[1]);
    }
}

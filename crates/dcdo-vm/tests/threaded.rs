//! Threaded-dispatch regressions: `Work` accounting after folding the
//! pre-dispatch special case into the dispatch table, fuel exhaustion inside
//! superinstructions, the inline leaf-call path, and decode-cache
//! invalidation across reconfiguration.

use dcdo_types::{ComponentId, FunctionName};
use dcdo_vm::{
    CallOrigin, CallResolver, CodeBlock, Instr, NativeRegistry, ResolveError, ResolvedCall,
    RunOutcome, StaticResolver, Value, ValueStore, VmError, VmProfile, VmThread,
};

fn block(sig: &str, locals: u8, instrs: Vec<Instr>) -> CodeBlock {
    CodeBlock::new(sig.parse().expect("signature"), locals, instrs)
}

/// Runs `entry(11)` against `resolver` and returns the outcome plus the
/// profile (when `profiled`) and consumed nanos.
fn run_one(
    resolver: &mut StaticResolver,
    legacy: bool,
    profiled: bool,
    fuel: u64,
) -> (RunOutcome, Option<VmProfile>, u64, (u64, u64)) {
    let natives = NativeRegistry::standard();
    let mut globals = ValueStore::new();
    let mut thread = VmThread::call(
        resolver,
        &"entry".into(),
        vec![Value::Int(11)],
        CallOrigin::External,
    )
    .expect("entry resolves");
    thread.set_legacy_stepper(legacy);
    if profiled {
        thread.enable_profiling();
    }
    let outcome = thread.run(resolver, &natives, &mut globals, fuel);
    let retired = thread.retired_counts();
    (
        outcome,
        thread.take_profile(),
        thread.take_consumed_nanos(),
        retired,
    )
}

/// `Work` is dispatched like any other decoded op (no pre-dispatch branch):
/// its nanoseconds must still reach both the simulated-time accumulator and
/// the profiler's per-function `work_nanos`, identically on the legacy,
/// unfused, and fused paths — including when the `Work` sits between
/// fusable runs.
#[test]
fn work_nanos_land_in_profiler_on_every_path() {
    let body = vec![
        Instr::Work(100),
        Instr::LoadArg(0),
        Instr::Push(Value::Int(1)),
        Instr::Add,
        Instr::Work(50),
        Instr::Ret,
    ];
    let mut snapshots = Vec::new();
    for (legacy, fuse) in [(true, false), (false, false), (false, true)] {
        let mut r = StaticResolver::new().with_fusion(fuse);
        r.insert(
            block("entry(int) -> int", 0, body.clone()),
            ComponentId::from_raw(1),
        );
        let (outcome, profile, nanos, _) = run_one(&mut r, legacy, true, 1_000);
        assert_eq!(outcome, RunOutcome::Completed(Value::Int(12)));
        assert_eq!(nanos, 150, "Work charges simulated time exactly");
        let profile = profile.expect("profiling enabled");
        let stats = profile.function("entry").expect("entry profiled");
        assert_eq!(stats.work_nanos, 150, "Work nanos attributed to frame");
        assert_eq!(stats.instructions, 6);
        snapshots.push(profile);
    }
    assert_eq!(snapshots[0], snapshots[1]);
    assert_eq!(snapshots[0], snapshots[2]);
}

/// Fuel exhaustion inside a fused superinstruction lands on exactly the
/// constituent the unfused program would have reached, with the same retired
/// counts and the same per-opcode profile.
#[test]
fn fuel_exhausts_mid_superinstruction_exactly() {
    let body = vec![
        Instr::LoadArg(0),
        Instr::Push(Value::Int(1)),
        Instr::Add,
        Instr::Ret,
    ];
    let mut profiles = Vec::new();
    for (legacy, fuse) in [(true, false), (false, false), (false, true)] {
        let mut r = StaticResolver::new().with_fusion(fuse);
        r.insert(
            block("entry(int) -> int", 0, body.clone()),
            ComponentId::from_raw(1),
        );
        // Fuel for the first two constituents only; the third faults.
        let (outcome, profile, _, retired) = run_one(&mut r, legacy, true, 2);
        assert_eq!(outcome, RunOutcome::Faulted(VmError::FuelExhausted));
        let profile = profile.expect("profiling enabled");
        assert_eq!(profile.total_instructions(), 2);
        if !legacy {
            assert_eq!(retired.0, 2, "threaded path retired the charged ops");
        }
        profiles.push(profile);
    }
    assert_eq!(profiles[0], profiles[1]);
    assert_eq!(profiles[0], profiles[2]);
}

/// Wrapper that counts enter/exit pairs, as the DFM's thread-activity
/// monitor does, so the inline leaf-call path is checked for balanced
/// notifications.
struct BalanceResolver {
    inner: StaticResolver,
    active: i64,
    enters: u64,
}

impl CallResolver for BalanceResolver {
    fn resolve(
        &mut self,
        function: &FunctionName,
        origin: CallOrigin,
    ) -> Result<ResolvedCall, ResolveError> {
        self.inner.resolve(function, origin)
    }

    fn resolve_with_token(
        &mut self,
        function: &FunctionName,
        origin: CallOrigin,
    ) -> Result<(ResolvedCall, Option<dcdo_vm::CallToken>), ResolveError> {
        self.inner.resolve_with_token(function, origin)
    }

    fn resolve_token(&mut self, token: dcdo_vm::CallToken) -> Option<ResolvedCall> {
        self.inner.resolve_token(token)
    }

    fn revalidate_token(&mut self, token: dcdo_vm::CallToken) -> bool {
        self.inner.revalidate_token(token)
    }

    fn enter(&mut self, _function: &FunctionName, _component: ComponentId) {
        self.active += 1;
        self.enters += 1;
    }

    fn exit(&mut self, _function: &FunctionName, _component: ComponentId) {
        self.active -= 1;
        assert!(self.active >= 0, "exit without matching enter");
    }
}

/// A call to a leaf-shaped callee (single fused arith-return, no locals)
/// executes inline, but the result, retirement totals, and the resolver's
/// enter/exit stream must match the framed execution bit-for-bit.
#[test]
fn inline_leaf_calls_are_transparent() {
    let caller = vec![
        Instr::LoadArg(0),
        Instr::CallDyn {
            function: "triple".into(),
            argc: 1,
        },
        Instr::StoreLocal(0),
        Instr::LoadArg(0),
        Instr::CallDyn {
            function: "triple".into(),
            argc: 1,
        },
        Instr::Pop,
        Instr::LoadLocal(0),
        Instr::Ret,
    ];
    let leaf = vec![
        Instr::LoadArg(0),
        Instr::Push(Value::Int(3)),
        Instr::Mul,
        Instr::Ret,
    ];
    let mut results = Vec::new();
    for fuse in [false, true] {
        let mut inner = StaticResolver::new().with_fusion(fuse);
        inner.insert(
            block("entry(int) -> int", 1, caller.clone()),
            ComponentId::from_raw(1),
        );
        inner.insert(
            block("triple(int) -> int", 0, leaf.clone()),
            ComponentId::from_raw(2),
        );
        let mut r = BalanceResolver {
            inner,
            active: 0,
            enters: 0,
        };
        let natives = NativeRegistry::standard();
        let mut globals = ValueStore::new();
        let mut thread = VmThread::call(
            &mut r,
            &"entry".into(),
            vec![Value::Int(11)],
            CallOrigin::External,
        )
        .expect("entry resolves");
        let outcome = thread.run(&mut r, &natives, &mut globals, 1_000);
        assert_eq!(outcome, RunOutcome::Completed(Value::Int(33)));
        assert_eq!(r.active, 0, "every enter saw its exit");
        assert_eq!(r.enters, 3, "entry + two leaf calls");
        let (total, fused_part) = thread.retired_counts();
        if !fuse {
            assert_eq!(fused_part, 0);
        }
        results.push(total);
    }
    assert_eq!(results[0], results[1], "retirement is fusion-invariant");
}

/// A leaf callee that faults (type mismatch inside the inlined body) must
/// unwind identically to the framed path, with balanced enter/exit.
#[test]
fn inline_leaf_call_faults_unwind_identically() {
    let caller = vec![
        // Warm the site with a good call, then fault on a bad argument.
        Instr::LoadArg(0),
        Instr::CallDyn {
            function: "triple".into(),
            argc: 1,
        },
        Instr::Pop,
        Instr::Push(Value::Bool(true)),
        Instr::CallDyn {
            function: "triple".into(),
            argc: 1,
        },
        Instr::Ret,
    ];
    let leaf = vec![
        Instr::LoadArg(0),
        Instr::Push(Value::Int(3)),
        Instr::Mul,
        Instr::Ret,
    ];
    let mut outcomes = Vec::new();
    for (legacy, fuse) in [(true, false), (false, false), (false, true)] {
        let mut r = StaticResolver::new().with_fusion(fuse);
        r.insert(
            block("entry(int) -> int", 0, caller.clone()),
            ComponentId::from_raw(1),
        );
        // `any` parameter so the bool passes the argument check and the
        // fault happens inside the callee's fused body.
        r.insert(
            block("triple(any) -> any", 0, leaf.clone()),
            ComponentId::from_raw(2),
        );
        let (outcome, profile, _, _) = run_one(&mut r, legacy, true, 1_000);
        assert!(
            matches!(outcome, RunOutcome::Faulted(VmError::TypeMismatch { .. })),
            "expected a type fault, got {outcome:?}"
        );
        outcomes.push((outcome, profile.expect("profiled")));
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[0], outcomes[2]);
}

/// Reconfiguration (replacing an implementation) invalidates the cached
/// decode exactly like a stale `CallToken`: the decode counter moves, the
/// invalidation is recorded, and new threads run the new code.
#[test]
fn reconfiguration_invalidates_cached_decodes() {
    let mut r = StaticResolver::new();
    r.insert(
        block(
            "entry(int) -> int",
            0,
            vec![Instr::Push(Value::Int(1)), Instr::Ret],
        ),
        ComponentId::from_raw(1),
    );
    let gen_before = r.generation();
    let (outcome, _, _, _) = run_one(&mut r, false, false, 100);
    assert_eq!(outcome, RunOutcome::Completed(Value::Int(1)));

    r.insert(
        block(
            "entry(int) -> int",
            0,
            vec![Instr::Push(Value::Int(2)), Instr::Ret],
        ),
        ComponentId::from_raw(1),
    );
    assert_ne!(r.generation(), gen_before, "config op bumps the generation");
    let (outcome, _, _, _) = run_one(&mut r, false, false, 100);
    assert_eq!(outcome, RunOutcome::Completed(Value::Int(2)));

    let stats = r.decode_stats();
    assert_eq!(stats.decodes, 2, "each insert decodes once");
    assert_eq!(stats.invalidations, 1, "replacement invalidated the decode");

    // Flipping fusion re-decodes everything, like any other config op.
    let gen_before = r.generation();
    r.set_fusion(!dcdo_vm::fusion_default());
    assert_ne!(r.generation(), gen_before);
    assert_eq!(r.decode_stats().decodes, 3);
    assert_eq!(r.decode_stats().invalidations, 2);
}

//! The calibrated cost model of the substrate.
//!
//! All simulated-time constants live here, fit to the paper's own reported
//! numbers (see DESIGN.md §6). Experiments sweep these in ablations to show
//! the *shape* conclusions are robust to the exact constants.

use dcdo_sim::{SimDuration, SimRng, TransferModel};
use serde::{Deserialize, Serialize};

/// Simulated-time cost constants for the Legion substrate and the DCDO
/// mechanism.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// DFM-mediated dynamic call dispatch: uniform band (paper: 10–15 µs for
    /// self-calls, intra-component, and inter-component calls alike).
    pub dfm_dispatch_min: SimDuration,
    /// Upper edge of the DFM dispatch band.
    pub dfm_dispatch_max: SimDuration,
    /// Direct (statically linked) call dispatch in a monolithic object.
    pub static_dispatch: SimDuration,
    /// Fixed process-creation cost (exec, address-space setup).
    pub process_spawn_base: SimDuration,
    /// Per-function link/registration cost when a process starts.
    pub process_link_per_function: SimDuration,
    /// Mapping one *cached* component into a DCDO (paper: ≈200 µs per
    /// component when components are cached and available).
    pub component_map_cached: SimDuration,
    /// Per-component incorporation overhead when the component is *not*
    /// cached: ICO lookup, metadata roundtrips, registration (dominates the
    /// 50-component ≈10 s creation figure).
    pub component_incorporate_overhead: SimDuration,
    /// Per-function DFM-entry installation cost during incorporation.
    pub dfm_install_per_function: SimDuration,
    /// Bulk implementation transfer model (Legion file transfer; used for
    /// whole executables).
    pub transfer: TransferModel,
    /// Component-data transfer model (ICO object-to-object reads: cheaper
    /// setup than the file-transfer path, same sustained throughput).
    pub component_transfer: TransferModel,
    /// Object state capture, per kilobyte of state.
    pub state_capture_per_kb: SimDuration,
    /// Object state restore, per kilobyte of state.
    pub state_restore_per_kb: SimDuration,
    /// Client-side connect timeout before a send to a cached address is
    /// declared failed.
    pub binding_connect_timeout: SimDuration,
    /// Attempts (first send + retries) against a cached address before the
    /// client falls back to the binding agent.
    pub binding_attempts: u32,
    /// Multiplicative backoff band applied to each successive attempt's
    /// timeout: the factor is drawn uniformly from `[1.0, backoff_jitter]`.
    pub binding_backoff_jitter: f64,
    /// Overall deadline after which an invocation is abandoned with
    /// `Timeout`.
    pub invocation_deadline: SimDuration,
    /// Rebind cycles (drop binding → re-query agent → retry) tolerated
    /// before the caller gives up with `Unreachable`. The first binding is
    /// free; only fallbacks count.
    pub max_rebinds: u32,
    /// Consecutive *unanswered* binding-agent queries tolerated before the
    /// caller gives up with `Unreachable` (an agent that answers "not
    /// bound" resets the count — that is the slow `Timeout` path instead).
    pub max_unanswered_queries: u32,
}

impl CostModel {
    /// The calibrated Centurion configuration (DESIGN.md §6):
    ///
    /// - monolithic creation: `0.2 s + 4 ms × functions` → 500 fns ≈ 2.2 s;
    /// - DCDO creation: ≈156 ms per non-cached component + base → 500 fns in
    ///   50 components ≈ 10 s;
    /// - cached component map: 200 µs;
    /// - transfer: 2 s + size / 256 KiB/s → 5.1 MB ≈ 22 s, 550 KB ≈ 4 s;
    /// - stale-binding discovery: 5 attempts × 5 s × jitter ∈ [1.0, 1.4]
    ///   → 25–35 s.
    pub fn centurion() -> Self {
        CostModel {
            dfm_dispatch_min: SimDuration::from_micros(10),
            dfm_dispatch_max: SimDuration::from_micros(15),
            static_dispatch: SimDuration::from_nanos(500),
            process_spawn_base: SimDuration::from_millis(200),
            process_link_per_function: SimDuration::from_millis(4),
            component_map_cached: SimDuration::from_micros(200),
            component_incorporate_overhead: SimDuration::from_millis(150),
            dfm_install_per_function: SimDuration::from_micros(10),
            transfer: TransferModel::legion_file_transfer(),
            component_transfer: TransferModel {
                setup: SimDuration::from_millis(40),
                throughput_bps: 256.0 * 1024.0,
            },
            state_capture_per_kb: SimDuration::from_micros(400),
            state_restore_per_kb: SimDuration::from_micros(400),
            binding_connect_timeout: SimDuration::from_secs(5),
            binding_attempts: 5,
            binding_backoff_jitter: 1.4,
            invocation_deadline: SimDuration::from_secs(120),
            max_rebinds: 2,
            max_unanswered_queries: 4,
        }
    }

    /// An all-zero / instantaneous model for timing-agnostic unit tests.
    pub fn instant() -> Self {
        CostModel {
            dfm_dispatch_min: SimDuration::ZERO,
            dfm_dispatch_max: SimDuration::ZERO,
            static_dispatch: SimDuration::ZERO,
            process_spawn_base: SimDuration::ZERO,
            process_link_per_function: SimDuration::ZERO,
            component_map_cached: SimDuration::ZERO,
            component_incorporate_overhead: SimDuration::ZERO,
            dfm_install_per_function: SimDuration::ZERO,
            transfer: TransferModel::instant(),
            component_transfer: TransferModel::instant(),
            state_capture_per_kb: SimDuration::ZERO,
            state_restore_per_kb: SimDuration::ZERO,
            binding_connect_timeout: SimDuration::from_millis(100),
            binding_attempts: 2,
            binding_backoff_jitter: 1.0,
            invocation_deadline: SimDuration::from_secs(10),
            max_rebinds: 2,
            max_unanswered_queries: 3,
        }
    }

    /// Draws one DFM dispatch cost from the configured band.
    pub fn dfm_dispatch(&self, rng: &mut SimRng) -> SimDuration {
        rng.duration_between(self.dfm_dispatch_min, self.dfm_dispatch_max)
    }

    /// Process-creation cost for an executable exposing `functions`
    /// functions.
    pub fn process_creation(&self, functions: usize) -> SimDuration {
        self.process_spawn_base + self.process_link_per_function * functions as u64
    }

    /// State capture cost for `bytes` of object state.
    pub fn state_capture(&self, bytes: u64) -> SimDuration {
        self.state_capture_per_kb * bytes.div_ceil(1024)
    }

    /// State restore cost for `bytes` of object state.
    pub fn state_restore(&self, bytes: u64) -> SimDuration {
        self.state_restore_per_kb * bytes.div_ceil(1024)
    }

    /// Incorporation cost for one component with `functions` functions,
    /// given whether its data is already cached on the host.
    pub fn component_incorporation(&self, functions: usize, cached: bool) -> SimDuration {
        let map = if cached {
            self.component_map_cached
        } else {
            self.component_incorporate_overhead
        };
        map + self.dfm_install_per_function * functions as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::centurion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolithic_creation_matches_paper() {
        let m = CostModel::centurion();
        let t = m.process_creation(500).as_secs_f64();
        assert!(
            (2.1..=2.3).contains(&t),
            "500 functions -> {t}s (paper: 2.2s)"
        );
    }

    #[test]
    fn dcdo_creation_with_50_components_lands_near_10s() {
        let m = CostModel::centurion();
        // 50 components x 10 small functions, none cached: each pays the
        // incorporation overhead plus an ICO read, then process spawn.
        let per_component =
            m.component_incorporation(10, false) + m.component_transfer.transfer_time(2_000);
        let total = m.process_spawn_base + per_component * 50;
        let t = total.as_secs_f64();
        assert!(
            (8.0..=12.0).contains(&t),
            "50 components -> {t}s (paper: ~10s)"
        );
    }

    #[test]
    fn cached_component_is_about_200_micros() {
        let m = CostModel::centurion();
        let t = m.component_incorporation(0, true);
        assert_eq!(t, SimDuration::from_micros(200));
        // With a handful of functions it stays in the same order.
        assert!(m.component_incorporation(10, true) < SimDuration::from_micros(500));
    }

    #[test]
    fn dfm_dispatch_band_is_10_to_15_micros() {
        let m = CostModel::centurion();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..200 {
            let d = m.dfm_dispatch(&mut rng);
            assert!(
                d >= SimDuration::from_micros(10) && d <= SimDuration::from_micros(15),
                "{d}"
            );
        }
    }

    #[test]
    fn state_costs_scale_with_size() {
        let m = CostModel::centurion();
        assert!(m.state_capture(1 << 20) > m.state_capture(1 << 10));
        assert_eq!(m.state_restore(0), SimDuration::ZERO);
        // Partial kilobytes round up.
        assert_eq!(m.state_capture(1), m.state_capture(1024));
    }

    #[test]
    fn worst_case_stale_binding_band() {
        let m = CostModel::centurion();
        let min = m.binding_connect_timeout * m.binding_attempts as u64;
        let max = min.mul_f64(m.binding_backoff_jitter);
        assert!((24.0..=26.0).contains(&min.as_secs_f64()));
        assert!((34.0..=36.0).contains(&max.as_secs_f64()));
    }
}

//! Vaults: persistent storage for object state.
//!
//! Legion vaults hold the serialized state of deactivated objects. The
//! evolution and migration pipelines park captured state here between
//! killing the old process and restoring into the new one.

use std::collections::HashMap;

use bytes::Bytes;
use dcdo_sim::{Actor, ActorId, Ctx};
use dcdo_types::ObjectId;

use crate::control_payload;
use crate::msg::{Ack, ControlOp, InvocationFault, Msg};

/// Control op: persist a state blob for `owner`.
#[derive(Debug, Clone)]
pub struct SaveState {
    /// The object whose state this is.
    pub owner: ObjectId,
    /// The captured state.
    pub bytes: Bytes,
}

control_payload!(
    SaveState,
    "save-state",
    wire_size = |op| 32 + op.bytes.len() as u64
);

/// Control op: load the persisted state blob of `owner`.
#[derive(Debug, Clone)]
pub struct LoadState {
    /// The object whose state is wanted.
    pub owner: ObjectId,
}

control_payload!(LoadState, "load-state");

/// Control reply to [`LoadState`].
#[derive(Debug, Clone)]
pub struct LoadedState {
    /// The object asked about.
    pub owner: ObjectId,
    /// The stored blob, if any.
    pub bytes: Option<Bytes>,
}

control_payload!(
    LoadedState,
    "loaded-state",
    wire_size = |op| { 32 + op.bytes.as_ref().map_or(0, |b| b.len() as u64) }
);

/// A vault: persistent object-state storage.
#[derive(Debug)]
pub struct Vault {
    object: ObjectId,
    blobs: HashMap<ObjectId, Bytes>,
}

impl Vault {
    /// Creates a vault with the given object identity.
    pub fn new(object: ObjectId) -> Self {
        Vault {
            object,
            blobs: HashMap::new(),
        }
    }

    /// The vault's object identity.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// Number of state blobs held.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Returns `true` if the vault holds no state.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Direct (driver-side) lookup.
    pub fn stored_state(&self, owner: ObjectId) -> Option<&Bytes> {
        self.blobs.get(&owner)
    }
}

impl Actor<Msg> for Vault {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Control { call, target, op } => {
                if target != self.object {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Err(InvocationFault::NoSuchObject(target)),
                        },
                    );
                    return;
                }
                let result: Result<ControlOp, InvocationFault> =
                    if let Some(save) = op.as_any().downcast_ref::<SaveState>() {
                        self.blobs.insert(save.owner, save.bytes.clone());
                        ctx.metrics().incr("vault.saves");
                        Ok(ControlOp::new(Ack))
                    } else if let Some(load) = op.as_any().downcast_ref::<LoadState>() {
                        ctx.metrics().incr("vault.loads");
                        Ok(ControlOp::new(LoadedState {
                            owner: load.owner,
                            bytes: self.blobs.get(&load.owner).cloned(),
                        }))
                    } else {
                        Err(InvocationFault::Refused(format!(
                            "vault does not understand {}",
                            op.describe()
                        )))
                    };
                ctx.send(from, Msg::ControlReply { call, result });
            }
            Msg::Invoke { call, function, .. } => {
                ctx.send(
                    from,
                    Msg::Reply {
                        call,
                        result: Err(InvocationFault::NoSuchFunction(function)),
                    },
                );
            }
            Msg::Reply { .. } | Msg::ControlReply { .. } | Msg::Progress { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "vault"
    }
}

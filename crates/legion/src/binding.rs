//! Binding agents: the Legion naming layer from object identity to
//! physical address.
//!
//! A *binding* maps an [`ObjectId`] to the physical address where the
//! object's process currently runs (in the simulation, the [`ActorId`]).
//! Clients cache bindings; when an object migrates or is recreated the
//! cached address goes stale, and a client discovers this only by timing
//! out against the dead address — the paper measures 25–35 seconds for this
//! discovery (§4, "Cost"). The client-side machinery lives in
//! [`rpc`](crate::rpc); this module provides the agent that holds the
//! authoritative map.

use std::collections::HashMap;

use dcdo_sim::{Actor, ActorId, Ctx, SpanKind};
use dcdo_types::ObjectId;

use crate::control_payload;
use crate::msg::{Ack, ControlOp, InvocationFault, Msg};

/// Registers (or updates) the binding for an object.
#[derive(Debug, Clone)]
pub struct RegisterBinding {
    /// The object being bound.
    pub object: ObjectId,
    /// The physical address its process now runs at.
    pub address: ActorId,
}

control_payload!(RegisterBinding, "register-binding");

/// Removes the binding for an object (deactivation or deletion).
#[derive(Debug, Clone)]
pub struct UnregisterBinding {
    /// The object whose binding is removed.
    pub object: ObjectId,
}

control_payload!(UnregisterBinding, "unregister-binding");

/// Drops every binding that points at one of the given physical addresses.
///
/// Recovery layers send this when a host crashes: the actors that lived on
/// it are gone, so any binding still naming them would send clients into
/// the slow stale-binding timeout path. Answered with
/// [`InvalidatedBindings`].
#[derive(Debug, Clone)]
pub struct InvalidateBindings {
    /// Addresses that are no longer valid (e.g. actors of a crashed node).
    pub addresses: Vec<ActorId>,
}

control_payload!(
    InvalidateBindings,
    "invalidate-bindings",
    wire_size = |op| 16 + op.addresses.len() as u64 * 8
);

/// The answer to an [`InvalidateBindings`]: how many bindings were dropped.
#[derive(Debug, Clone)]
pub struct InvalidatedBindings {
    /// Objects whose bindings were removed.
    pub removed: Vec<ObjectId>,
}

control_payload!(
    InvalidatedBindings,
    "invalidated-bindings",
    wire_size = |op| 16 + op.removed.len() as u64 * 8
);

/// Asks for the current binding of an object.
#[derive(Debug, Clone)]
pub struct QueryBinding {
    /// The object being located.
    pub object: ObjectId,
}

control_payload!(QueryBinding, "query-binding");

/// The answer to a [`QueryBinding`].
#[derive(Debug, Clone)]
pub struct BindingResult {
    /// The object asked about.
    pub object: ObjectId,
    /// Its current address, or `None` if it has no active process.
    pub address: Option<ActorId>,
}

control_payload!(BindingResult, "binding-result");

/// The binding agent: authoritative ObjectId → physical-address map.
#[derive(Debug)]
pub struct BindingAgent {
    object: ObjectId,
    bindings: HashMap<ObjectId, ActorId>,
    queries_served: u64,
}

impl BindingAgent {
    /// Creates a binding agent with the given object identity.
    pub fn new(object: ObjectId) -> Self {
        BindingAgent {
            object,
            bindings: HashMap::new(),
            queries_served: 0,
        }
    }

    /// The agent's own object identity.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// Direct (driver-side) registration, used during scenario setup.
    pub fn register(&mut self, object: ObjectId, address: ActorId) {
        self.bindings.insert(object, address);
    }

    /// Direct (driver-side) lookup.
    pub fn lookup(&self, object: ObjectId) -> Option<ActorId> {
        self.bindings.get(&object).copied()
    }

    /// Number of query operations served over the wire.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Drops every binding that points at one of `addresses`; returns the
    /// objects that lost their binding (driver-side twin of
    /// [`InvalidateBindings`]).
    pub fn invalidate_addresses(&mut self, addresses: &[ActorId]) -> Vec<ObjectId> {
        let mut removed: Vec<ObjectId> = self
            .bindings
            .iter()
            .filter(|(_, a)| addresses.contains(a))
            .map(|(o, _)| *o)
            .collect();
        removed.sort_unstable();
        for object in &removed {
            self.bindings.remove(object);
        }
        removed
    }
}

impl Actor<Msg> for BindingAgent {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Control { call, op, .. } => {
                let result: Result<ControlOp, InvocationFault> =
                    if let Some(reg) = op.as_any().downcast_ref::<RegisterBinding>() {
                        self.bindings.insert(reg.object, reg.address);
                        ctx.metrics().incr("binding.registered");
                        if ctx.tracing_enabled() {
                            ctx.emit_span(SpanKind::BindingRegistered {
                                object: reg.object.as_raw(),
                                dst: reg.address.as_raw(),
                            });
                        }
                        Ok(ControlOp::new(Ack))
                    } else if let Some(unreg) = op.as_any().downcast_ref::<UnregisterBinding>() {
                        self.bindings.remove(&unreg.object);
                        if ctx.tracing_enabled() {
                            ctx.emit_span(SpanKind::BindingInvalidated {
                                object: unreg.object.as_raw(),
                            });
                        }
                        Ok(ControlOp::new(Ack))
                    } else if let Some(inv) = op.as_any().downcast_ref::<InvalidateBindings>() {
                        let removed = self.invalidate_addresses(&inv.addresses);
                        ctx.metrics()
                            .add("binding.invalidated", removed.len() as u64);
                        if ctx.tracing_enabled() {
                            for object in &removed {
                                ctx.emit_span(SpanKind::BindingInvalidated {
                                    object: object.as_raw(),
                                });
                            }
                        }
                        Ok(ControlOp::new(InvalidatedBindings { removed }))
                    } else if let Some(query) = op.as_any().downcast_ref::<QueryBinding>() {
                        self.queries_served += 1;
                        ctx.metrics().incr("binding.queries");
                        Ok(ControlOp::new(BindingResult {
                            object: query.object,
                            address: self.bindings.get(&query.object).copied(),
                        }))
                    } else {
                        Err(InvocationFault::Refused(format!(
                            "binding agent does not understand {}",
                            op.describe()
                        )))
                    };
                ctx.send(from, Msg::ControlReply { call, result });
            }
            Msg::Invoke { call, function, .. } => {
                // Binding agents export no user-level functions.
                ctx.send(
                    from,
                    Msg::Reply {
                        call,
                        result: Err(InvocationFault::NoSuchFunction(function)),
                    },
                );
            }
            Msg::Reply { .. } | Msg::ControlReply { .. } | Msg::Progress { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "binding-agent"
    }
}

#[cfg(test)]
mod tests {
    use dcdo_sim::{NetConfig, NodeId, Simulation};
    use dcdo_types::CallId;

    use super::*;
    use crate::msg::ControlPayload;

    /// Driver actor that records control replies it receives.
    #[derive(Default)]
    struct Probe {
        replies: Vec<Result<ControlOp, InvocationFault>>,
    }

    impl Actor<Msg> for Probe {
        fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
            if let Msg::ControlReply { result, .. } = msg {
                self.replies.push(result);
            }
        }
    }

    fn setup() -> (Simulation<Msg>, ActorId, ActorId, ObjectId) {
        let mut sim = Simulation::new(NetConfig::instant(), 1);
        let agent_obj = ObjectId::from_raw(1);
        let agent = sim.spawn(NodeId::from_raw(0), BindingAgent::new(agent_obj));
        let probe = sim.spawn(NodeId::from_raw(1), Probe::default());
        (sim, agent, probe, agent_obj)
    }

    fn control(call: u64, target: ObjectId, op: impl ControlPayload) -> Msg {
        Msg::Control {
            call: CallId::from_raw(call),
            target,
            op: ControlOp::new(op),
        }
    }

    #[test]
    fn register_then_query_round_trip() {
        let (mut sim, agent, probe, agent_obj) = setup();
        let obj = ObjectId::from_raw(42);
        let addr = ActorId::from_raw(9);
        sim.post(
            probe,
            agent,
            control(
                1,
                agent_obj,
                RegisterBinding {
                    object: obj,
                    address: addr,
                },
            ),
        );
        sim.post(
            probe,
            agent,
            control(2, agent_obj, QueryBinding { object: obj }),
        );
        sim.run_until_idle();
        let probe_ref = sim.actor::<Probe>(probe).expect("alive");
        assert_eq!(probe_ref.replies.len(), 2);
        let result = probe_ref.replies[1].as_ref().expect("query succeeds");
        let binding = result
            .as_any()
            .downcast_ref::<BindingResult>()
            .expect("binding result");
        assert_eq!(binding.address, Some(addr));
    }

    #[test]
    fn query_for_unbound_object_returns_none() {
        let (mut sim, agent, probe, agent_obj) = setup();
        sim.post(
            probe,
            agent,
            control(
                1,
                agent_obj,
                QueryBinding {
                    object: ObjectId::from_raw(404),
                },
            ),
        );
        sim.run_until_idle();
        let probe_ref = sim.actor::<Probe>(probe).expect("alive");
        let result = probe_ref.replies[0].as_ref().expect("query succeeds");
        let binding = result
            .as_any()
            .downcast_ref::<BindingResult>()
            .expect("binding result");
        assert_eq!(binding.address, None);
    }

    #[test]
    fn unregister_removes_binding() {
        let (mut sim, agent, probe, agent_obj) = setup();
        let obj = ObjectId::from_raw(5);
        sim.post(
            probe,
            agent,
            control(
                1,
                agent_obj,
                RegisterBinding {
                    object: obj,
                    address: ActorId::from_raw(3),
                },
            ),
        );
        sim.post(
            probe,
            agent,
            control(2, agent_obj, UnregisterBinding { object: obj }),
        );
        sim.post(
            probe,
            agent,
            control(3, agent_obj, QueryBinding { object: obj }),
        );
        sim.run_until_idle();
        let probe_ref = sim.actor::<Probe>(probe).expect("alive");
        let result = probe_ref.replies[2].as_ref().expect("query succeeds");
        let binding = result
            .as_any()
            .downcast_ref::<BindingResult>()
            .expect("binding result");
        assert_eq!(binding.address, None);
    }

    #[test]
    fn invalidate_drops_only_bindings_at_dead_addresses() {
        let (mut sim, agent, probe, agent_obj) = setup();
        let dead = ActorId::from_raw(3);
        let alive = ActorId::from_raw(4);
        let (a, b, c) = (
            ObjectId::from_raw(10),
            ObjectId::from_raw(11),
            ObjectId::from_raw(12),
        );
        for (obj, addr) in [(a, dead), (b, dead), (c, alive)] {
            sim.post(
                probe,
                agent,
                control(
                    obj.as_raw(),
                    agent_obj,
                    RegisterBinding {
                        object: obj,
                        address: addr,
                    },
                ),
            );
        }
        sim.post(
            probe,
            agent,
            control(
                99,
                agent_obj,
                InvalidateBindings {
                    addresses: vec![dead],
                },
            ),
        );
        sim.run_until_idle();
        let probe_ref = sim.actor::<Probe>(probe).expect("alive");
        let reply = probe_ref
            .replies
            .last()
            .expect("reply")
            .as_ref()
            .expect("ok");
        let inv = reply
            .as_any()
            .downcast_ref::<InvalidatedBindings>()
            .expect("invalidated-bindings");
        assert_eq!(inv.removed, vec![a, b]);
        let agent_ref = sim.actor::<BindingAgent>(agent).expect("alive");
        assert_eq!(agent_ref.lookup(a), None);
        assert_eq!(agent_ref.lookup(b), None);
        assert_eq!(agent_ref.lookup(c), Some(alive));
    }

    #[test]
    fn user_invocations_are_rejected() {
        let (mut sim, agent, probe, agent_obj) = setup();
        sim.post(
            probe,
            agent,
            Msg::Invoke {
                call: CallId::from_raw(1),
                target: agent_obj,
                function: "anything".into(),
                args: vec![],
            },
        );
        sim.run_until_idle();
        // The probe only records ControlReply; the Reply is observed via
        // dead-silence here, so check the agent served no queries instead.
        assert_eq!(
            sim.actor::<BindingAgent>(agent)
                .expect("alive")
                .queries_served(),
            0
        );
    }

    #[test]
    fn direct_register_lookup() {
        let mut agent = BindingAgent::new(ObjectId::from_raw(1));
        let obj = ObjectId::from_raw(2);
        assert_eq!(agent.lookup(obj), None);
        agent.register(obj, ActorId::from_raw(7));
        assert_eq!(agent.lookup(obj), Some(ActorId::from_raw(7)));
    }
}

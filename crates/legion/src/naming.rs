//! Context space: the human-readable hierarchical namespace.
//!
//! Legion names objects with hierarchical context paths (like a filesystem)
//! that resolve to object identifiers; the DCDO model leans on this global
//! namespace so implementation components can be *named* rather than copied
//! around (§2.3). The context space maps paths to [`ObjectId`]s; binding
//! agents then map identities to physical addresses.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use dcdo_sim::{Actor, ActorId, Ctx};
use dcdo_types::ObjectId;
use serde::{Deserialize, Serialize};

use crate::control_payload;
use crate::msg::{Ack, ControlOp, InvocationFault, Msg};

/// A hierarchical context path like `/home/components/sorting-v2`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContextPath(String);

impl ContextPath {
    /// The root context, `/`.
    pub fn root() -> Self {
        ContextPath("/".to_owned())
    }

    /// Returns the path as a string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the path segments.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.0.split('/').filter(|s| !s.is_empty())
    }

    /// Appends a segment.
    ///
    /// # Panics
    ///
    /// Panics if `segment` is empty or contains `/`.
    pub fn join(&self, segment: &str) -> ContextPath {
        assert!(
            !segment.is_empty() && !segment.contains('/'),
            "invalid path segment {segment:?}"
        );
        if self.0 == "/" {
            ContextPath(format!("/{segment}"))
        } else {
            ContextPath(format!("{}/{segment}", self.0))
        }
    }

    /// Returns `true` if `self` is a (non-strict) prefix context of `other`.
    pub fn contains(&self, other: &ContextPath) -> bool {
        if self.0 == "/" {
            return true;
        }
        other.0 == self.0 || other.0.starts_with(&format!("{}/", self.0))
    }
}

impl fmt::Display for ContextPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Error returned when parsing a [`ContextPath`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    input: String,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid context path {:?}: must start with '/' and have no empty segments",
            self.input
        )
    }
}

impl std::error::Error for ParsePathError {}

impl FromStr for ContextPath {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePathError {
            input: s.to_owned(),
        };
        if s == "/" {
            return Ok(ContextPath::root());
        }
        if !s.starts_with('/') || s.ends_with('/') {
            return Err(err());
        }
        if s[1..].split('/').any(str::is_empty) {
            return Err(err());
        }
        Ok(ContextPath(s.to_owned()))
    }
}

/// Control op: bind a path to an object.
#[derive(Debug, Clone)]
pub struct BindName {
    /// The path to bind.
    pub path: ContextPath,
    /// The object it names.
    pub object: ObjectId,
}

control_payload!(BindName, "bind-name");

/// Control op: remove a path binding.
#[derive(Debug, Clone)]
pub struct UnbindName {
    /// The path to remove.
    pub path: ContextPath,
}

control_payload!(UnbindName, "unbind-name");

/// Control op: resolve a path.
#[derive(Debug, Clone)]
pub struct LookupName {
    /// The path to resolve.
    pub path: ContextPath,
}

control_payload!(LookupName, "lookup-name");

/// Control reply to [`LookupName`].
#[derive(Debug, Clone)]
pub struct NameResult {
    /// The path asked about.
    pub path: ContextPath,
    /// The object it names, if bound.
    pub object: Option<ObjectId>,
}

control_payload!(NameResult, "name-result");

/// Control op: list bindings under a context.
#[derive(Debug, Clone)]
pub struct ListContext {
    /// The context to list.
    pub context: ContextPath,
}

control_payload!(ListContext, "list-context");

/// Control reply to [`ListContext`].
#[derive(Debug, Clone)]
pub struct ContextListing {
    /// The bindings under the requested context, in path order.
    pub entries: Vec<(ContextPath, ObjectId)>,
}

control_payload!(
    ContextListing,
    "context-listing",
    wire_size = |op| {
        32 + op
            .entries
            .iter()
            .map(|(p, _)| p.as_str().len() as u64 + 8)
            .sum::<u64>()
    }
);

/// The context-space object: hierarchical path → object map.
#[derive(Debug)]
pub struct ContextSpace {
    object: ObjectId,
    bindings: BTreeMap<ContextPath, ObjectId>,
}

impl ContextSpace {
    /// Creates an empty context space.
    pub fn new(object: ObjectId) -> Self {
        ContextSpace {
            object,
            bindings: BTreeMap::new(),
        }
    }

    /// The context space's object identity.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// Direct (driver-side) bind.
    pub fn bind(&mut self, path: ContextPath, object: ObjectId) {
        self.bindings.insert(path, object);
    }

    /// Direct (driver-side) lookup.
    pub fn lookup(&self, path: &ContextPath) -> Option<ObjectId> {
        self.bindings.get(path).copied()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Returns `true` if the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

impl Actor<Msg> for ContextSpace {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Control { call, target, op } => {
                if target != self.object {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Err(InvocationFault::NoSuchObject(target)),
                        },
                    );
                    return;
                }
                let result: Result<ControlOp, InvocationFault> =
                    if let Some(bind) = op.as_any().downcast_ref::<BindName>() {
                        self.bindings.insert(bind.path.clone(), bind.object);
                        Ok(ControlOp::new(Ack))
                    } else if let Some(unbind) = op.as_any().downcast_ref::<UnbindName>() {
                        self.bindings.remove(&unbind.path);
                        Ok(ControlOp::new(Ack))
                    } else if let Some(lookup) = op.as_any().downcast_ref::<LookupName>() {
                        Ok(ControlOp::new(NameResult {
                            path: lookup.path.clone(),
                            object: self.bindings.get(&lookup.path).copied(),
                        }))
                    } else if let Some(list) = op.as_any().downcast_ref::<ListContext>() {
                        let entries = self
                            .bindings
                            .iter()
                            .filter(|(p, _)| list.context.contains(p))
                            .map(|(p, o)| (p.clone(), *o))
                            .collect();
                        Ok(ControlOp::new(ContextListing { entries }))
                    } else {
                        Err(InvocationFault::Refused(format!(
                            "context space does not understand {}",
                            op.describe()
                        )))
                    };
                ctx.send(from, Msg::ControlReply { call, result });
            }
            Msg::Invoke { call, function, .. } => {
                ctx.send(
                    from,
                    Msg::Reply {
                        call,
                        result: Err(InvocationFault::NoSuchFunction(function)),
                    },
                );
            }
            Msg::Reply { .. } | Msg::ControlReply { .. } | Msg::Progress { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "context-space"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_parse_and_display() {
        let p: ContextPath = "/home/components/sort".parse().expect("valid");
        assert_eq!(p.to_string(), "/home/components/sort");
        assert_eq!(
            p.segments().collect::<Vec<_>>(),
            vec!["home", "components", "sort"]
        );
        assert_eq!(ContextPath::root().to_string(), "/");
    }

    #[test]
    fn path_parse_rejects_malformed() {
        for bad in ["", "relative", "/a//b", "/trailing/"] {
            assert!(bad.parse::<ContextPath>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn path_join_and_contains() {
        let home: ContextPath = "/home".parse().expect("valid");
        let sub = home.join("components");
        assert_eq!(sub.to_string(), "/home/components");
        assert!(home.contains(&sub));
        assert!(home.contains(&home));
        assert!(!sub.contains(&home));
        assert!(ContextPath::root().contains(&home));
        let homer: ContextPath = "/homer".parse().expect("valid");
        assert!(!home.contains(&homer), "prefix must respect segment bounds");
    }

    #[test]
    #[should_panic(expected = "invalid path segment")]
    fn join_rejects_bad_segment() {
        let _ = ContextPath::root().join("a/b");
    }

    #[test]
    fn direct_bind_lookup() {
        let mut cs = ContextSpace::new(ObjectId::from_raw(1));
        let p: ContextPath = "/svc".parse().expect("valid");
        assert!(cs.is_empty());
        cs.bind(p.clone(), ObjectId::from_raw(9));
        assert_eq!(cs.lookup(&p), Some(ObjectId::from_raw(9)));
        assert_eq!(cs.len(), 1);
    }
}

//! Normal Legion objects: static monolithic executables.
//!
//! This is the baseline the paper compares DCDOs against. A monolithic
//! object's implementation is one [`ExecutableImage`] fixed at link time:
//! every function is implicitly exported and enabled, calls dispatch through
//! a frozen [`StaticResolver`], and the *only* way to change behavior is to
//! replace the whole executable — deactivate, capture state, download the
//! new binary, create a new process, restore state, re-register the binding
//! (§4 "Cost"). Clients holding the old address then pay the 25–35 s
//! stale-binding discovery.

use bytes::Bytes;
use dcdo_sim::{Actor, ActorId, Ctx};
use dcdo_types::{ComponentId, ObjectId};
use dcdo_vm::{CodeBlock, NativeRegistry, StaticResolver, ValueStore};

use crate::control_payload;
use crate::cost::CostModel;
use crate::msg::{Ack, ControlOp, InvocationFault, Msg};
use crate::object::ObjectRuntime;
use crate::rpc::{Handled, RpcClient};

/// A statically linked executable: the complete implementation of a normal
/// Legion object.
#[derive(Debug, Clone)]
pub struct ExecutableImage {
    version: u32,
    functions: Vec<CodeBlock>,
    size_bytes: u64,
}

impl ExecutableImage {
    /// Creates an image. `size_bytes` is the binary's on-disk size (the
    /// paper's moderately sized Legion implementations are ≈5.1 MB; small
    /// ones ≈550 KB).
    pub fn new(version: u32, functions: Vec<CodeBlock>, size_bytes: u64) -> Self {
        ExecutableImage {
            version,
            functions,
            size_bytes,
        }
    }

    /// The image's version number (monotonic per class).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The functions linked into the image.
    pub fn functions(&self) -> &[CodeBlock] {
        &self.functions
    }

    /// The binary size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Builds the frozen call table for a process running this image.
    ///
    /// [`StaticResolver`] uses the same slot-table + generation-stamped
    /// token machinery as the DFM, so monolithic call sites enjoy the same
    /// inline-cache hits; the table being frozen just means the generation
    /// never changes after this method returns.
    pub fn resolver(&self, cost: &CostModel) -> StaticResolver {
        let mut r = StaticResolver::new().with_dispatch_cost_nanos(cost.static_dispatch.as_nanos());
        // A monolithic executable is logically one big component.
        let component = ComponentId::from_raw(0);
        for code in &self.functions {
            r.insert(code.clone(), component);
        }
        r
    }
}

/// Control op: capture the object's state for migration/evolution.
#[derive(Debug, Clone)]
pub struct CaptureState;

control_payload!(CaptureState, "capture-state");

/// Control reply: the captured state blob.
#[derive(Debug, Clone)]
pub struct StateBlob {
    /// The serialized [`ValueStore`].
    pub bytes: Bytes,
}

control_payload!(
    StateBlob,
    "state-blob",
    wire_size = |b| 32 + b.bytes.len() as u64
);

/// Control op: restore previously captured state into the object.
#[derive(Debug, Clone)]
pub struct RestoreState {
    /// The serialized [`ValueStore`] produced by [`CaptureState`].
    pub bytes: Bytes,
}

control_payload!(
    RestoreState,
    "restore-state",
    wire_size = |b| 32 + b.bytes.len() as u64
);

/// Control op: report the implementation version the object runs.
#[derive(Debug, Clone)]
pub struct QueryVersion;

control_payload!(QueryVersion, "query-version");

/// Control reply to [`QueryVersion`].
#[derive(Debug, Clone)]
pub struct VersionReport {
    /// The executable image version (monolithic) or encoded DCDO version.
    pub version: u32,
    /// Number of functions in the interface.
    pub functions: usize,
}

control_payload!(VersionReport, "version-report");

/// Control op: deactivate the object (its process exits).
#[derive(Debug, Clone)]
pub struct Deactivate;

control_payload!(Deactivate, "deactivate");

/// An active normal Legion object: one process running one monolithic
/// executable.
pub struct MonolithicObject {
    object: ObjectId,
    runtime: ObjectRuntime,
    resolver: StaticResolver,
    natives: NativeRegistry,
    rpc: RpcClient,
    state: ValueStore,
    image_version: u32,
    function_count: usize,
}

impl MonolithicObject {
    /// Creates an active object running `image`.
    pub fn new(
        object: ObjectId,
        image: &ExecutableImage,
        cost: &CostModel,
        rpc: RpcClient,
    ) -> Self {
        MonolithicObject {
            object,
            runtime: ObjectRuntime::new(object),
            resolver: image.resolver(cost),
            natives: NativeRegistry::standard(),
            rpc,
            state: ValueStore::new(),
            image_version: image.version(),
            function_count: image.functions().len(),
        }
    }

    /// The object's identity.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// The image version this process runs.
    pub fn image_version(&self) -> u32 {
        self.image_version
    }

    /// The object's persistent state (driver-side inspection).
    pub fn state(&self) -> &ValueStore {
        &self.state
    }

    /// Mutable state access for scenario setup.
    pub fn state_mut(&mut self) -> &mut ValueStore {
        &mut self.state
    }

    /// Invocations served so far.
    pub fn invocations_served(&self) -> u64 {
        self.runtime.invocations_served()
    }

    fn handle_control(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ActorId,
        call: dcdo_types::CallId,
        op: ControlOp,
    ) {
        let result: Result<ControlOp, InvocationFault> =
            if op.as_any().downcast_ref::<CaptureState>().is_some() {
                Ok(ControlOp::new(StateBlob {
                    bytes: self.state.capture(),
                }))
            } else if let Some(restore) = op.as_any().downcast_ref::<RestoreState>() {
                match ValueStore::restore(restore.bytes.clone()) {
                    Ok(state) => {
                        self.state = state;
                        Ok(ControlOp::new(Ack))
                    }
                    Err(e) => Err(InvocationFault::Refused(format!("bad state blob: {e}"))),
                }
            } else if op.as_any().downcast_ref::<QueryVersion>().is_some() {
                Ok(ControlOp::new(VersionReport {
                    version: self.image_version,
                    functions: self.function_count,
                }))
            } else if op.as_any().downcast_ref::<Deactivate>().is_some() {
                let me = ctx.self_id();
                ctx.kill(me);
                Ok(ControlOp::new(Ack))
            } else {
                Err(InvocationFault::Refused(format!(
                    "monolithic object does not understand {}",
                    op.describe()
                )))
            };
        ctx.send(from, Msg::ControlReply { call, result });
    }
}

impl Actor<Msg> for MonolithicObject {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Invoke {
                call,
                target,
                function,
                args,
            } => {
                if target != self.object {
                    ctx.send(
                        from,
                        Msg::Reply {
                            call,
                            result: Err(InvocationFault::NoSuchObject(target)),
                        },
                    );
                    return;
                }
                self.runtime.handle_invoke(
                    ctx,
                    from,
                    call,
                    function,
                    args,
                    &mut self.resolver,
                    &self.natives,
                    &mut self.state,
                    &mut self.rpc,
                );
            }
            Msg::Control { call, target, op } => {
                if target != self.object {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Err(InvocationFault::NoSuchObject(target)),
                        },
                    );
                    return;
                }
                self.handle_control(ctx, from, call, op);
            }
            reply => match self.rpc.handle_message(ctx, reply) {
                Handled::Completed(completion) => {
                    if self.runtime.owns_completion(&completion) {
                        self.runtime.handle_outcall_completion(
                            ctx,
                            completion,
                            &mut self.resolver,
                            &self.natives,
                            &mut self.state,
                            &mut self.rpc,
                        );
                    }
                }
                Handled::InProgress | Handled::Stale | Handled::NotMine(_) => {}
            },
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if self.rpc.owns_timer(token) {
            if let Some(completion) = self.rpc.handle_timer(ctx, token) {
                if self.runtime.owns_completion(&completion) {
                    self.runtime.handle_outcall_completion(
                        ctx,
                        completion,
                        &mut self.resolver,
                        &self.natives,
                        &mut self.state,
                        &mut self.rpc,
                    );
                }
            }
            return;
        }
        self.runtime.handle_timer(
            ctx,
            token,
            &mut self.resolver,
            &self.natives,
            &mut self.state,
            &mut self.rpc,
        );
    }

    fn name(&self) -> &str {
        "monolithic-object"
    }
}

impl std::fmt::Debug for MonolithicObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonolithicObject")
            .field("object", &self.object)
            .field("image_version", &self.image_version)
            .field("functions", &self.function_count)
            .finish()
    }
}

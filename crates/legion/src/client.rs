//! A scriptable client object.
//!
//! Drivers (tests, benches, examples) use [`ClientObject`] to issue
//! invocations and control operations from "user" objects and collect the
//! completions, including the binding-discovery statistics the experiments
//! measure.

use dcdo_sim::{Actor, ActorId, Ctx};
use dcdo_types::{CallId, ObjectId};
use dcdo_vm::Value;

use crate::cost::CostModel;
use crate::msg::{ControlOp, Msg};
use crate::rpc::{AgentAddress, Handled, RpcClient, RpcCompletion};

/// A client: a Legion object that only makes calls.
pub struct ClientObject {
    object: ObjectId,
    rpc: RpcClient,
    completions: Vec<RpcCompletion>,
}

impl ClientObject {
    /// Creates a client resolving names through `agent`.
    pub fn new(object: ObjectId, agent: AgentAddress, cost: CostModel) -> Self {
        ClientObject {
            object,
            rpc: RpcClient::new(agent, cost),
            completions: Vec::new(),
        }
    }

    /// The client's object identity.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// Issues a user-level invocation (driver-side via
    /// [`Simulation::with_actor`](dcdo_sim::Simulation::with_actor)).
    pub fn call(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        target: ObjectId,
        function: &str,
        args: Vec<Value>,
    ) -> CallId {
        self.rpc.invoke(ctx, target, function, args)
    }

    /// Issues a control operation.
    pub fn control_op(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        target: ObjectId,
        op: ControlOp,
    ) -> CallId {
        self.rpc.control(ctx, target, op)
    }

    /// Pre-seeds the client's binding cache (models a previously used
    /// binding — the precondition of the stale-binding experiment).
    pub fn seed_binding(&mut self, object: ObjectId, address: ActorId) {
        self.rpc.seed_binding(object, address);
    }

    /// Returns the cached binding, if any.
    pub fn cached_binding(&self, object: ObjectId) -> Option<ActorId> {
        self.rpc.cached_binding(object)
    }

    /// Completions collected so far, in completion order.
    pub fn completions(&self) -> &[RpcCompletion] {
        &self.completions
    }

    /// Drains collected completions.
    pub fn take_completions(&mut self) -> Vec<RpcCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Finds a completion by call id.
    pub fn completion(&self, call: CallId) -> Option<&RpcCompletion> {
        self.completions.iter().find(|c| c.call == call)
    }

    /// Removes and returns the completion for `call`, if it has arrived.
    pub fn take_completion(&mut self, call: CallId) -> Option<RpcCompletion> {
        let idx = self.completions.iter().position(|c| c.call == call)?;
        Some(self.completions.remove(idx))
    }

    /// Calls still in flight.
    pub fn in_flight(&self) -> usize {
        self.rpc.in_flight()
    }
}

impl Actor<Msg> for ClientObject {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
        if let Handled::Completed(completion) = self.rpc.handle_message(ctx, msg) {
            self.completions.push(completion);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if self.rpc.owns_timer(token) {
            if let Some(completion) = self.rpc.handle_timer(ctx, token) {
                self.completions.push(completion);
            }
        }
    }

    fn name(&self) -> &str {
        "client"
    }
}

impl std::fmt::Debug for ClientObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientObject")
            .field("object", &self.object)
            .field("completions", &self.completions.len())
            .field("in_flight", &self.rpc.in_flight())
            .finish()
    }
}

//! Class objects: Legion's managers for normal (monolithic) objects.
//!
//! A class object holds the executable images for its type and drives the
//! heavyweight lifecycle pipelines the paper measures in §4:
//!
//! - **create**: download the executable to the target host (if absent),
//!   create a process (`0.2 s + 4 ms × functions`), register the binding;
//! - **evolve** (the baseline for E6): capture state → download the new
//!   executable → deactivate the old process → create a new process →
//!   restore state → re-register the binding. The old physical address dies,
//!   so clients pay the 25–35 s stale-binding discovery on their next call;
//! - **migrate**: the same pipeline at the current version onto a new host.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use dcdo_sim::{Actor, ActorId, Ctx, NodeId, SimDuration, SimTime};
use dcdo_types::{CallId, ClassId, ObjectId};

use crate::binding::RegisterBinding;
use crate::control_payload;
use crate::cost::CostModel;
use crate::monolithic::{
    CaptureState, Deactivate, ExecutableImage, MonolithicObject, RestoreState, StateBlob,
};
use crate::msg::{ControlOp, InvocationFault, Msg};
use crate::rpc::{AgentAddress, Handled, RpcClient, RpcCompletion};
use crate::vault::{LoadState, LoadedState, SaveState};

/// Control op: create a new instance on `node`.
#[derive(Debug, Clone)]
pub struct CreateInstance {
    /// The node to place the instance on.
    pub node: NodeId,
}

control_payload!(CreateInstance, "create-instance");

/// Control reply: an instance was created.
#[derive(Debug, Clone)]
pub struct InstanceCreated {
    /// The new object's identity.
    pub object: ObjectId,
    /// Its physical address.
    pub address: ActorId,
    /// The image version it runs.
    pub version: u32,
}

control_payload!(InstanceCreated, "instance-created");

/// Control op: install a new executable image and make it current.
#[derive(Debug, Clone)]
pub struct SetCurrentImage {
    /// The new image. Its version must be fresh for this class.
    pub image: ExecutableImage,
}

control_payload!(
    SetCurrentImage,
    "set-current-image",
    wire_size = |op| { 64 + op.image.size_bytes() }
);

/// Control op: evolve an instance to the class's current image (the full
/// monolithic replacement pipeline).
#[derive(Debug, Clone)]
pub struct EvolveInstance {
    /// The instance to evolve.
    pub object: ObjectId,
}

control_payload!(EvolveInstance, "evolve-instance");

/// Control op: migrate an instance to another node at its current version.
#[derive(Debug, Clone)]
pub struct MigrateInstance {
    /// The instance to migrate.
    pub object: ObjectId,
    /// The destination node.
    pub to: NodeId,
}

control_payload!(MigrateInstance, "migrate-instance");

/// Control op: capture an instance's state and park a snapshot in the
/// class's vault, leaving the running process untouched. The snapshot is
/// what [`ReactivateInstance`] restores from after a crash.
#[derive(Debug, Clone)]
pub struct CheckpointInstance {
    /// The instance to checkpoint.
    pub object: ObjectId,
}

control_payload!(CheckpointInstance, "checkpoint-instance");

/// Control reply: a checkpoint was parked in the vault.
#[derive(Debug, Clone)]
pub struct CheckpointDone {
    /// The instance checkpointed.
    pub object: ObjectId,
}

control_payload!(CheckpointDone, "checkpoint-done");

/// Control op: bring a crashed instance back up on `node` from its vault
/// snapshot — download the executable if needed, spawn a fresh process,
/// restore the parked state, and re-register the binding. Requires the
/// class to be configured [`with_vault`](ClassObject::with_vault) and a
/// snapshot to exist (from a [`CheckpointInstance`] or an earlier
/// vault-mediated evolve/migrate).
#[derive(Debug, Clone)]
pub struct ReactivateInstance {
    /// The instance to bring back.
    pub object: ObjectId,
    /// The node to respawn it on (often the restarted host).
    pub node: NodeId,
}

control_payload!(ReactivateInstance, "reactivate-instance");

/// Control reply: an evolve/migrate pipeline finished.
#[derive(Debug, Clone)]
pub struct LifecycleDone {
    /// The instance operated on.
    pub object: ObjectId,
    /// Its (possibly new) physical address.
    pub address: ActorId,
    /// The image version it now runs.
    pub version: u32,
}

control_payload!(LifecycleDone, "lifecycle-done");

/// Control op: list the instances this class manages.
#[derive(Debug, Clone)]
pub struct ListInstances;

control_payload!(ListInstances, "list-instances");

/// Control reply to [`ListInstances`].
#[derive(Debug, Clone)]
pub struct InstanceTable {
    /// `(object, node, image version)` per instance.
    pub entries: Vec<(ObjectId, NodeId, u32)>,
}

control_payload!(InstanceTable, "instance-table");

#[derive(Debug, Clone, Copy)]
struct Instance {
    actor: ActorId,
    node: NodeId,
    version: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Waiting for CaptureState reply from the old process.
    Capture,
    /// Waiting for the state-capture cost timer.
    CaptureCost,
    /// Waiting for the vault to acknowledge the parked state.
    SaveVault,
    /// Waiting for the vault to hand the parked state back.
    LoadVault,
    /// Waiting for the executable download timer.
    Download,
    /// Waiting for the Deactivate reply from the old process.
    Deactivate,
    /// Waiting for the process-creation timer.
    Spawn,
    /// Waiting for the state-restore cost timer.
    RestoreCost,
    /// Waiting for the RestoreState reply from the new process.
    Restore,
    /// Waiting for the binding (re-)registration reply.
    Register,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Create,
    Evolve,
    Migrate,
    /// Capture → park in vault; no process replacement.
    Checkpoint,
    /// Spawn a fresh process from the vault snapshot after a crash.
    Reactivate,
}

struct PendingOp {
    kind: OpKind,
    reply_to: ActorId,
    call: CallId,
    started: SimTime,
    object: ObjectId,
    target_node: NodeId,
    target_version: u32,
    old_actor: Option<ActorId>,
    state: Option<Bytes>,
    /// Set once state was captured (it may be parked in the vault rather
    /// than held in `state`).
    needs_restore: bool,
    new_actor: Option<ActorId>,
    step: Step,
}

/// The class object for a type of monolithic Legion objects.
pub struct ClassObject {
    object: ObjectId,
    class: ClassId,
    cost: CostModel,
    agent: AgentAddress,
    rpc: RpcClient,
    vault: Option<ObjectId>,
    images: HashMap<u32, ExecutableImage>,
    current_version: u32,
    instances: HashMap<ObjectId, Instance>,
    downloaded: HashSet<(NodeId, u32)>,
    ops: HashMap<u64, PendingOp>,
    timer_routes: HashMap<u64, u64>,
    rpc_routes: HashMap<u64, u64>,
}

impl ClassObject {
    /// Creates a class object managing instances of `initial` image.
    pub fn new(
        object: ObjectId,
        class: ClassId,
        initial: ExecutableImage,
        cost: CostModel,
        agent: AgentAddress,
    ) -> Self {
        let current_version = initial.version();
        let mut images = HashMap::new();
        images.insert(current_version, initial);
        ClassObject {
            object,
            class,
            rpc: RpcClient::new(agent, cost.clone()),
            cost,
            agent,
            vault: None,
            images,
            current_version,
            instances: HashMap::new(),
            downloaded: HashSet::new(),
            ops: HashMap::new(),
            timer_routes: HashMap::new(),
            rpc_routes: HashMap::new(),
        }
    }

    /// Parks captured state in `vault` during evolution and migration
    /// (Legion's persistent-state path) instead of holding it in the class
    /// object's memory. Adds two vault round-trips (the state blob crosses
    /// the network twice more) to each lifecycle pipeline.
    pub fn with_vault(mut self, vault: ObjectId) -> Self {
        self.vault = Some(vault);
        self
    }

    /// The class object's own identity.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// The class managed.
    pub fn class_id(&self) -> ClassId {
        self.class
    }

    /// The current image version.
    pub fn current_version(&self) -> u32 {
        self.current_version
    }

    /// Instances currently managed: `(object, node, version)`.
    pub fn instances(&self) -> Vec<(ObjectId, NodeId, u32)> {
        self.instances
            .iter()
            .map(|(o, i)| (*o, i.node, i.version))
            .collect()
    }

    /// Lifecycle operations still in flight.
    pub fn ops_in_flight(&self) -> usize {
        self.ops.len()
    }

    /// Forgets that executables were ever downloaded to `node` — call when
    /// a host crashes, since its local store is gone and the next spawn
    /// there must pay the transfer again.
    pub fn forget_downloads(&mut self, node: NodeId) {
        self.downloaded.retain(|(n, _)| *n != node);
    }

    fn schedule_step(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64, after: SimDuration) {
        let token = ctx.fresh_u64();
        self.timer_routes.insert(token, op_id);
        ctx.schedule_timer(after, token);
    }

    fn rpc_step(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64, target: ObjectId, op: ControlOp) {
        let call = self.rpc.control(ctx, target, op);
        self.rpc_routes.insert(call.as_raw(), op_id);
    }

    fn fail_op(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64, why: String) {
        if let Some(op) = self.ops.remove(&op_id) {
            ctx.metrics().incr("class.ops_failed");
            ctx.send(
                op.reply_to,
                Msg::ControlReply {
                    call: op.call,
                    result: Err(InvocationFault::Refused(why)),
                },
            );
        }
    }

    fn start_create(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        reply_to: ActorId,
        call: CallId,
        node: NodeId,
    ) {
        ctx.send(reply_to, Msg::Progress { call });
        let op_id = ctx.fresh_u64();
        let object = ObjectId::from_raw(ctx.fresh_u64());
        let version = self.current_version;
        let op = PendingOp {
            kind: OpKind::Create,
            reply_to,
            call,
            started: ctx.now(),
            object,
            target_node: node,
            target_version: version,
            old_actor: None,
            state: None,
            needs_restore: false,
            new_actor: None,
            step: Step::Download,
        };
        self.ops.insert(op_id, op);
        self.begin_download_or_spawn(ctx, op_id);
    }

    fn begin_download_or_spawn(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64) {
        let (node, version) = {
            let op = &self.ops[&op_id];
            (op.target_node, op.target_version)
        };
        if self.downloaded.contains(&(node, version)) {
            self.after_download(ctx, op_id);
        } else {
            let size = self.images[&version].size_bytes();
            let delay = self.cost.transfer.transfer_time(size);
            ctx.metrics().incr("class.executable_downloads");
            ctx.metrics()
                .sample_duration("class.executable_download_time", delay);
            self.ops.get_mut(&op_id).expect("op exists").step = Step::Download;
            self.schedule_step(ctx, op_id, delay);
        }
    }

    /// The executable is on the target host; deactivate the old process if
    /// there is one, otherwise go straight to process creation.
    fn after_download(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64) {
        let (kind, old, object) = {
            let op = &self.ops[&op_id];
            (op.kind, op.old_actor, op.object)
        };
        if kind == OpKind::Create || old.is_none() {
            self.begin_spawn(ctx, op_id);
        } else {
            self.ops.get_mut(&op_id).expect("op exists").step = Step::Deactivate;
            self.rpc_step(ctx, op_id, object, ControlOp::new(Deactivate));
        }
    }

    fn begin_spawn(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64) {
        let version = self.ops[&op_id].target_version;
        let functions = self.images[&version].functions().len();
        let delay = self.cost.process_creation(functions);
        self.ops.get_mut(&op_id).expect("op exists").step = Step::Spawn;
        self.schedule_step(ctx, op_id, delay);
    }

    fn spawn_process(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64) {
        let (object, node, version) = {
            let op = &self.ops[&op_id];
            (op.object, op.target_node, op.target_version)
        };
        let image = &self.images[&version];
        let rpc = RpcClient::new(self.agent, self.cost.clone());
        let actor = ctx.spawn(
            node,
            Box::new(MonolithicObject::new(object, image, &self.cost, rpc)),
        );
        ctx.metrics().incr("class.processes_created");
        let op = self.ops.get_mut(&op_id).expect("op exists");
        op.new_actor = Some(actor);
        if op.needs_restore {
            // Charge restore cost, then push the state into the new process
            // (loading it back from the vault first, when one is configured).
            let bytes = op.state.as_ref().map_or(4096, |s| s.len() as u64);
            op.step = Step::RestoreCost;
            let delay = self.cost.state_restore(bytes);
            self.schedule_step(ctx, op_id, delay);
        } else {
            self.begin_register(ctx, op_id);
        }
    }

    fn begin_register(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64) {
        let (object, address) = {
            let op = self.ops.get_mut(&op_id).expect("op exists");
            op.step = Step::Register;
            (op.object, op.new_actor.expect("spawned"))
        };
        self.rpc_step(
            ctx,
            op_id,
            self.agent.object,
            ControlOp::new(RegisterBinding { object, address }),
        );
    }

    fn finish_op(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64) {
        let op = self.ops.remove(&op_id).expect("op exists");
        let address = op.new_actor.expect("spawned");
        self.downloaded.insert((op.target_node, op.target_version));
        self.instances.insert(
            op.object,
            Instance {
                actor: address,
                node: op.target_node,
                version: op.target_version,
            },
        );
        let elapsed = ctx.now().duration_since(op.started);
        let (metric, reply): (&str, ControlOp) = match op.kind {
            OpKind::Create => (
                "class.create_time",
                ControlOp::new(InstanceCreated {
                    object: op.object,
                    address,
                    version: op.target_version,
                }),
            ),
            OpKind::Evolve => (
                "class.evolve_time",
                ControlOp::new(LifecycleDone {
                    object: op.object,
                    address,
                    version: op.target_version,
                }),
            ),
            OpKind::Migrate => (
                "class.migrate_time",
                ControlOp::new(LifecycleDone {
                    object: op.object,
                    address,
                    version: op.target_version,
                }),
            ),
            OpKind::Reactivate => (
                "class.reactivate_time",
                ControlOp::new(LifecycleDone {
                    object: op.object,
                    address,
                    version: op.target_version,
                }),
            ),
            OpKind::Checkpoint => {
                unreachable!("checkpoints finish via finish_checkpoint")
            }
        };
        ctx.metrics().sample_duration(metric, elapsed);
        ctx.send(
            op.reply_to,
            Msg::ControlReply {
                call: op.call,
                result: Ok(reply),
            },
        );
    }

    fn start_lifecycle(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        kind: OpKind,
        reply_to: ActorId,
        call: CallId,
        object: ObjectId,
        target_node: Option<NodeId>,
    ) {
        let Some(instance) = self.instances.get(&object).copied() else {
            ctx.send(
                reply_to,
                Msg::ControlReply {
                    call,
                    result: Err(InvocationFault::Refused(format!(
                        "unknown instance {object}"
                    ))),
                },
            );
            return;
        };
        ctx.send(reply_to, Msg::Progress { call });
        let op_id = ctx.fresh_u64();
        let target_version = match kind {
            OpKind::Evolve => self.current_version,
            _ => instance.version,
        };
        let op = PendingOp {
            kind,
            reply_to,
            call,
            started: ctx.now(),
            object,
            target_node: target_node.unwrap_or(instance.node),
            target_version,
            old_actor: Some(instance.actor),
            state: None,
            needs_restore: true,
            new_actor: None,
            step: Step::Capture,
        };
        self.ops.insert(op_id, op);
        self.rpc_step(ctx, op_id, object, ControlOp::new(CaptureState));
    }

    fn start_checkpoint(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        reply_to: ActorId,
        call: CallId,
        object: ObjectId,
    ) {
        let instance = self.instances.get(&object).copied();
        let (Some(instance), Some(_vault)) = (instance, self.vault) else {
            let why = if self.vault.is_none() {
                "class has no vault to checkpoint into".to_string()
            } else {
                format!("unknown instance {object}")
            };
            ctx.send(
                reply_to,
                Msg::ControlReply {
                    call,
                    result: Err(InvocationFault::Refused(why)),
                },
            );
            return;
        };
        ctx.send(reply_to, Msg::Progress { call });
        let op_id = ctx.fresh_u64();
        let op = PendingOp {
            kind: OpKind::Checkpoint,
            reply_to,
            call,
            started: ctx.now(),
            object,
            target_node: instance.node,
            target_version: instance.version,
            old_actor: Some(instance.actor),
            state: None,
            needs_restore: false,
            new_actor: None,
            step: Step::Capture,
        };
        self.ops.insert(op_id, op);
        self.rpc_step(ctx, op_id, object, ControlOp::new(CaptureState));
    }

    fn start_reactivate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        reply_to: ActorId,
        call: CallId,
        object: ObjectId,
        node: NodeId,
    ) {
        let instance = self.instances.get(&object).copied();
        let (Some(instance), Some(_vault)) = (instance, self.vault) else {
            let why = if self.vault.is_none() {
                "class has no vault to reactivate from".to_string()
            } else {
                format!("unknown instance {object}")
            };
            ctx.send(
                reply_to,
                Msg::ControlReply {
                    call,
                    result: Err(InvocationFault::Refused(why)),
                },
            );
            return;
        };
        ctx.send(reply_to, Msg::Progress { call });
        ctx.metrics().incr("class.reactivations_started");
        let op_id = ctx.fresh_u64();
        let op = PendingOp {
            kind: OpKind::Reactivate,
            reply_to,
            call,
            started: ctx.now(),
            object,
            target_node: node,
            target_version: instance.version,
            // The old process died with its host; there is nothing to
            // capture or deactivate.
            old_actor: None,
            state: None,
            needs_restore: true,
            new_actor: None,
            step: Step::Download,
        };
        self.ops.insert(op_id, op);
        self.begin_download_or_spawn(ctx, op_id);
    }

    fn finish_checkpoint(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64) {
        let op = self.ops.remove(&op_id).expect("op exists");
        let elapsed = ctx.now().duration_since(op.started);
        ctx.metrics()
            .sample_duration("class.checkpoint_time", elapsed);
        ctx.send(
            op.reply_to,
            Msg::ControlReply {
                call: op.call,
                result: Ok(ControlOp::new(CheckpointDone { object: op.object })),
            },
        );
    }

    fn handle_rpc_completion(&mut self, ctx: &mut Ctx<'_, Msg>, completion: RpcCompletion) {
        let Some(op_id) = self.rpc_routes.remove(&completion.call.as_raw()) else {
            return;
        };
        if !self.ops.contains_key(&op_id) {
            return;
        }
        let step = self.ops[&op_id].step;
        match completion.result {
            Err(fault) => {
                self.fail_op(ctx, op_id, format!("step {step:?} failed: {fault}"));
            }
            Ok(payload) => match step {
                Step::Capture => {
                    let Some(blob) = payload.control_as::<StateBlob>().map(|b| b.bytes.clone())
                    else {
                        self.fail_op(ctx, op_id, "capture returned no state".into());
                        return;
                    };
                    let op = self.ops.get_mut(&op_id).expect("op exists");
                    let delay = self.cost.state_capture(blob.len() as u64);
                    op.state = Some(blob);
                    op.step = Step::CaptureCost;
                    self.schedule_step(ctx, op_id, delay);
                }
                Step::SaveVault => {
                    if self.ops[&op_id].kind == OpKind::Checkpoint {
                        self.finish_checkpoint(ctx, op_id);
                    } else {
                        self.begin_download_or_spawn(ctx, op_id);
                    }
                }
                Step::LoadVault => {
                    let Some(bytes) = payload
                        .control_as::<LoadedState>()
                        .and_then(|l| l.bytes.clone())
                    else {
                        self.fail_op(ctx, op_id, "vault lost the parked state".into());
                        return;
                    };
                    let (object, state) = {
                        let op = self.ops.get_mut(&op_id).expect("op exists");
                        op.state = Some(bytes.clone());
                        op.step = Step::Restore;
                        (op.object, bytes)
                    };
                    let new_actor = self.ops[&op_id].new_actor.expect("spawned");
                    self.rpc.seed_binding(object, new_actor);
                    self.rpc_step(
                        ctx,
                        op_id,
                        object,
                        ControlOp::new(RestoreState { bytes: state }),
                    );
                }
                Step::Deactivate => {
                    // Old process is gone; its binding is stale from here on.
                    self.begin_spawn(ctx, op_id);
                }
                Step::Restore => {
                    self.begin_register(ctx, op_id);
                }
                Step::Register => {
                    self.finish_op(ctx, op_id);
                }
                other => {
                    self.fail_op(
                        ctx,
                        op_id,
                        format!("unexpected rpc reply in step {other:?}"),
                    );
                }
            },
        }
    }

    fn handle_step_timer(&mut self, ctx: &mut Ctx<'_, Msg>, op_id: u64) {
        if !self.ops.contains_key(&op_id) {
            return;
        }
        let step = self.ops[&op_id].step;
        match step {
            Step::Download => {
                let (node, version) = {
                    let op = &self.ops[&op_id];
                    (op.target_node, op.target_version)
                };
                self.downloaded.insert((node, version));
                self.after_download(ctx, op_id);
            }
            Step::CaptureCost => match self.vault {
                Some(vault) => {
                    let (object, state) = {
                        let op = self.ops.get_mut(&op_id).expect("op exists");
                        op.step = Step::SaveVault;
                        (op.object, op.state.clone().expect("state captured"))
                    };
                    self.rpc_step(
                        ctx,
                        op_id,
                        vault,
                        ControlOp::new(SaveState {
                            owner: object,
                            bytes: state,
                        }),
                    );
                    // The blob now lives in the vault; drop the local copy
                    // to keep the flow honest about where state resides.
                    self.ops.get_mut(&op_id).expect("op exists").state = None;
                }
                None => self.begin_download_or_spawn(ctx, op_id),
            },
            Step::Spawn => {
                self.spawn_process(ctx, op_id);
            }
            Step::RestoreCost => {
                if let (Some(vault), None) = (self.vault, self.ops[&op_id].state.as_ref()) {
                    let object = {
                        let op = self.ops.get_mut(&op_id).expect("op exists");
                        op.step = Step::LoadVault;
                        op.object
                    };
                    self.rpc_step(
                        ctx,
                        op_id,
                        vault,
                        ControlOp::new(LoadState { owner: object }),
                    );
                    return;
                }
                let (object_old_binding, state) = {
                    let op = self.ops.get_mut(&op_id).expect("op exists");
                    op.step = Step::Restore;
                    (op.object, op.state.clone().expect("state present"))
                };
                // The new process has no binding yet; address it directly by
                // seeding the rpc cache with the fresh actor.
                let new_actor = self.ops[&op_id].new_actor.expect("spawned");
                self.rpc.seed_binding(object_old_binding, new_actor);
                self.rpc_step(
                    ctx,
                    op_id,
                    object_old_binding,
                    ControlOp::new(RestoreState { bytes: state }),
                );
            }
            other => {
                self.fail_op(ctx, op_id, format!("unexpected timer in step {other:?}"));
            }
        }
    }
}

impl Actor<Msg> for ClassObject {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Control { call, target, op } => {
                if target != self.object {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Err(InvocationFault::NoSuchObject(target)),
                        },
                    );
                    return;
                }
                if let Some(create) = op.as_any().downcast_ref::<CreateInstance>() {
                    self.start_create(ctx, from, call, create.node);
                } else if let Some(set) = op.as_any().downcast_ref::<SetCurrentImage>() {
                    let version = set.image.version();
                    self.images.insert(version, set.image.clone());
                    self.current_version = version;
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Ok(ControlOp::new(crate::msg::Ack)),
                        },
                    );
                } else if let Some(ev) = op.as_any().downcast_ref::<EvolveInstance>() {
                    self.start_lifecycle(ctx, OpKind::Evolve, from, call, ev.object, None);
                } else if let Some(mig) = op.as_any().downcast_ref::<MigrateInstance>() {
                    self.start_lifecycle(
                        ctx,
                        OpKind::Migrate,
                        from,
                        call,
                        mig.object,
                        Some(mig.to),
                    );
                } else if let Some(ck) = op.as_any().downcast_ref::<CheckpointInstance>() {
                    self.start_checkpoint(ctx, from, call, ck.object);
                } else if let Some(re) = op.as_any().downcast_ref::<ReactivateInstance>() {
                    self.start_reactivate(ctx, from, call, re.object, re.node);
                } else if op.as_any().downcast_ref::<ListInstances>().is_some() {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Ok(ControlOp::new(InstanceTable {
                                entries: self.instances(),
                            })),
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Err(InvocationFault::Refused(format!(
                                "class object does not understand {}",
                                op.describe()
                            ))),
                        },
                    );
                }
            }
            Msg::Invoke { call, function, .. } => {
                ctx.send(
                    from,
                    Msg::Reply {
                        call,
                        result: Err(InvocationFault::NoSuchFunction(function)),
                    },
                );
            }
            reply => {
                if let Handled::Completed(completion) = self.rpc.handle_message(ctx, reply) {
                    self.handle_rpc_completion(ctx, completion);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if self.rpc.owns_timer(token) {
            if let Some(completion) = self.rpc.handle_timer(ctx, token) {
                self.handle_rpc_completion(ctx, completion);
            }
            return;
        }
        if let Some(op_id) = self.timer_routes.remove(&token) {
            self.handle_step_timer(ctx, op_id);
        }
    }

    fn name(&self) -> &str {
        "class-object"
    }
}

impl std::fmt::Debug for ClassObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassObject")
            .field("object", &self.object)
            .field("class", &self.class)
            .field("current_version", &self.current_version)
            .field("instances", &self.instances.len())
            .field("ops_in_flight", &self.ops.len())
            .finish()
    }
}

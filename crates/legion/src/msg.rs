//! The wire protocol of the distributed object system.
//!
//! Every interaction between Legion objects is a message: user-level method
//! invocations ([`Msg::Invoke`]/[`Msg::Reply`]) carry dynamic-function calls
//! with [`Value`] arguments; system-level operations
//! ([`Msg::Control`]/[`Msg::ControlReply`]) carry typed control payloads
//! (binding registration, component reads, configuration operations, …)
//! as type-erased [`ControlPayload`] boxes so higher layers (the DCDO crate)
//! can add operations without this crate knowing them.

use std::any::Any;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use dcdo_sim::Payload;
use dcdo_types::{CallId, FunctionName, ObjectId};
use dcdo_vm::{Value, VmError};

/// A fault reported to the caller of a remote invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvocationFault {
    /// No object with the given identity lives at the address used — in
    /// real Legion this manifests as a connection failure; here the reply
    /// never comes and the caller's timeout machinery fires.
    NoSuchObject(ObjectId),
    /// The invoked function is not present in the object's interface —
    /// the *disappearing exported function* problem as seen by a client
    /// (§3.1).
    NoSuchFunction(FunctionName),
    /// The function exists but is currently disabled.
    FunctionDisabled(FunctionName),
    /// The function exists but is internal.
    NotExported(FunctionName),
    /// The invocation ran and faulted inside the object.
    ExecutionFault(VmError),
    /// The object refused the operation (policy, consistency, or validation
    /// failure), with an explanation.
    Refused(String),
    /// Synthesized by the *caller* when all retries and rebinds failed.
    Timeout,
    /// Synthesized by the *caller* when the retry budget is exhausted well
    /// before the deadline — repeated rebind cycles kept landing on dead
    /// addresses, or the binding agent itself stopped answering. Unlike
    /// [`Timeout`](InvocationFault::Timeout) this is a crisp "the target's
    /// host is gone" signal recovery layers can act on.
    Unreachable,
}

impl fmt::Display for InvocationFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvocationFault::NoSuchObject(o) => write!(f, "no such object {o}"),
            InvocationFault::NoSuchFunction(name) => {
                write!(f, "function {name} not in interface")
            }
            InvocationFault::FunctionDisabled(name) => write!(f, "function {name} disabled"),
            InvocationFault::NotExported(name) => write!(f, "function {name} not exported"),
            InvocationFault::ExecutionFault(e) => write!(f, "execution fault: {e}"),
            InvocationFault::Refused(why) => write!(f, "operation refused: {why}"),
            InvocationFault::Timeout => write!(f, "invocation timed out"),
            InvocationFault::Unreachable => write!(f, "target unreachable"),
        }
    }
}

impl std::error::Error for InvocationFault {}

impl From<VmError> for InvocationFault {
    fn from(e: VmError) -> Self {
        match e {
            VmError::MissingFunction(name) => InvocationFault::NoSuchFunction(name),
            VmError::FunctionDisabled(name) => InvocationFault::FunctionDisabled(name),
            VmError::NotExported(name) => InvocationFault::NotExported(name),
            other => InvocationFault::ExecutionFault(other),
        }
    }
}

/// A typed control operation or reply, type-erased for transport.
///
/// Implemented by binding-agent, vault, host, class, ICO, DCDO, and manager
/// operation types. Receivers downcast with [`ControlPayload::as_any`].
/// `Send + Sync` because payloads are `Arc`-shared immutable values that
/// must travel with their shard when the engine runs parallel windows.
pub trait ControlPayload: Any + fmt::Debug + Send + Sync {
    /// On-the-wire size of the payload in bytes.
    fn wire_size(&self) -> u64 {
        64
    }

    /// Short operation name for traces and dead-letter diagnostics.
    fn describe(&self) -> &'static str;

    /// Upcast for downcasting to the concrete operation type.
    fn as_any(&self) -> &dyn Any;
}

/// A shared, type-erased control operation.
///
/// Control payloads are immutable once sent, but the RPC machinery must
/// keep a copy for every retry, the engine for every duplicate delivery,
/// and fan-out callers one per destination. `ControlOp` wraps the payload
/// in an [`Arc`] so all of those are pointer clones — the payload itself is
/// never deep-copied after construction.
#[derive(Clone)]
pub struct ControlOp(Arc<dyn ControlPayload>);

impl ControlOp {
    /// Wraps a concrete payload.
    pub fn new(op: impl ControlPayload) -> Self {
        ControlOp(Arc::new(op))
    }

    /// Downcasts to the concrete operation type.
    pub fn downcast_ref<T: ControlPayload>(&self) -> Option<&T> {
        self.0.as_any().downcast_ref()
    }
}

impl Deref for ControlOp {
    type Target = dyn ControlPayload;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl fmt::Debug for ControlOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ControlPayload> From<T> for ControlOp {
    fn from(op: T) -> Self {
        ControlOp::new(op)
    }
}

impl ControlOp {
    /// Wraps an already-boxed payload (the type-erased construction path).
    pub fn from_boxed(op: Box<dyn ControlPayload>) -> Self {
        ControlOp(Arc::from(op))
    }
}

/// Implements [`ControlPayload`] for a `Debug + Send + 'static` type.
#[macro_export]
macro_rules! control_payload {
    ($ty:ty, $name:literal) => {
        impl $crate::ControlPayload for $ty {
            fn describe(&self) -> &'static str {
                $name
            }
            fn as_any(&self) -> &dyn ::std::any::Any {
                self
            }
        }
    };
    ($ty:ty, $name:literal, wire_size = $size:expr) => {
        impl $crate::ControlPayload for $ty {
            fn wire_size(&self) -> u64 {
                let f: fn(&$ty) -> u64 = $size;
                f(self)
            }
            fn describe(&self) -> &'static str {
                $name
            }
            fn as_any(&self) -> &dyn ::std::any::Any {
                self
            }
        }
    };
}

/// A message between Legion objects.
///
/// Cheaply clonable: control payloads are [`Arc`]-shared via [`ControlOp`],
/// so cloning a message copies headers and pointers, not payload bytes.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Invoke an exported dynamic function on the destination object.
    Invoke {
        /// Correlates the eventual [`Msg::Reply`].
        call: CallId,
        /// The object the caller believes lives at the destination actor.
        target: ObjectId,
        /// The function to invoke.
        function: FunctionName,
        /// The arguments.
        args: Vec<Value>,
    },
    /// The outcome of an [`Msg::Invoke`].
    Reply {
        /// The call this answers.
        call: CallId,
        /// The invocation outcome.
        result: Result<Value, InvocationFault>,
    },
    /// A system-level control operation.
    Control {
        /// Correlates the eventual [`Msg::ControlReply`].
        call: CallId,
        /// The object the caller believes lives at the destination actor.
        target: ObjectId,
        /// The operation.
        op: ControlOp,
    },
    /// The outcome of a [`Msg::Control`].
    ControlReply {
        /// The call this answers.
        call: CallId,
        /// The operation outcome: a typed reply payload or a fault.
        result: Result<ControlOp, InvocationFault>,
    },
    /// An early acknowledgement that a long-running operation was accepted
    /// and is in progress. Receipt proves the address is live, so the
    /// caller's connect-timeout/retry machinery stands down and only the
    /// overall deadline remains (the moral equivalent of the TCP connection
    /// having been established).
    Progress {
        /// The call being acknowledged.
        call: CallId,
    },
}

impl Payload for Msg {
    fn clone_for_redelivery(&self) -> Option<Msg> {
        Some(self.clone())
    }

    fn wire_size(&self) -> u64 {
        match self {
            Msg::Invoke { function, args, .. } => {
                64 + function.as_str().len() as u64
                    + args.iter().map(Value::approx_size).sum::<u64>()
            }
            Msg::Reply { result, .. } => {
                64 + match result {
                    Ok(v) => v.approx_size(),
                    Err(_) => 32,
                }
            }
            Msg::Control { op, .. } => 64 + op.wire_size(),
            Msg::ControlReply { result, .. } => {
                64 + match result {
                    Ok(op) => op.wire_size(),
                    Err(_) => 32,
                }
            }
            Msg::Progress { .. } => 64,
        }
    }
}

impl Msg {
    /// Returns the call id carried by the message.
    pub fn call_id(&self) -> CallId {
        match self {
            Msg::Invoke { call, .. }
            | Msg::Reply { call, .. }
            | Msg::Control { call, .. }
            | Msg::ControlReply { call, .. }
            | Msg::Progress { call } => *call,
        }
    }
}

/// An empty acknowledgement control reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack;

control_payload!(Ack, "ack");

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct TestOp {
        data: Vec<u8>,
    }

    control_payload!(
        TestOp,
        "test-op",
        wire_size = |op| 16 + op.data.len() as u64
    );

    #[test]
    fn control_payload_downcasts() {
        let op: Box<dyn ControlPayload> = Box::new(TestOp {
            data: vec![1, 2, 3],
        });
        assert_eq!(op.describe(), "test-op");
        assert_eq!(op.wire_size(), 19);
        let concrete = op.as_any().downcast_ref::<TestOp>().expect("same type");
        assert_eq!(concrete.data, vec![1, 2, 3]);
        assert!(op.as_any().downcast_ref::<Ack>().is_none());
    }

    #[test]
    fn control_op_clone_shares_the_payload() {
        let op = ControlOp::new(TestOp { data: vec![9] });
        let cloned = op.clone();
        assert_eq!(cloned.downcast_ref::<TestOp>(), op.downcast_ref::<TestOp>());
        // Arc-shared, not deep-copied.
        assert!(std::ptr::eq(
            op.downcast_ref::<TestOp>().expect("typed"),
            cloned.downcast_ref::<TestOp>().expect("typed"),
        ));
    }

    #[test]
    fn control_op_converts_from_concrete_and_boxed() {
        let from_concrete: ControlOp = TestOp { data: vec![1] }.into();
        let from_boxed = ControlOp::from_boxed(Box::new(TestOp { data: vec![2] }));
        assert_eq!(from_concrete.describe(), "test-op");
        assert_eq!(
            from_boxed.downcast_ref::<TestOp>().expect("typed").data,
            [2]
        );
    }

    #[test]
    fn msg_clone_is_shallow_for_control_payloads() {
        let msg = Msg::Control {
            call: CallId::from_raw(3),
            target: ObjectId::from_raw(4),
            op: ControlOp::new(TestOp {
                data: vec![0; 4096],
            }),
        };
        let dup = msg.clone_for_redelivery().expect("messages are duplicable");
        let (Msg::Control { op: a, .. }, Msg::Control { op: b, .. }) = (&msg, &dup) else {
            panic!("clone changed the variant");
        };
        assert!(std::ptr::eq(
            a.downcast_ref::<TestOp>().expect("typed"),
            b.downcast_ref::<TestOp>().expect("typed"),
        ));
    }

    #[test]
    fn invoke_wire_size_includes_args() {
        let small = Msg::Invoke {
            call: CallId::from_raw(1),
            target: ObjectId::from_raw(1),
            function: "f".into(),
            args: vec![],
        };
        let big = Msg::Invoke {
            call: CallId::from_raw(1),
            target: ObjectId::from_raw(1),
            function: "f".into(),
            args: vec![Value::str("x".repeat(1000))],
        };
        assert!(big.wire_size() > small.wire_size() + 900);
    }

    #[test]
    fn fault_from_vm_error_maps_the_papers_problems() {
        assert_eq!(
            InvocationFault::from(VmError::MissingFunction("f".into())),
            InvocationFault::NoSuchFunction("f".into())
        );
        assert_eq!(
            InvocationFault::from(VmError::FunctionDisabled("f".into())),
            InvocationFault::FunctionDisabled("f".into())
        );
        assert!(matches!(
            InvocationFault::from(VmError::DivideByZero),
            InvocationFault::ExecutionFault(VmError::DivideByZero)
        ));
    }

    #[test]
    fn call_id_accessor() {
        let m = Msg::Reply {
            call: CallId::from_raw(7),
            result: Ok(Value::Unit),
        };
        assert_eq!(m.call_id(), CallId::from_raw(7));
    }
}

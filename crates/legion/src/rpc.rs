//! Client-side remote invocation with binding caching and stale-binding
//! discovery.
//!
//! [`RpcClient`] is the machinery every caller (clients, objects making
//! outcalls, class objects, DCDO managers) embeds to talk to other objects
//! by [`ObjectId`]:
//!
//! 1. look up the target's physical address in the local **binding cache**;
//! 2. send the invocation and arm a connect timer;
//! 3. on timeout, retry against the same address with jittered backoff up to
//!    the configured attempt budget — this is the 25–35 second window the
//!    paper measures for a client to "realize that a local binding contains
//!    a physical address that the object is no longer using" (§4);
//! 4. then drop the cached binding, query the **binding agent**, and resend
//!    to the fresh address;
//! 5. give up with [`InvocationFault::Timeout`] at the overall deadline —
//!    or earlier with [`InvocationFault::Unreachable`] once the retry
//!    budget is exhausted: more than `max_rebinds` rebind cycles, or
//!    `max_unanswered_queries` consecutive binding queries the agent never
//!    answered (each re-query backs off exponentially, clamped to the time
//!    left before the deadline).
//!
//! A reply of [`InvocationFault::NoSuchObject`] (the address is alive but
//! hosts someone else) short-circuits straight to rebinding.

use std::collections::HashMap;

use dcdo_sim::{ActorId, Ctx, RpcOutcome, SimDuration, SimTime, SpanKind, TimerId};
use dcdo_types::{CallId, FunctionName, ObjectId};
use dcdo_vm::Value;

use crate::binding::{BindingResult, QueryBinding};
use crate::cost::CostModel;
use crate::msg::{ControlOp, InvocationFault, Msg};

/// Where the binding agent lives.
#[derive(Debug, Clone, Copy)]
pub struct AgentAddress {
    /// The agent's actor (assumed stable; agents do not migrate here).
    pub actor: ActorId,
    /// The agent's object identity.
    pub object: ObjectId,
}

/// The operation being performed, kept for resends.
#[derive(Debug, Clone)]
enum RpcOp {
    Invoke {
        function: FunctionName,
        args: Vec<Value>,
    },
    Control {
        op: ControlOp,
    },
}

/// A successfully delivered reply payload.
#[derive(Debug)]
pub enum ReplyPayload {
    /// Reply to a user-level invocation.
    Value(Value),
    /// Reply to a control operation.
    Control(ControlOp),
}

impl ReplyPayload {
    /// Returns the value, if this answers a user-level invocation.
    pub fn into_value(self) -> Option<Value> {
        match self {
            ReplyPayload::Value(v) => Some(v),
            ReplyPayload::Control(_) => None,
        }
    }

    /// Downcasts a control reply to a concrete type.
    pub fn control_as<T: 'static>(&self) -> Option<&T> {
        match self {
            ReplyPayload::Control(op) => op.as_any().downcast_ref::<T>(),
            ReplyPayload::Value(_) => None,
        }
    }
}

/// A finished call: delivered result or terminal fault, plus discovery
/// statistics.
#[derive(Debug)]
pub struct RpcCompletion {
    /// The call that finished.
    pub call: CallId,
    /// The object it addressed.
    pub target: ObjectId,
    /// The outcome.
    pub result: Result<ReplyPayload, InvocationFault>,
    /// Wall-clock (simulated) time from issue to completion.
    pub elapsed: SimDuration,
    /// How many times the call fell back to the binding agent.
    pub rebinds: u32,
    /// Total send attempts made.
    pub attempts: u32,
}

/// What [`RpcClient::handle_message`] did with a message.
#[derive(Debug)]
pub enum Handled {
    /// The message completed one of our calls.
    Completed(RpcCompletion),
    /// The message advanced one of our calls (e.g. a binding arrived and the
    /// operation was re-sent); nothing for the owner to do.
    InProgress,
    /// The message was a stale duplicate of an already-completed call.
    Stale,
    /// The message does not belong to this client; the owner should process
    /// it.
    NotMine(Msg),
}

#[derive(Debug)]
enum Phase {
    /// Transient state while the call is being (re)routed.
    Idle,
    AwaitReply {
        timer: TimerId,
        address: ActorId,
    },
    AwaitBinding {
        timer: TimerId,
        query: CallId,
    },
}

#[derive(Debug)]
struct Pending {
    target: ObjectId,
    op: RpcOp,
    started: SimTime,
    deadline: SimTime,
    /// Attempts against the current address (drives the retry policy).
    attempts: u32,
    /// Attempts across all addresses (reported in the completion).
    total_attempts: u32,
    rebinds: u32,
    /// Consecutive binding queries the agent never answered.
    unanswered_queries: u32,
    phase: Phase,
}

/// Client-side invocation machinery with a binding cache.
#[derive(Debug)]
pub struct RpcClient {
    agent: AgentAddress,
    cost: CostModel,
    cache: HashMap<ObjectId, ActorId>,
    pending: HashMap<u64, Pending>,
    // binding-query call raw -> original call raw
    binding_queries: HashMap<u64, u64>,
}

impl RpcClient {
    /// Creates a client that resolves bindings through `agent` and times out
    /// per `cost`. The agent's own binding is pre-seeded (its address is
    /// well-known infrastructure).
    pub fn new(agent: AgentAddress, cost: CostModel) -> Self {
        let mut cache = HashMap::new();
        cache.insert(agent.object, agent.actor);
        RpcClient {
            agent,
            cost,
            cache,
            pending: HashMap::new(),
            binding_queries: HashMap::new(),
        }
    }

    /// Pre-populates the binding cache (e.g. from a directory handed out at
    /// startup).
    pub fn seed_binding(&mut self, object: ObjectId, address: ActorId) {
        self.cache.insert(object, address);
    }

    /// Returns the cached address for an object, if any.
    pub fn cached_binding(&self, object: ObjectId) -> Option<ActorId> {
        self.cache.get(&object).copied()
    }

    /// Number of calls currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if this client owns the given timer token.
    pub fn owns_timer(&self, token: u64) -> bool {
        self.pending.contains_key(&token)
    }

    /// Starts a user-level invocation of `function` on `target`.
    pub fn invoke(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        target: ObjectId,
        function: impl Into<FunctionName>,
        args: Vec<Value>,
    ) -> CallId {
        self.start(
            ctx,
            target,
            RpcOp::Invoke {
                function: function.into(),
                args,
            },
        )
    }

    /// Starts a control operation on `target`.
    pub fn control(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        target: ObjectId,
        op: impl Into<ControlOp>,
    ) -> CallId {
        self.start(ctx, target, RpcOp::Control { op: op.into() })
    }

    fn start(&mut self, ctx: &mut Ctx<'_, Msg>, target: ObjectId, op: RpcOp) -> CallId {
        let call = CallId::from_raw(ctx.fresh_u64());
        let now = ctx.now();
        let mut pending = Pending {
            target,
            op,
            started: now,
            deadline: now + self.cost.invocation_deadline,
            attempts: 0,
            total_attempts: 0,
            rebinds: 0,
            unanswered_queries: 0,
            phase: Phase::Idle,
        };
        match self.cache.get(&target).copied() {
            Some(address) => {
                if ctx.tracing_enabled() {
                    ctx.emit_span(SpanKind::BindingHit {
                        object: target.as_raw(),
                        dst: address.as_raw(),
                    });
                }
                self.send_attempt(ctx, call, &mut pending, address);
            }
            None => {
                if ctx.tracing_enabled() {
                    ctx.emit_span(SpanKind::BindingMiss {
                        object: target.as_raw(),
                    });
                }
                self.query_binding(ctx, call, &mut pending);
            }
        }
        self.pending.insert(call.as_raw(), pending);
        call
    }

    fn send_attempt(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        call: CallId,
        pending: &mut Pending,
        address: ActorId,
    ) {
        pending.attempts += 1;
        pending.total_attempts += 1;
        if ctx.tracing_enabled() {
            ctx.emit_span(SpanKind::RpcAttempt {
                call: call.as_raw(),
                object: pending.target.as_raw(),
                attempt: pending.total_attempts,
                dst: address.as_raw(),
            });
        }
        let msg = match &pending.op {
            RpcOp::Invoke { function, args } => Msg::Invoke {
                call,
                target: pending.target,
                function: function.clone(),
                args: args.clone(),
            },
            RpcOp::Control { op } => Msg::Control {
                call,
                target: pending.target,
                op: op.clone(),
            },
        };
        ctx.send(address, msg);
        let factor = ctx
            .rng()
            .range_f64(1.0, self.cost.binding_backoff_jitter.max(1.0) + 1e-9);
        let timeout = self.cost.binding_connect_timeout.mul_f64(factor);
        let timer = ctx.schedule_timer(timeout, call.as_raw());
        pending.phase = Phase::AwaitReply { timer, address };
    }

    fn query_binding(&mut self, ctx: &mut Ctx<'_, Msg>, call: CallId, pending: &mut Pending) {
        self.query_binding_with_timeout(ctx, call, pending, self.cost.binding_connect_timeout);
    }

    fn query_binding_with_timeout(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        call: CallId,
        pending: &mut Pending,
        timeout: SimDuration,
    ) {
        let query = CallId::from_raw(ctx.fresh_u64());
        ctx.send(
            self.agent.actor,
            Msg::Control {
                call: query,
                target: self.agent.object,
                op: ControlOp::new(QueryBinding {
                    object: pending.target,
                }),
            },
        );
        self.binding_queries.insert(query.as_raw(), call.as_raw());
        let timer = ctx.schedule_timer(timeout, call.as_raw());
        pending.phase = Phase::AwaitBinding { timer, query };
    }

    /// Feeds an incoming message to the client.
    pub fn handle_message(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) -> Handled {
        match msg {
            Msg::Reply { call, result } => self.settle(ctx, call, result.map(ReplyPayload::Value)),
            Msg::ControlReply { call, result } => {
                // Binding-query answers come back as ControlReply too.
                if let Some(original) = self.binding_queries.remove(&call.as_raw()) {
                    return self.handle_binding_reply(ctx, original, result);
                }
                self.settle(ctx, call, result.map(ReplyPayload::Control))
            }
            Msg::Progress { call } => {
                // The server accepted a long-running operation: the address
                // is live, so stand down the connect-timeout retries and
                // wait out the overall deadline.
                let Some(pending) = self.pending.get_mut(&call.as_raw()) else {
                    return Handled::Stale;
                };
                if let Phase::AwaitReply { timer, address } = pending.phase {
                    ctx.cancel_timer(timer);
                    let remaining = pending.deadline.duration_since(ctx.now());
                    let timer = ctx.schedule_timer(remaining, call.as_raw());
                    // Freeze retries by marking the attempt budget spent more
                    // than the retry check allows.
                    pending.attempts = u32::MAX;
                    pending.phase = Phase::AwaitReply { timer, address };
                }
                Handled::InProgress
            }
            other => Handled::NotMine(other),
        }
    }

    /// Settles an incoming reply against the pending table: completes the
    /// call, or — on `NoSuchObject` — drops the binding and rebinds.
    fn settle(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        call: CallId,
        result: Result<ReplyPayload, InvocationFault>,
    ) -> Handled {
        let Some(mut pending) = self.pending.remove(&call.as_raw()) else {
            return Handled::Stale;
        };
        self.cancel_phase_timer(ctx, &pending.phase);
        if let Err(InvocationFault::NoSuchObject(_)) = &result {
            // Alive address, wrong occupant: rebind immediately.
            self.cache.remove(&pending.target);
            if ctx.tracing_enabled() {
                ctx.emit_span(SpanKind::BindingInvalidated {
                    object: pending.target.as_raw(),
                });
            }
            pending.rebinds += 1;
            if pending.rebinds > self.cost.max_rebinds {
                ctx.metrics().incr("rpc.unreachable");
                return Handled::Completed(self.complete(
                    ctx,
                    call,
                    pending,
                    Err(InvocationFault::Unreachable),
                ));
            }
            self.query_binding(ctx, call, &mut pending);
            self.pending.insert(call.as_raw(), pending);
            return Handled::InProgress;
        }
        Handled::Completed(self.complete(ctx, call, pending, result))
    }

    fn handle_binding_reply(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        original: u64,
        result: Result<ControlOp, InvocationFault>,
    ) -> Handled {
        let Some(mut pending) = self.pending.remove(&original) else {
            return Handled::Stale;
        };
        self.cancel_phase_timer(ctx, &pending.phase);
        let call = CallId::from_raw(original);
        // The agent is alive — only *unanswered* queries count toward the
        // Unreachable budget.
        pending.unanswered_queries = 0;
        let address = result
            .ok()
            .and_then(|op| {
                op.as_any()
                    .downcast_ref::<BindingResult>()
                    .map(|b| b.address)
            })
            .flatten();
        match address {
            Some(address) => {
                self.cache.insert(pending.target, address);
                self.send_attempt(ctx, call, &mut pending, address);
                self.pending.insert(original, pending);
                Handled::InProgress
            }
            None => {
                // Not currently bound (mid-migration or deleted). Re-query
                // after a timeout unless past the deadline.
                if ctx.now() >= pending.deadline {
                    return Handled::Completed(self.complete(
                        ctx,
                        call,
                        pending,
                        Err(InvocationFault::Timeout),
                    ));
                }
                let timer = ctx.schedule_timer(self.cost.binding_connect_timeout, original);
                pending.phase = Phase::AwaitBinding {
                    timer,
                    query: CallId::from_raw(u64::MAX),
                };
                self.pending.insert(original, pending);
                Handled::InProgress
            }
        }
    }

    /// Feeds a fired timer to the client. Returns a completion if the call
    /// terminally timed out, `None` if the timer was not ours or the call
    /// was advanced (retry / rebind).
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) -> Option<RpcCompletion> {
        let mut pending = self.pending.remove(&token)?;
        let call = CallId::from_raw(token);
        if ctx.now() >= pending.deadline {
            return Some(self.complete(ctx, call, pending, Err(InvocationFault::Timeout)));
        }
        match pending.phase {
            Phase::AwaitReply { address, .. } => {
                if pending.attempts < self.cost.binding_attempts {
                    // Retry against the same (possibly stale) address.
                    if ctx.tracing_enabled() {
                        ctx.emit_span(SpanKind::RpcRetry {
                            call: call.as_raw(),
                            attempt: pending.total_attempts,
                        });
                    }
                    self.send_attempt(ctx, call, &mut pending, address);
                } else {
                    // Give up on the cached binding; consult the agent.
                    let discovery = ctx.now().duration_since(pending.started);
                    ctx.metrics().incr("rpc.stale_binding_discovered");
                    ctx.metrics()
                        .sample_duration("rpc.stale_binding_discovery_time", discovery);
                    self.cache.remove(&pending.target);
                    if ctx.tracing_enabled() {
                        ctx.emit_span(SpanKind::BindingInvalidated {
                            object: pending.target.as_raw(),
                        });
                    }
                    pending.rebinds += 1;
                    if pending.rebinds > self.cost.max_rebinds {
                        // Every address the agent hands out times out:
                        // declare the target unreachable instead of cycling
                        // until the deadline.
                        ctx.metrics().incr("rpc.unreachable");
                        return Some(self.complete(
                            ctx,
                            call,
                            pending,
                            Err(InvocationFault::Unreachable),
                        ));
                    }
                    pending.attempts = 0;
                    self.query_binding(ctx, call, &mut pending);
                }
                self.pending.insert(token, pending);
                None
            }
            Phase::AwaitBinding { query, .. } => {
                if query.as_raw() == u64::MAX {
                    // The agent answered "not bound" earlier; keep polling
                    // at the base cadence until the deadline resolves it.
                    self.query_binding(ctx, call, &mut pending);
                } else {
                    // A real query went unanswered: the agent (or the path
                    // to it) is down. Back off exponentially and give up
                    // early once the budget is spent.
                    self.binding_queries.remove(&query.as_raw());
                    pending.unanswered_queries += 1;
                    if pending.unanswered_queries >= self.cost.max_unanswered_queries {
                        ctx.metrics().incr("rpc.unreachable");
                        return Some(self.complete(
                            ctx,
                            call,
                            pending,
                            Err(InvocationFault::Unreachable),
                        ));
                    }
                    let shift = pending.unanswered_queries.min(6);
                    let backoff = self.cost.binding_connect_timeout * (1u64 << shift);
                    let remaining = pending.deadline.duration_since(ctx.now());
                    self.query_binding_with_timeout(
                        ctx,
                        call,
                        &mut pending,
                        backoff.min(remaining),
                    );
                }
                self.pending.insert(token, pending);
                None
            }
            Phase::Idle => unreachable!("idle calls hold no timers"),
        }
    }

    fn cancel_phase_timer(&self, ctx: &mut Ctx<'_, Msg>, phase: &Phase) {
        match phase {
            Phase::AwaitReply { timer, .. } | Phase::AwaitBinding { timer, .. } => {
                ctx.cancel_timer(*timer);
            }
            Phase::Idle => {}
        }
    }

    fn complete(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        call: CallId,
        pending: Pending,
        result: Result<ReplyPayload, InvocationFault>,
    ) -> RpcCompletion {
        let elapsed = ctx.now().duration_since(pending.started);
        ctx.metrics().incr("rpc.completed");
        if result.is_err() {
            ctx.metrics().incr("rpc.faulted");
        }
        if ctx.tracing_enabled() {
            let outcome = match &result {
                Ok(_) => RpcOutcome::Ok,
                Err(InvocationFault::Unreachable) => RpcOutcome::Unreachable,
                Err(InvocationFault::Timeout) => RpcOutcome::Timeout,
                Err(_) => RpcOutcome::Fault,
            };
            ctx.emit_span(SpanKind::RpcCompleted {
                call: call.as_raw(),
                outcome,
            });
        }
        RpcCompletion {
            call,
            target: pending.target,
            result,
            elapsed,
            rebinds: pending.rebinds,
            attempts: pending.total_attempts,
        }
    }
}

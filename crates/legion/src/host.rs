//! Host objects: the machines of the testbed as Legion objects.
//!
//! A host object represents one node: its architecture and its local
//! file-system caches — downloaded implementation components (for DCDOs)
//! and monolithic executables (for normal objects). Whether a component is
//! already cached on the DCDO's host decides between the ≈200 µs cached
//! incorporation and the download-dominated path (§4).

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use dcdo_sim::{Actor, ActorId, Ctx, NodeId};
use dcdo_types::{Architecture, ClassId, ComponentId, HostId, ObjectId};

use crate::control_payload;
use crate::msg::{Ack, ControlOp, InvocationFault, Msg};

/// Control op: store component data in the host's cache.
#[derive(Debug, Clone)]
pub struct StoreComponentData {
    /// The component.
    pub component: ComponentId,
    /// Its encoded bytes.
    pub bytes: Bytes,
}

control_payload!(
    StoreComponentData,
    "store-component-data",
    wire_size = |op| { 32 + op.bytes.len() as u64 }
);

/// Control op: fetch component data from the host's cache.
#[derive(Debug, Clone)]
pub struct FetchComponentData {
    /// The component wanted.
    pub component: ComponentId,
}

control_payload!(FetchComponentData, "fetch-component-data");

/// Control reply to [`FetchComponentData`].
#[derive(Debug, Clone)]
pub struct ComponentData {
    /// The component asked about.
    pub component: ComponentId,
    /// Its bytes, if cached.
    pub bytes: Option<Bytes>,
}

control_payload!(
    ComponentData,
    "component-data",
    wire_size = |op| { 32 + op.bytes.as_ref().map_or(0, |b| b.len() as u64) }
);

/// Control op: does the host cache this component?
#[derive(Debug, Clone)]
pub struct HasComponent {
    /// The component asked about.
    pub component: ComponentId,
}

control_payload!(HasComponent, "has-component");

/// Control reply to [`HasComponent`] / [`HasExecutable`].
#[derive(Debug, Clone)]
pub struct CachedReply {
    /// Whether the item is in the host cache.
    pub cached: bool,
}

control_payload!(CachedReply, "cached-reply");

/// Control op: record that an executable image version is on this host.
#[derive(Debug, Clone)]
pub struct StoreExecutable {
    /// The class whose executable was downloaded.
    pub class: ClassId,
    /// The image version.
    pub version: u32,
}

control_payload!(StoreExecutable, "store-executable");

/// Control op: does the host have this executable version?
#[derive(Debug, Clone)]
pub struct HasExecutable {
    /// The class asked about.
    pub class: ClassId,
    /// The image version.
    pub version: u32,
}

control_payload!(HasExecutable, "has-executable");

/// A testbed machine as a Legion object.
#[derive(Debug)]
pub struct HostObject {
    object: ObjectId,
    host: HostId,
    node: NodeId,
    arch: Architecture,
    components: HashMap<ComponentId, Bytes>,
    executables: HashSet<(ClassId, u32)>,
}

impl HostObject {
    /// Creates a host object for the machine at `node`.
    pub fn new(object: ObjectId, host: HostId, node: NodeId, arch: Architecture) -> Self {
        HostObject {
            object,
            host,
            node,
            arch,
            components: HashMap::new(),
            executables: HashSet::new(),
        }
    }

    /// The host's object identity.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// The host identifier.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// The network node this host is.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The host's native architecture.
    pub fn architecture(&self) -> Architecture {
        self.arch
    }

    /// Direct cache check (driver-side).
    pub fn has_component(&self, component: ComponentId) -> bool {
        self.components.contains_key(&component)
    }

    /// Direct cache insert (driver-side pre-warming).
    pub fn store_component(&mut self, component: ComponentId, bytes: Bytes) {
        self.components.insert(component, bytes);
    }

    /// Direct executable-cache check (driver-side).
    pub fn has_executable(&self, class: ClassId, version: u32) -> bool {
        self.executables.contains(&(class, version))
    }

    /// Number of cached components.
    pub fn cached_components(&self) -> usize {
        self.components.len()
    }

    /// Evicts everything from both caches.
    pub fn clear_caches(&mut self) {
        self.components.clear();
        self.executables.clear();
    }
}

impl Actor<Msg> for HostObject {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Control { call, target, op } => {
                if target != self.object {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Err(InvocationFault::NoSuchObject(target)),
                        },
                    );
                    return;
                }
                let result: Result<ControlOp, InvocationFault> =
                    if let Some(store) = op.as_any().downcast_ref::<StoreComponentData>() {
                        self.components.insert(store.component, store.bytes.clone());
                        ctx.metrics().incr("host.components_stored");
                        Ok(ControlOp::new(Ack))
                    } else if let Some(fetch) = op.as_any().downcast_ref::<FetchComponentData>() {
                        Ok(ControlOp::new(ComponentData {
                            component: fetch.component,
                            bytes: self.components.get(&fetch.component).cloned(),
                        }))
                    } else if let Some(has) = op.as_any().downcast_ref::<HasComponent>() {
                        Ok(ControlOp::new(CachedReply {
                            cached: self.components.contains_key(&has.component),
                        }))
                    } else if let Some(store) = op.as_any().downcast_ref::<StoreExecutable>() {
                        self.executables.insert((store.class, store.version));
                        Ok(ControlOp::new(Ack))
                    } else if let Some(has) = op.as_any().downcast_ref::<HasExecutable>() {
                        Ok(ControlOp::new(CachedReply {
                            cached: self.executables.contains(&(has.class, has.version)),
                        }))
                    } else {
                        Err(InvocationFault::Refused(format!(
                            "host does not understand {}",
                            op.describe()
                        )))
                    };
                ctx.send(from, Msg::ControlReply { call, result });
            }
            Msg::Invoke { call, function, .. } => {
                ctx.send(
                    from,
                    Msg::Reply {
                        call,
                        result: Err(InvocationFault::NoSuchFunction(function)),
                    },
                );
            }
            Msg::Reply { .. } | Msg::ControlReply { .. } | Msg::Progress { .. } => {}
        }
    }

    fn name(&self) -> &str {
        "host"
    }
}

//! Legion-like wide-area distributed object substrate.
//!
//! This crate rebuilds the parts of the Legion system the DCDO model sits
//! on: a global object namespace ([`naming::ContextSpace`]), binding agents
//! mapping identity to physical address ([`binding::BindingAgent`]) with
//! client-side caches and the stale-binding discovery protocol
//! ([`rpc::RpcClient`]), hosts with component/executable caches
//! ([`host::HostObject`]), vaults for persistent object state
//! ([`vault::Vault`]), the shared invocation runtime of active objects
//! ([`object::ObjectRuntime`]), and — as the paper's baseline — normal
//! Legion objects built from static monolithic executables
//! ([`monolithic::MonolithicObject`]) managed by class objects
//! ([`class::ClassObject`]) whose only evolution mechanism is whole-
//! executable replacement.
//!
//! All simulated-time constants live in [`cost::CostModel`], calibrated to
//! the numbers the paper itself reports (see DESIGN.md §6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binding;
pub mod class;
pub mod client;
pub mod cost;
pub mod harness;
pub mod host;
pub mod monolithic;
mod msg;
pub mod naming;
pub mod object;
pub mod rpc;
pub mod vault;

pub use cost::CostModel;
pub use msg::{Ack, ControlOp, ControlPayload, InvocationFault, Msg};
pub use object::ObjectRuntime;
pub use rpc::{AgentAddress, Handled, ReplyPayload, RpcClient, RpcCompletion};

//! Scenario harness: a ready-made simulated testbed.
//!
//! [`Testbed`] assembles the standing infrastructure every experiment
//! needs — the simulation engine, a binding agent, host objects for each
//! node, a vault, and a context space — and provides driver-side helpers to
//! issue calls from clients and wait for their completions. Benches,
//! integration tests, and examples all build on this.

use dcdo_sim::{ActorId, NetConfig, NodeId, SimDuration, Simulation};
use dcdo_types::{Architecture, HostId, ObjectId};
use dcdo_vm::Value;

use crate::binding::BindingAgent;
use crate::client::ClientObject;
use crate::cost::CostModel;
use crate::host::HostObject;
use crate::msg::{ControlOp, Msg};
use crate::naming::ContextSpace;
use crate::rpc::{AgentAddress, RpcCompletion};
use crate::vault::Vault;

/// The number of nodes in the paper's testbed subset.
pub const CENTURION_NODES: u32 = 16;

/// A simulated testbed with standing Legion infrastructure.
pub struct Testbed {
    /// The simulation engine.
    pub sim: Simulation<Msg>,
    /// The binding agent's address.
    pub agent: AgentAddress,
    /// The nodes of the testbed.
    pub nodes: Vec<NodeId>,
    /// The host object on each node (parallel to `nodes`).
    pub hosts: Vec<ActorId>,
    /// The vault actor (on node 0).
    pub vault: ActorId,
    /// The vault's object identity.
    pub vault_object: ObjectId,
    /// The context-space actor (on node 0).
    pub context: ActorId,
    /// The context space's object identity.
    pub context_object: ObjectId,
    /// The cost model in force.
    pub cost: CostModel,
    /// Per-node host metadata, kept so crashed host daemons can be revived
    /// with their original identities (parallel to `nodes`).
    host_meta: Vec<(ObjectId, HostId, Architecture)>,
}

impl Testbed {
    /// Builds a testbed with `n_nodes` nodes, the given cost/network models,
    /// and RNG seed.
    pub fn new(n_nodes: u32, cost: CostModel, net: NetConfig, seed: u64) -> Self {
        assert!(n_nodes >= 1, "a testbed needs at least one node");
        let mut sim = Simulation::new(net, seed);
        let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId::from_raw).collect();

        let agent_object = ObjectId::from_raw(sim.fresh_u64());
        let agent_actor = sim.spawn(nodes[0], BindingAgent::new(agent_object));
        let agent = AgentAddress {
            actor: agent_actor,
            object: agent_object,
        };

        let mut hosts = Vec::with_capacity(nodes.len());
        let mut host_meta = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            let host_object = ObjectId::from_raw(sim.fresh_u64());
            let host_id = HostId::from_raw(i as u64);
            let host = sim.spawn(
                *node,
                HostObject::new(host_object, host_id, *node, Architecture::X86),
            );
            sim.actor_mut::<BindingAgent>(agent_actor)
                .expect("agent alive")
                .register(host_object, host);
            hosts.push(host);
            host_meta.push((host_object, host_id, Architecture::X86));
        }

        let vault_object = ObjectId::from_raw(sim.fresh_u64());
        let vault = sim.spawn(nodes[0], Vault::new(vault_object));
        let context_object = ObjectId::from_raw(sim.fresh_u64());
        let context = sim.spawn(nodes[0], ContextSpace::new(context_object));
        for (obj, actor) in [(vault_object, vault), (context_object, context)] {
            sim.actor_mut::<BindingAgent>(agent_actor)
                .expect("agent alive")
                .register(obj, actor);
        }

        Testbed {
            sim,
            agent,
            nodes,
            hosts,
            vault,
            vault_object,
            context,
            context_object,
            cost,
            host_meta,
        }
    }

    /// A 16-node Centurion testbed with calibrated costs.
    pub fn centurion(seed: u64) -> Self {
        Testbed::new(
            CENTURION_NODES,
            CostModel::centurion(),
            NetConfig::centurion(),
            seed,
        )
    }

    /// Mints a fresh object identity.
    pub fn fresh_object_id(&mut self) -> ObjectId {
        ObjectId::from_raw(self.sim.fresh_u64())
    }

    /// Registers an object's physical address with the binding agent
    /// (driver-side, instantaneous).
    pub fn register(&mut self, object: ObjectId, address: ActorId) {
        self.sim
            .actor_mut::<BindingAgent>(self.agent.actor)
            .expect("agent alive")
            .register(object, address);
    }

    /// Spawns a client object on `node`.
    pub fn spawn_client(&mut self, node: NodeId) -> (ObjectId, ActorId) {
        let object = self.fresh_object_id();
        let client = ClientObject::new(object, self.agent, self.cost.clone());
        let actor = self.sim.spawn(node, client);
        self.register(object, actor);
        (object, actor)
    }

    /// Issues an invocation from a client (by actor id) and returns the call
    /// id without running the simulation.
    pub fn client_call(
        &mut self,
        client: ActorId,
        target: ObjectId,
        function: &str,
        args: Vec<Value>,
    ) -> dcdo_types::CallId {
        self.sim
            .with_actor::<ClientObject, _>(client, |c, ctx| c.call(ctx, target, function, args))
    }

    /// Issues a control operation from a client.
    pub fn client_control(
        &mut self,
        client: ActorId,
        target: ObjectId,
        op: ControlOp,
    ) -> dcdo_types::CallId {
        self.sim
            .with_actor::<ClientObject, _>(client, |c, ctx| c.control_op(ctx, target, op))
    }

    /// Runs the simulation until the given client call completes, and
    /// returns its completion.
    ///
    /// # Panics
    ///
    /// Panics if the simulation drains without the call completing.
    pub fn wait_for(&mut self, client: ActorId, call: dcdo_types::CallId) -> RpcCompletion {
        loop {
            let done = self
                .sim
                .actor_mut::<ClientObject>(client)
                .expect("client alive")
                .take_completion(call);
            if let Some(completion) = done {
                return completion;
            }
            if !self.sim.step() {
                panic!("simulation drained before call {call} completed");
            }
        }
    }

    /// Convenience: issue an invocation and run until it completes.
    pub fn call_and_wait(
        &mut self,
        client: ActorId,
        target: ObjectId,
        function: &str,
        args: Vec<Value>,
    ) -> RpcCompletion {
        let call = self.client_call(client, target, function, args);
        self.wait_for(client, call)
    }

    /// Convenience: issue a control op and run until it completes.
    pub fn control_and_wait(
        &mut self,
        client: ActorId,
        target: ObjectId,
        op: ControlOp,
    ) -> RpcCompletion {
        let call = self.client_control(client, target, op);
        self.wait_for(client, call)
    }

    /// Lets the simulation run for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
    }

    /// Respawns the host daemon of a restarted node: a fresh [`HostObject`]
    /// with the node's original identity and an empty (cold) component
    /// cache, re-registered with the binding agent. Call after
    /// `sim.restart_node(node)` — a crash kills the daemon along with every
    /// other actor on the node, and nothing placed there works until it is
    /// back.
    pub fn revive_host(&mut self, node: NodeId) -> ActorId {
        let idx = self
            .nodes
            .iter()
            .position(|n| *n == node)
            .expect("node in testbed");
        let (object, host_id, arch) = self.host_meta[idx];
        let actor = self
            .sim
            .spawn(node, HostObject::new(object, host_id, node, arch));
        self.register(object, actor);
        self.hosts[idx] = actor;
        actor
    }
}

//! The shared execution runtime of an active Legion object.
//!
//! Both normal (monolithic) objects and DCDOs embed an [`ObjectRuntime`]:
//! it accepts incoming invocations, runs [`VmThread`]s against the owner's
//! [`CallResolver`] (static table or DFM), charges the consumed simulated
//! compute time by *deferring* the next externally visible action (reply or
//! outcall) with a timer, parks threads suspended on remote outcalls, and
//! resumes them when the owner's [`RpcClient`] completes the call.
//!
//! Threads suspended here are exactly the state of §3.1's disappearing
//! function/component problems: configuration operations arriving while a
//! thread is parked can invalidate what the thread needs on resume.

use std::collections::HashMap;

use dcdo_sim::{fn_hash, ActorId, Ctx, SimDuration, SpanKind};
use dcdo_types::{CallId, ComponentId, FunctionName, ObjectId};
use dcdo_vm::{
    CallOrigin, CallResolver, NativeRegistry, OutcallRequest, RunOutcome, Value, ValueStore,
    VmError, VmProfile, VmThread,
};

use crate::msg::{InvocationFault, Msg};
use crate::rpc::{RpcClient, RpcCompletion};

/// Per-run instruction budget for one thread activation.
pub const DEFAULT_FUEL: u64 = 10_000_000;

struct ThreadEntry {
    thread: VmThread,
    reply_to: ActorId,
    call: CallId,
    root_function: FunctionName,
}

enum Deferred {
    SendReply {
        to: ActorId,
        call: CallId,
        result: Result<Value, InvocationFault>,
    },
    IssueOutcall {
        token: u64,
        request: OutcallRequest,
    },
    ResumeThread {
        token: u64,
    },
}

/// The invocation-execution engine embedded in every active object actor.
pub struct ObjectRuntime {
    object: ObjectId,
    fuel: u64,
    threads: HashMap<u64, ThreadEntry>,
    deferred: HashMap<u64, Deferred>,
    outcalls: HashMap<u64, u64>,
    invocations_served: u64,
    vm_profile: VmProfile,
}

impl ObjectRuntime {
    /// Creates a runtime for the object with the given identity.
    pub fn new(object: ObjectId) -> Self {
        ObjectRuntime {
            object,
            fuel: DEFAULT_FUEL,
            threads: HashMap::new(),
            deferred: HashMap::new(),
            outcalls: HashMap::new(),
            invocations_served: 0,
            vm_profile: VmProfile::new(),
        }
    }

    /// The object identity this runtime serves.
    pub fn object_id(&self) -> ObjectId {
        self.object
    }

    /// Total invocations that have entered the object.
    pub fn invocations_served(&self) -> u64 {
        self.invocations_served
    }

    /// Number of threads currently live (running or suspended) inside the
    /// object.
    pub fn live_threads(&self) -> usize {
        self.threads.len()
    }

    /// Returns the tokens of live threads that have a frame in `component` —
    /// the check behind the disappearing-component protections (§3.2).
    pub fn threads_in_component(&self, component: ComponentId) -> Vec<u64> {
        self.threads
            .iter()
            .filter(|(_, e)| e.thread.components_on_stack().contains(&component))
            .map(|(t, _)| *t)
            .collect()
    }

    /// Aborts a live thread: unwinds it (resolver exits fire), fails its
    /// pending invocation with [`InvocationFault::ExecutionFault`], and
    /// forgets it. Used by the forced-removal (time-out) policy of §3.2.
    pub fn abort_thread(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        resolver: &mut dyn CallResolver,
        token: u64,
        reason: &str,
    ) -> bool {
        let Some(mut entry) = self.threads.remove(&token) else {
            return false;
        };
        let err = entry.thread.abort(resolver, reason);
        ctx.metrics().incr("object.threads_aborted");
        ctx.send(
            entry.reply_to,
            Msg::Reply {
                call: entry.call,
                result: Err(InvocationFault::ExecutionFault(err)),
            },
        );
        true
    }

    /// Handles an incoming [`Msg::Invoke`]: spawns a thread and runs it.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_invoke(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ActorId,
        call: CallId,
        function: FunctionName,
        args: Vec<Value>,
        resolver: &mut dyn CallResolver,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
        rpc: &mut RpcClient,
    ) {
        self.invocations_served += 1;
        match VmThread::call(resolver, &function, args, CallOrigin::External) {
            Ok(mut thread) => {
                // Cost attribution piggybacks on tracing: when spans are
                // recording, each thread counts per-function costs and the
                // totals surface as `VmCost` spans at thread completion.
                if ctx.tracing_enabled() {
                    thread.enable_profiling();
                }
                let token = ctx.fresh_u64();
                self.threads.insert(
                    token,
                    ThreadEntry {
                        thread,
                        reply_to: from,
                        call,
                        root_function: function,
                    },
                );
                self.run_thread(ctx, token, resolver, natives, globals, rpc);
            }
            Err(err) => {
                ctx.metrics().incr("object.invoke_rejected");
                ctx.send(
                    from,
                    Msg::Reply {
                        call,
                        result: Err(err.into()),
                    },
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_thread(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        token: u64,
        resolver: &mut dyn CallResolver,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
        rpc: &mut RpcClient,
    ) {
        let entry = self.threads.get_mut(&token).expect("thread exists");
        let outcome = entry.thread.run(resolver, natives, globals, self.fuel);
        let consumed = SimDuration::from_nanos(entry.thread.take_consumed_nanos());
        match outcome {
            RunOutcome::Completed(value) => {
                let mut entry = self.threads.remove(&token).expect("thread exists");
                self.finish_profile(ctx, &mut entry);
                self.defer(
                    ctx,
                    consumed,
                    Deferred::SendReply {
                        to: entry.reply_to,
                        call: entry.call,
                        result: Ok(value),
                    },
                );
            }
            RunOutcome::Faulted(err) => {
                let mut entry = self.threads.remove(&token).expect("thread exists");
                self.finish_profile(ctx, &mut entry);
                ctx.metrics().incr("object.threads_faulted");
                self.defer(
                    ctx,
                    consumed,
                    Deferred::SendReply {
                        to: entry.reply_to,
                        call: entry.call,
                        result: Err(err.into()),
                    },
                );
            }
            RunOutcome::Suspended(request) => {
                let _ = rpc;
                self.defer(ctx, consumed, Deferred::IssueOutcall { token, request });
            }
        }
    }

    /// Harvests a finished thread's cost profile: emits one `VmCost` span
    /// per function touched (enriching the thread's `CallServed` span) and
    /// folds the counters into the runtime-lifetime aggregate.
    fn finish_profile(&mut self, ctx: &mut Ctx<'_, Msg>, entry: &mut ThreadEntry) {
        let Some(profile) = entry.thread.take_profile() else {
            return;
        };
        for f in &profile.functions {
            ctx.emit_span(SpanKind::VmCost {
                object: self.object.as_raw(),
                call: entry.call.as_raw(),
                function: fn_hash(f.name.as_str()),
                calls: f.stats.calls,
                instructions: f.stats.instructions,
                work_nanos: f.stats.work_nanos,
            });
        }
        self.vm_profile.merge(&profile);
        dcdo_vm::record_global_vm_profile(&profile);
    }

    /// The merged VM cost profile of every profiled thread that finished in
    /// this runtime (empty unless tracing was on).
    pub fn vm_profile(&self) -> &VmProfile {
        &self.vm_profile
    }

    fn defer(&mut self, ctx: &mut Ctx<'_, Msg>, after: SimDuration, action: Deferred) {
        let timer_token = ctx.fresh_u64();
        self.deferred.insert(timer_token, action);
        ctx.schedule_timer(after, timer_token);
    }

    /// Returns `true` if the runtime owns this timer token.
    pub fn owns_timer(&self, token: u64) -> bool {
        self.deferred.contains_key(&token)
    }

    /// Handles a fired timer. Returns `true` if the timer was ours.
    pub fn handle_timer(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        token: u64,
        resolver: &mut dyn CallResolver,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
        rpc: &mut RpcClient,
    ) -> bool {
        let Some(action) = self.deferred.remove(&token) else {
            return false;
        };
        match action {
            Deferred::SendReply { to, call, result } => {
                ctx.send(to, Msg::Reply { call, result });
            }
            Deferred::IssueOutcall { token, request } => {
                // The thread may have been aborted while the outcall was
                // deferred (forced component removal).
                if !self.threads.contains_key(&token) {
                    return true;
                }
                let rpc_call = rpc.invoke(ctx, request.target, request.function, request.args);
                self.outcalls.insert(rpc_call.as_raw(), token);
            }
            Deferred::ResumeThread { token } => {
                if self.threads.contains_key(&token) {
                    self.run_thread(ctx, token, resolver, natives, globals, rpc);
                }
            }
        }
        true
    }

    /// Returns `true` if this RPC completion answers one of our outcalls.
    pub fn owns_completion(&self, completion: &RpcCompletion) -> bool {
        self.outcalls.contains_key(&completion.call.as_raw())
    }

    /// Feeds an outcall completion back into the suspended thread and
    /// reschedules it.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_outcall_completion(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        completion: RpcCompletion,
        resolver: &mut dyn CallResolver,
        natives: &NativeRegistry,
        globals: &mut ValueStore,
        rpc: &mut RpcClient,
    ) {
        let Some(token) = self.outcalls.remove(&completion.call.as_raw()) else {
            return;
        };
        let Some(entry) = self.threads.get_mut(&token) else {
            return; // thread was aborted while the outcall was in flight
        };
        match completion.result {
            Ok(payload) => {
                let value = payload.into_value().unwrap_or(Value::Unit);
                entry.thread.resume(value);
            }
            Err(fault) => {
                entry
                    .thread
                    .resume_err(VmError::RemoteCallFailed(fault.to_string()));
            }
        }
        // Re-entry costs nothing extra; the thread's own Work/dispatch
        // charges apply on the next run.
        self.defer(ctx, SimDuration::ZERO, Deferred::ResumeThread { token });
        let _ = (resolver, natives, globals, rpc);
    }

    /// Names the root function of each live thread (diagnostics).
    pub fn live_thread_functions(&self) -> Vec<FunctionName> {
        self.threads
            .values()
            .map(|e| e.root_function.clone())
            .collect()
    }
}

impl std::fmt::Debug for ObjectRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectRuntime")
            .field("object", &self.object)
            .field("live_threads", &self.threads.len())
            .field("deferred", &self.deferred.len())
            .field("invocations_served", &self.invocations_served)
            .finish()
    }
}

//! End-to-end substrate scenarios: instance creation, remote invocation,
//! whole-executable evolution, migration, and the stale-binding discovery
//! costs the paper reports in §4.

use dcdo_sim::SimDuration;
use dcdo_types::{ClassId, ObjectId};
use dcdo_vm::{FunctionBuilder, Value};
use legion_substrate::class::{
    CheckpointDone, CheckpointInstance, ClassObject, CreateInstance, EvolveInstance,
    InstanceCreated, LifecycleDone, ListInstances, MigrateInstance, ReactivateInstance,
    SetCurrentImage,
};
use legion_substrate::harness::Testbed;
use legion_substrate::monolithic::{ExecutableImage, QueryVersion, VersionReport};
use legion_substrate::{ControlOp, InvocationFault, ReplyPayload};

fn adder_image(version: u32, extra_functions: usize, size_bytes: u64) -> ExecutableImage {
    let mut functions = vec![
        FunctionBuilder::parse("add(int, int) -> int")
            .expect("signature")
            .load_arg(0)
            .load_arg(1)
            .add()
            .ret()
            .build()
            .expect("valid"),
        FunctionBuilder::parse("scale(int) -> int")
            .expect("signature")
            .load_arg(0)
            .push_int(version as i64)
            .mul()
            .ret()
            .build()
            .expect("valid"),
        {
            // bump() = count := (count is unset ? 0 : count) + 1
            let mut b = FunctionBuilder::parse("bump() -> int").expect("signature");
            let has_value = b.new_label();
            b.global_get("count")
                .dup()
                .push(())
                .eq()
                .jump_if_false(has_value)
                .pop()
                .push_int(0)
                .bind(has_value)
                .push_int(1)
                .add()
                .dup()
                .global_set("count")
                .ret();
            b.build().expect("valid")
        },
    ];
    for i in 0..extra_functions {
        functions.push(
            FunctionBuilder::parse(&format!("filler_{i}() -> unit"))
                .expect("signature")
                .ret()
                .build()
                .expect("valid"),
        );
    }
    ExecutableImage::new(version, functions, size_bytes)
}

/// Builds a testbed with one class object managing `adder` images.
fn setup(seed: u64) -> (Testbed, ObjectId) {
    let mut bed = Testbed::centurion(seed);
    let class_object = bed.fresh_object_id();
    let image = adder_image(1, 0, 550_000);
    let class = ClassObject::new(
        class_object,
        ClassId::from_raw(1),
        image,
        bed.cost.clone(),
        bed.agent,
    );
    let actor = bed.sim.spawn(bed.nodes[0], class);
    bed.register(class_object, actor);
    (bed, class_object)
}

fn create_instance(bed: &mut Testbed, class_object: ObjectId, node: u32) -> ObjectId {
    let (_, client) = bed.spawn_client(bed.nodes[0]);
    let completion = bed.control_and_wait(
        client,
        class_object,
        ControlOp::new(CreateInstance {
            node: bed.nodes[node as usize],
        }),
    );
    let payload = completion.result.expect("creation succeeds");
    payload
        .control_as::<InstanceCreated>()
        .expect("instance-created reply")
        .object
}

#[test]
fn create_and_invoke_across_the_network() {
    let (mut bed, class_object) = setup(1);
    let instance = create_instance(&mut bed, class_object, 3);
    let (_, client) = bed.spawn_client(bed.nodes[7]);
    let completion = bed.call_and_wait(
        client,
        instance,
        "add",
        vec![Value::Int(20), Value::Int(22)],
    );
    let value = completion
        .result
        .expect("invocation succeeds")
        .into_value()
        .expect("user-level reply");
    assert_eq!(value, Value::Int(42));
    // Remote roundtrip is milliseconds, not seconds.
    assert!(completion.elapsed < SimDuration::from_millis(100));
    assert_eq!(completion.rebinds, 0);
}

#[test]
fn creation_cost_matches_paper_calibration() {
    let (mut bed, class_object) = setup(2);
    let (_, client) = bed.spawn_client(bed.nodes[0]);
    // First creation pays executable download (550 KB ~ 4s) + spawn.
    let call = bed.client_control(
        client,
        class_object,
        ControlOp::new(CreateInstance { node: bed.nodes[1] }),
    );
    let completion = bed.wait_for(client, call);
    assert!(completion.result.is_ok());
    let first = completion.elapsed.as_secs_f64();
    assert!((3.5..=6.5).contains(&first), "first creation {first}s");

    // Second creation on the same node: executable cached, only spawn cost.
    let call = bed.client_control(
        client,
        class_object,
        ControlOp::new(CreateInstance { node: bed.nodes[1] }),
    );
    let completion = bed.wait_for(client, call);
    let second = completion.elapsed.as_secs_f64();
    assert!(second < 0.5, "cached creation {second}s");
}

#[test]
fn invocations_mutate_persistent_state() {
    let (mut bed, class_object) = setup(3);
    let instance = create_instance(&mut bed, class_object, 2);
    let (_, client) = bed.spawn_client(bed.nodes[4]);
    for expected in 1..=3 {
        let completion = bed.call_and_wait(client, instance, "bump", vec![]);
        let value = completion
            .result
            .expect("invocation succeeds")
            .into_value()
            .expect("value");
        assert_eq!(value, Value::Int(expected));
    }
}

#[test]
fn unknown_function_is_reported_to_the_client() {
    let (mut bed, class_object) = setup(4);
    let instance = create_instance(&mut bed, class_object, 1);
    let (_, client) = bed.spawn_client(bed.nodes[0]);
    let completion = bed.call_and_wait(client, instance, "missing", vec![]);
    assert!(matches!(
        completion.result,
        Err(InvocationFault::NoSuchFunction(_))
    ));
}

#[test]
fn evolution_replaces_executable_and_preserves_state() {
    let (mut bed, class_object) = setup(5);
    let instance = create_instance(&mut bed, class_object, 2);
    let (_, client) = bed.spawn_client(bed.nodes[5]);

    // Accumulate some state, then evolve.
    for _ in 0..5 {
        bed.call_and_wait(client, instance, "bump", vec![]);
    }
    let completion = bed.control_and_wait(
        client,
        class_object,
        ControlOp::new(SetCurrentImage {
            image: adder_image(2, 0, 5_100_000),
        }),
    );
    assert!(completion.result.is_ok());

    let completion = bed.control_and_wait(
        client,
        class_object,
        ControlOp::new(EvolveInstance { object: instance }),
    );
    let payload = completion.result.expect("evolution succeeds");
    let done = payload
        .control_as::<LifecycleDone>()
        .expect("lifecycle-done");
    assert_eq!(done.version, 2);
    // Full monolithic pipeline: capture + 5.1MB download (~22s) + process
    // creation + restore. Paper band for the download alone is 15-25s.
    let total = completion.elapsed.as_secs_f64();
    assert!((15.0..=35.0).contains(&total), "evolution took {total}s");

    // New version answers with the new behavior...
    let mut fresh_client = bed.spawn_client(bed.nodes[6]).1;
    let scaled = bed
        .call_and_wait(fresh_client, instance, "scale", vec![Value::Int(10)])
        .result
        .expect("invocation succeeds")
        .into_value()
        .expect("value");
    assert_eq!(scaled, Value::Int(20), "scale uses the v2 multiplier");
    // ...and the state survived the evolution.
    fresh_client = bed.spawn_client(bed.nodes[6]).1;
    let count = bed
        .call_and_wait(fresh_client, instance, "bump", vec![])
        .result
        .expect("invocation succeeds")
        .into_value()
        .expect("value");
    assert_eq!(
        count,
        Value::Int(6),
        "counter continued from captured state"
    );
}

#[test]
fn stale_binding_discovery_takes_25_to_35_seconds() {
    let (mut bed, class_object) = setup(6);
    let instance = create_instance(&mut bed, class_object, 2);
    let (_, client) = bed.spawn_client(bed.nodes[9]);

    // Prime the client's binding cache with a successful call.
    let completion = bed.call_and_wait(client, instance, "add", vec![Value::Int(1), Value::Int(1)]);
    assert!(completion.result.is_ok());
    assert!(completion.rebinds == 0);

    // Evolve the instance: the old process dies, the binding changes.
    let (_, admin) = bed.spawn_client(bed.nodes[0]);
    bed.control_and_wait(
        admin,
        class_object,
        ControlOp::new(SetCurrentImage {
            image: adder_image(3, 0, 550_000),
        }),
    );
    let done = bed.control_and_wait(
        admin,
        class_object,
        ControlOp::new(EvolveInstance { object: instance }),
    );
    assert!(done.result.is_ok());

    // The client still holds the stale address; its next call must ride
    // through timeouts and a rebind.
    let completion = bed.call_and_wait(client, instance, "add", vec![Value::Int(2), Value::Int(2)]);
    let value = completion
        .result
        .expect("eventually succeeds")
        .into_value()
        .expect("value");
    assert_eq!(value, Value::Int(4));
    assert_eq!(completion.rebinds, 1);
    let discovery = completion.elapsed.as_secs_f64();
    assert!(
        (25.0..=40.0).contains(&discovery),
        "stale-binding discovery took {discovery}s (paper: 25-35s before rebind)"
    );
    // The metric records the pre-rebind discovery window specifically.
    let h = bed
        .sim
        .metrics_mut()
        .histogram_mut("rpc.stale_binding_discovery_time")
        .expect("recorded");
    let observed = h.median().expect("has samples");
    assert!(
        (25.0..=35.0).contains(&observed),
        "discovery window {observed}s"
    );
}

#[test]
fn migration_moves_an_instance_between_hosts() {
    let (mut bed, class_object) = setup(7);
    let instance = create_instance(&mut bed, class_object, 1);
    let (_, client) = bed.spawn_client(bed.nodes[0]);
    for _ in 0..3 {
        bed.call_and_wait(client, instance, "bump", vec![]);
    }
    let completion = bed.control_and_wait(
        client,
        class_object,
        ControlOp::new(MigrateInstance {
            object: instance,
            to: bed.nodes[8],
        }),
    );
    let payload = completion.result.expect("migration succeeds");
    assert!(payload.control_as::<LifecycleDone>().is_some());

    // Instance table reflects the new placement.
    let listing = bed.control_and_wait(client, class_object, ControlOp::new(ListInstances));
    let payload = listing.result.expect("list succeeds");
    let table = payload
        .control_as::<legion_substrate::class::InstanceTable>()
        .expect("instance table");
    assert_eq!(table.entries.len(), 1);
    assert_eq!(table.entries[0].1, bed.nodes[8]);

    // State survived the migration (a fresh client avoids the stale path).
    let (_, fresh) = bed.spawn_client(bed.nodes[3]);
    let count = bed
        .call_and_wait(fresh, instance, "bump", vec![])
        .result
        .expect("invocation succeeds")
        .into_value()
        .expect("value");
    assert_eq!(count, Value::Int(4));
}

#[test]
fn version_query_reports_running_image() {
    let (mut bed, class_object) = setup(8);
    let instance = create_instance(&mut bed, class_object, 1);
    let (_, client) = bed.spawn_client(bed.nodes[2]);
    let completion = bed.control_and_wait(client, instance, ControlOp::new(QueryVersion));
    let payload = completion.result.expect("query succeeds");
    let report = payload
        .control_as::<VersionReport>()
        .expect("version report");
    assert_eq!(report.version, 1);
    assert_eq!(report.functions, 3);
}

#[test]
fn replies_use_reply_payload_helpers() {
    let (mut bed, class_object) = setup(9);
    let instance = create_instance(&mut bed, class_object, 1);
    let (_, client) = bed.spawn_client(bed.nodes[2]);
    let completion = bed.call_and_wait(client, instance, "add", vec![Value::Int(1), Value::Int(2)]);
    let payload = completion.result.expect("ok");
    match &payload {
        ReplyPayload::Value(v) => assert_eq!(*v, Value::Int(3)),
        ReplyPayload::Control(_) => panic!("expected a value reply"),
    }
    assert!(payload.control_as::<VersionReport>().is_none());
}

#[test]
fn evolution_can_park_state_in_the_vault() {
    // Same evolution pipeline, but the class object is configured to park
    // captured state in the vault between the old and new processes.
    let mut bed = Testbed::centurion(10);
    let class_object = bed.fresh_object_id();
    let vault_object = bed.vault_object;
    let class = ClassObject::new(
        class_object,
        ClassId::from_raw(1),
        adder_image(1, 0, 550_000),
        bed.cost.clone(),
        bed.agent,
    )
    .with_vault(vault_object);
    let actor = bed.sim.spawn(bed.nodes[0], class);
    bed.register(class_object, actor);

    let (_, client) = bed.spawn_client(bed.nodes[0]);
    let created = bed.control_and_wait(
        client,
        class_object,
        ControlOp::new(CreateInstance { node: bed.nodes[2] }),
    );
    let instance = created
        .result
        .expect("creation succeeds")
        .control_as::<InstanceCreated>()
        .expect("reply")
        .object;
    for _ in 0..3 {
        bed.call_and_wait(client, instance, "bump", vec![])
            .result
            .expect("bump");
    }

    bed.control_and_wait(
        client,
        class_object,
        ControlOp::new(SetCurrentImage {
            image: adder_image(2, 0, 550_000),
        }),
    )
    .result
    .expect("image set");
    let done = bed.control_and_wait(
        client,
        class_object,
        ControlOp::new(EvolveInstance { object: instance }),
    );
    assert!(done.result.is_ok());

    // The vault served a save and a load, and still holds the parked blob.
    assert!(bed.sim.metrics().counter("vault.saves") >= 1);
    assert!(bed.sim.metrics().counter("vault.loads") >= 1);
    let vault_ref = bed
        .sim
        .actor::<legion_substrate::vault::Vault>(bed.vault)
        .expect("vault alive");
    assert!(vault_ref.stored_state(instance).is_some());

    // State survived the vault round-trip.
    let (_, fresh) = bed.spawn_client(bed.nodes[5]);
    let count = bed
        .call_and_wait(fresh, instance, "bump", vec![])
        .result
        .expect("bump")
        .into_value()
        .expect("value");
    assert_eq!(count, Value::Int(4));
}

#[test]
fn crashed_instance_reactivates_from_vault_snapshot() {
    // Checkpoint an instance into the vault, crash its host, then bring it
    // back with ReactivateInstance: a fresh process is spawned, the parked
    // state restored, the binding re-registered — and a client that still
    // holds the dead address recovers through the stale-binding path.
    let mut bed = Testbed::centurion(11);
    let class_object = bed.fresh_object_id();
    let class = ClassObject::new(
        class_object,
        ClassId::from_raw(1),
        adder_image(1, 0, 550_000),
        bed.cost.clone(),
        bed.agent,
    )
    .with_vault(bed.vault_object);
    let class_actor = bed.sim.spawn(bed.nodes[0], class);
    bed.register(class_object, class_actor);

    let (_, client) = bed.spawn_client(bed.nodes[1]);
    let created = bed.control_and_wait(
        client,
        class_object,
        ControlOp::new(CreateInstance { node: bed.nodes[3] }),
    );
    let instance = created
        .result
        .expect("creation succeeds")
        .control_as::<InstanceCreated>()
        .expect("reply")
        .object;
    for _ in 0..3 {
        bed.call_and_wait(client, instance, "bump", vec![])
            .result
            .expect("bump");
    }

    let ck = bed.control_and_wait(
        client,
        class_object,
        ControlOp::new(CheckpointInstance { object: instance }),
    );
    assert!(ck
        .result
        .expect("checkpoint succeeds")
        .control_as::<CheckpointDone>()
        .is_some());

    // The host dies. Its actors are gone, its executables are gone, and
    // the authoritative bindings to it are invalidated.
    let dead = bed.sim.actors_on(bed.nodes[3]);
    bed.sim.crash_node(bed.nodes[3]);
    bed.sim
        .actor_mut::<legion_substrate::binding::BindingAgent>(bed.agent.actor)
        .expect("agent alive")
        .invalidate_addresses(&dead);
    bed.sim
        .actor_mut::<ClassObject>(class_actor)
        .expect("class alive")
        .forget_downloads(bed.nodes[3]);
    bed.sim.restart_node(bed.nodes[3]);

    let (_, operator) = bed.spawn_client(bed.nodes[2]);
    let done = bed.control_and_wait(
        operator,
        class_object,
        ControlOp::new(ReactivateInstance {
            object: instance,
            node: bed.nodes[3],
        }),
    );
    let done = done
        .result
        .expect("reactivation succeeds")
        .control_as::<LifecycleDone>()
        .expect("lifecycle-done reply")
        .clone();
    assert_eq!(done.object, instance);
    assert!(
        !dead.contains(&done.address),
        "the revived process must be a fresh actor"
    );

    // A fresh client sees the checkpointed state.
    let (_, fresh) = bed.spawn_client(bed.nodes[5]);
    let count = bed
        .call_and_wait(fresh, instance, "bump", vec![])
        .result
        .expect("bump after reactivation")
        .into_value()
        .expect("value");
    assert_eq!(count, Value::Int(4), "three bumps survived the crash");

    // The original client still holds the dead address; its next call pays
    // the stale-binding discovery and then lands on the revived process.
    let c = bed.call_and_wait(client, instance, "bump", vec![]);
    assert_eq!(
        c.result.expect("recovers").into_value().expect("value"),
        Value::Int(5)
    );
    assert!(c.rebinds >= 1, "client rebound after the crash");
    // The node restarted immediately, so sends to the dead process land as
    // dead letters (the crash/queue sweep is covered by sim.node_crashes).
    assert_eq!(bed.sim.metrics().counter("sim.node_crashes"), 1);
    assert!(bed.sim.metrics().counter("sim.dead_letters") >= 1);
}

//! Focused tests of the client-side RPC machinery: retry/backoff against
//! dead addresses, rebinding via the agent, overall deadlines, and the
//! handling of late/duplicate replies.

use dcdo_sim::{NetConfig, SimDuration};
use dcdo_types::ObjectId;
use dcdo_vm::{FunctionBuilder, Value};
use legion_substrate::client::ClientObject;
use legion_substrate::cost::CostModel;
use legion_substrate::harness::Testbed;
use legion_substrate::monolithic::{ExecutableImage, MonolithicObject};
use legion_substrate::rpc::RpcClient;
use legion_substrate::InvocationFault;

fn echo_image() -> ExecutableImage {
    let echo = FunctionBuilder::parse("echo(int) -> int")
        .expect("signature")
        .load_arg(0)
        .ret()
        .build()
        .expect("valid");
    ExecutableImage::new(1, vec![echo], 100_000)
}

/// Spawns a monolithic echo object directly (no class object) and registers
/// its binding.
fn spawn_echo(bed: &mut Testbed, node: usize) -> (ObjectId, dcdo_sim::ActorId) {
    let object = bed.fresh_object_id();
    let image = echo_image();
    let rpc = RpcClient::new(bed.agent, bed.cost.clone());
    let actor = bed.sim.spawn(
        bed.nodes[node],
        MonolithicObject::new(object, &image, &bed.cost.clone(), rpc),
    );
    bed.register(object, actor);
    (object, actor)
}

#[test]
fn calls_to_unregistered_objects_time_out_at_the_deadline() {
    let mut bed = Testbed::centurion(1);
    let ghost = bed.fresh_object_id(); // never registered anywhere
    let (_, client) = bed.spawn_client(bed.nodes[1]);
    let completion = bed.call_and_wait(client, ghost, "echo", vec![Value::Int(1)]);
    assert!(matches!(completion.result, Err(InvocationFault::Timeout)));
    let elapsed = completion.elapsed.as_secs_f64();
    let deadline = CostModel::centurion().invocation_deadline.as_secs_f64();
    assert!(
        (deadline - 10.0..=deadline + 10.0).contains(&elapsed),
        "gave up near the deadline: {elapsed}s"
    );
}

#[test]
fn dead_address_with_reregistration_recovers_after_retries() {
    let mut bed = Testbed::centurion(2);
    let (object, actor) = spawn_echo(&mut bed, 2);
    let (_, client) = bed.spawn_client(bed.nodes[5]);
    // Prime the cache.
    let c = bed.call_and_wait(client, object, "echo", vec![Value::Int(7)]);
    assert!(c.result.is_ok());
    assert_eq!(c.attempts, 1);

    // Kill the process and immediately re-register at a new address.
    bed.sim.kill(actor);
    let (_, new_actor) = {
        let object2 = object;
        let image = echo_image();
        let rpc = RpcClient::new(bed.agent, bed.cost.clone());
        let node = bed.nodes[6];
        let cost = bed.cost.clone();
        let actor = bed
            .sim
            .spawn(node, MonolithicObject::new(object2, &image, &cost, rpc));
        bed.register(object2, actor);
        (object2, actor)
    };
    let _ = new_actor;

    let c = bed.call_and_wait(client, object, "echo", vec![Value::Int(8)]);
    assert_eq!(
        c.result.expect("recovered").into_value().expect("value"),
        Value::Int(8)
    );
    assert_eq!(c.rebinds, 1);
    assert!(
        c.attempts >= CostModel::centurion().binding_attempts,
        "exhausted the attempt budget before consulting the agent: {} attempts",
        c.attempts
    );
    let elapsed = c.elapsed.as_secs_f64();
    assert!(
        (25.0..=40.0).contains(&elapsed),
        "discovery window {elapsed}s"
    );
}

#[test]
fn no_such_object_reply_short_circuits_to_rebind() {
    // An *alive* actor hosting a different object answers NoSuchObject,
    // which skips the 25-35 s timeout path entirely.
    let mut bed = Testbed::centurion(3);
    let (object_a, actor_a) = spawn_echo(&mut bed, 2);
    let (object_b, _) = spawn_echo(&mut bed, 3);
    let (_, client) = bed.spawn_client(bed.nodes[5]);
    // Poison the client's cache: object_b supposedly lives at actor_a.
    bed.sim
        .actor_mut::<ClientObject>(client)
        .expect("client alive")
        .seed_binding(object_b, actor_a);
    let c = bed.call_and_wait(client, object_b, "echo", vec![Value::Int(9)]);
    assert_eq!(
        c.result.expect("recovered").into_value().expect("value"),
        Value::Int(9)
    );
    assert_eq!(c.rebinds, 1);
    assert!(
        c.elapsed < SimDuration::from_secs(1),
        "fast recovery, no timeout needed: {}",
        c.elapsed
    );
    let _ = object_a;
}

#[test]
fn message_loss_triggers_same_address_retries() {
    let mut cfg = NetConfig::centurion();
    cfg.loss_rate = 0.35;
    // Seed chosen so every call eventually succeeds within its retry budget
    // while still forcing a healthy number of loss-driven retries.
    let mut bed = Testbed::new(16, CostModel::centurion(), cfg, 2);
    let (object, _) = spawn_echo(&mut bed, 2);
    let (_, client) = bed.spawn_client(bed.nodes[5]);
    let mut total_attempts = 0;
    for i in 0..10 {
        let c = bed.call_and_wait(client, object, "echo", vec![Value::Int(i)]);
        assert!(c.result.is_ok(), "call {i} failed");
        total_attempts += c.attempts;
    }
    assert!(
        total_attempts > 10,
        "at 35% loss some calls must have retried (attempts = {total_attempts})"
    );
}

#[test]
fn in_flight_accounting_balances() {
    let mut bed = Testbed::centurion(5);
    let (object, _) = spawn_echo(&mut bed, 1);
    let (_, client) = bed.spawn_client(bed.nodes[2]);
    let calls: Vec<_> = (0..5)
        .map(|i| bed.client_call(client, object, "echo", vec![Value::Int(i)]))
        .collect();
    {
        let c = bed.sim.actor::<ClientObject>(client).expect("client alive");
        assert_eq!(c.in_flight(), 5);
    }
    for call in calls {
        bed.wait_for(client, call);
    }
    let c = bed.sim.actor::<ClientObject>(client).expect("client alive");
    assert_eq!(c.in_flight(), 0);
    assert!(c.completions().is_empty(), "all completions were drained");
}

#[test]
fn concurrent_clients_share_one_server() {
    let mut bed = Testbed::centurion(6);
    let (object, _) = spawn_echo(&mut bed, 0);
    let clients: Vec<_> = (1..9).map(|n| bed.spawn_client(bed.nodes[n]).1).collect();
    let calls: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            (
                *c,
                bed.client_call(*c, object, "echo", vec![Value::Int(i as i64)]),
            )
        })
        .collect();
    for (i, (client, call)) in calls.into_iter().enumerate() {
        let c = bed.wait_for(client, call);
        assert_eq!(
            c.result.expect("ok").into_value().expect("value"),
            Value::Int(i as i64)
        );
    }
}

#[test]
fn duplicate_deliveries_do_not_confuse_the_protocol() {
    // Duplication injection: the engine re-delivers messages late; duplicate
    // replies to an already-settled call must be dropped as stale, and every
    // call still completes exactly once.
    let mut cfg = NetConfig::centurion();
    cfg.duplicate_rate = 0.5;
    let mut bed = Testbed::new(16, CostModel::centurion(), cfg, 7);
    let (object, _) = spawn_echo(&mut bed, 2);
    let (_, client) = bed.spawn_client(bed.nodes[5]);
    for i in 0..20 {
        let c = bed.call_and_wait(client, object, "echo", vec![Value::Int(i)]);
        let v = c
            .result
            .expect("completes once")
            .into_value()
            .expect("value");
        assert_eq!(v, Value::Int(i));
    }
    let c = bed.sim.actor::<ClientObject>(client).expect("client alive");
    assert_eq!(c.in_flight(), 0);
    assert!(
        bed.sim.metrics().counter("sim.duplicates_planned") > 0,
        "duplication actually occurred"
    );
}

#[test]
fn dead_address_without_reregistration_fails_unreachable_before_deadline() {
    // The agent keeps handing out the same dead address (nobody invalidated
    // it): the client burns its rebind budget and reports Unreachable well
    // before the 120 s deadline, instead of cycling until Timeout.
    let mut bed = Testbed::centurion(8);
    let (object, actor) = spawn_echo(&mut bed, 2);
    let (_, client) = bed.spawn_client(bed.nodes[5]);
    let c = bed.call_and_wait(client, object, "echo", vec![Value::Int(1)]);
    assert!(c.result.is_ok());

    bed.sim.kill(actor); // binding left stale on purpose
    let c = bed.call_and_wait(client, object, "echo", vec![Value::Int(2)]);
    assert!(matches!(c.result, Err(InvocationFault::Unreachable)));
    let max_rebinds = CostModel::centurion().max_rebinds;
    assert_eq!(c.rebinds, max_rebinds + 1);
    let elapsed = c.elapsed.as_secs_f64();
    let deadline = CostModel::centurion().invocation_deadline.as_secs_f64();
    assert!(
        elapsed < deadline,
        "gave up before the deadline: {elapsed}s >= {deadline}s"
    );
    assert!(bed.sim.metrics().counter("rpc.unreachable") >= 1);
}

#[test]
fn unanswered_binding_queries_back_off_and_fail_unreachable() {
    // The binding agent itself is dead: the client's queries go unanswered,
    // each retry backs off exponentially, and after the budget is spent the
    // call fails Unreachable (not an endless requery loop).
    let mut bed = Testbed::centurion(9);
    let ghost = bed.fresh_object_id();
    let (_, client) = bed.spawn_client(bed.nodes[3]);
    bed.sim.kill(bed.agent.actor);
    let c = bed.call_and_wait(client, ghost, "echo", vec![Value::Int(1)]);
    assert!(matches!(c.result, Err(InvocationFault::Unreachable)));
    // 4 unanswered queries at 5 s, 10 s, 20 s, 40 s: gone by ~75 s.
    let elapsed = c.elapsed.as_secs_f64();
    assert!(
        (70.0..=80.0).contains(&elapsed),
        "exponential backoff window: {elapsed}s"
    );
}

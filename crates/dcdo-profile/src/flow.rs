//! Flow collection, per-step latency breakdown, and the reconfiguration
//! cost table.

use std::collections::HashMap;

use dcdo_trace::{FlowKind, SpanId, SpanKind, TraceLog};

/// Synthetic step code for the segment between `FlowStarted` and the first
/// `FlowStep` (usually zero-length: both fire in the same handler).
pub const STEP_INIT: u32 = u32::MAX;

/// One flow reconstructed from the log.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// The flow id.
    pub flow: u64,
    /// The object the flow concerned.
    pub object: u64,
    /// The flow's semantic kind.
    pub kind: FlowKind,
    /// Span id of the `FlowStarted` event.
    pub start_span: SpanId,
    /// When the flow started (sim ns).
    pub start_ns: u64,
    /// Span id of the terminal event, if the flow terminated.
    pub end_span: Option<SpanId>,
    /// When the flow terminated (sim ns), if it did.
    pub end_ns: Option<u64>,
    /// `true` if the terminal event was `FlowAborted`.
    pub aborted: bool,
    /// `(step code, entered at ns)` in emit order.
    pub steps: Vec<(u32, u64)>,
}

impl FlowRecord {
    /// End-to-end latency, for terminated flows.
    pub fn latency_ns(&self) -> Option<u64> {
        self.end_ns.map(|end| end.saturating_sub(self.start_ns))
    }

    /// The flow's timeline as `(step, entered_at, left_at)` segments that
    /// partition `[start_ns, end_ns]`. Empty for unterminated flows.
    pub fn segments(&self) -> Vec<(u32, u64, u64)> {
        let Some(end) = self.end_ns else {
            return Vec::new();
        };
        let mut marks: Vec<(u32, u64)> = Vec::with_capacity(self.steps.len() + 1);
        marks.push((STEP_INIT, self.start_ns));
        marks.extend(self.steps.iter().copied());
        let mut out = Vec::with_capacity(marks.len());
        for (i, &(step, at)) in marks.iter().enumerate() {
            let until = marks.get(i + 1).map_or(end, |&(_, next)| next);
            out.push((step, at, until.max(at)));
        }
        out
    }
}

/// Reconstructs every flow in the log, in start order.
pub fn collect_flows(log: &TraceLog) -> Vec<FlowRecord> {
    let mut order: Vec<u64> = Vec::new();
    let mut by_id: HashMap<u64, FlowRecord> = HashMap::new();
    for e in log.events() {
        match &e.kind {
            SpanKind::FlowStarted { flow, object, kind } => {
                by_id.entry(*flow).or_insert_with(|| {
                    order.push(*flow);
                    FlowRecord {
                        flow: *flow,
                        object: *object,
                        kind: *kind,
                        start_span: e.id,
                        start_ns: e.at_ns,
                        end_span: None,
                        end_ns: None,
                        aborted: false,
                        steps: Vec::new(),
                    }
                });
            }
            SpanKind::FlowStep { flow, step } => {
                if let Some(r) = by_id.get_mut(flow) {
                    r.steps.push((*step, e.at_ns));
                }
            }
            SpanKind::FlowCompleted { flow } | SpanKind::FlowAborted { flow } => {
                if let Some(r) = by_id.get_mut(flow) {
                    if r.end_span.is_none() {
                        r.end_span = Some(e.id);
                        r.end_ns = Some(e.at_ns);
                        r.aborted = matches!(e.kind, SpanKind::FlowAborted { .. });
                    }
                }
            }
            _ => {}
        }
    }
    order
        .into_iter()
        .filter_map(|flow| by_id.remove(&flow))
        .collect()
}

/// Aggregated time spent in one `(flow kind, step)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStat {
    /// The flow kind.
    pub kind: FlowKind,
    /// The layer's stable step code ([`STEP_INIT`] for the pre-step gap).
    pub step: u32,
    /// Times the step was entered (across all terminated flows).
    pub count: u64,
    /// Total sim time spent in the step.
    pub total_ns: u64,
    /// Longest single stay.
    pub max_ns: u64,
}

impl StepStat {
    /// Integer mean stay (ns).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Splits every terminated flow's latency across its step codes and
/// aggregates per `(kind, step)`, sorted by `(kind code, step)` with the
/// synthetic [`STEP_INIT`] cell last within its kind.
pub fn step_breakdown(flows: &[FlowRecord]) -> Vec<StepStat> {
    let mut cells: HashMap<(u64, u32), StepStat> = HashMap::new();
    for f in flows {
        for (step, from, to) in f.segments() {
            let d = to - from;
            let cell = cells.entry((f.kind.code(), step)).or_insert(StepStat {
                kind: f.kind,
                step,
                count: 0,
                total_ns: 0,
                max_ns: 0,
            });
            cell.count += 1;
            cell.total_ns += d;
            cell.max_ns = cell.max_ns.max(d);
        }
    }
    let mut out: Vec<StepStat> = cells.into_values().collect();
    out.sort_by_key(|s| (s.kind.code(), s.step));
    out
}

/// Human name of a layer step code within its flow kind.
///
/// Manager lifecycle flows (create/update/migrate/…) share the manager's
/// step vocabulary; object-local [`FlowKind::Config`] flows use the DCDO's
/// staged-fetch vocabulary.
pub fn step_name(kind: FlowKind, step: u32) -> &'static str {
    if step == STEP_INIT {
        return "init";
    }
    match kind {
        FlowKind::Config => match step {
            0 => "descriptor",
            1 => "host_check",
            2 => "ico_read",
            3 => "host_store",
            4 => "map",
            5 => "gate",
            6 => "apply",
            _ => "unknown",
        },
        _ => match step {
            0 => "capture",
            1 => "deactivate",
            2 => "unregister",
            3 => "spawn",
            4 => "register",
            5 => "apply",
            6 => "restore",
            7 => "save_vault",
            8 => "load_vault",
            _ => "unknown",
        },
    }
}

/// One row of the reconfiguration-cost table (per flow kind): the paper's
/// §5 shape — how long each kind of configuration operation takes and what
/// it costs on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostRow {
    /// The flow kind.
    pub kind: FlowKind,
    /// Terminated flows of this kind.
    pub flows: u64,
    /// How many of them aborted.
    pub aborted: u64,
    /// Mean end-to-end latency (integer ns).
    pub mean_ns: u64,
    /// Median (nearest-rank) latency.
    pub median_ns: u64,
    /// 99th-percentile (nearest-rank) latency.
    pub p99_ns: u64,
    /// Worst latency.
    pub max_ns: u64,
    /// Messages offered to the network on behalf of these flows.
    pub messages: u64,
    /// Wire bytes of those messages.
    pub bytes: u64,
}

/// Nearest-rank quantile of a sorted sample set.
fn nearest_rank(sorted: &[u64], q_num: u64, q_den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (n * q_num).div_ceil(q_den).max(1);
    sorted[(rank - 1) as usize]
}

/// Assigns every span in the log to the causal cone of at most one flow,
/// with *most-recent-context-wins* semantics.
///
/// A handling event (the delivery or timer a worker was processing) that
/// emitted a flow marker becomes a **flow context**: everything causally
/// downstream of it — the sends issued in that same handling, their
/// deliveries, the timers they arm — belongs to that flow, until a later
/// handling in the chain emits a marker of a different flow and re-tags its
/// own downstream. This matters for serialized workflows, where one long
/// client → manager causal chain hosts many flows back to back; a plain
/// first-wins cone would funnel every later flow's traffic into the first.
///
/// Propagation is one id-ordered pass (children always have larger ids
/// than parents). Returns `span raw id → flow id`.
fn flow_cones(log: &TraceLog) -> HashMap<u64, u64> {
    // Handling span → the flow whose marker it emitted (first marker wins
    // within a single handling).
    let mut context: HashMap<u64, u64> = HashMap::new();
    for e in log.events() {
        if let Some(f) = e.kind.flow_id() {
            if let Some(p) = e.parent {
                context.entry(p.as_raw()).or_insert(f);
            }
        }
    }
    let mut assign: HashMap<u64, u64> = HashMap::new();
    for e in log.events() {
        let raw = e.id.as_raw();
        if let Some(f) = e.kind.flow_id() {
            assign.insert(raw, f);
            continue;
        }
        if let Some(p) = e.parent {
            let p = p.as_raw();
            if let Some(f) = context.get(&p) {
                assign.insert(raw, *f);
            } else if let Some(f) = assign.get(&p).copied() {
                assign.insert(raw, f);
            }
        }
    }
    assign
}

/// Builds the reconfiguration-cost table: one row per flow kind present in
/// the log, sorted by kind code. Message/byte costs come from the `MsgSent`
/// spans causally attributed to each flow (see [`flow_cones`]).
pub fn cost_table(log: &TraceLog, flows: &[FlowRecord]) -> Vec<CostRow> {
    let cones = flow_cones(log);
    let mut traffic: HashMap<u64, (u64, u64)> = HashMap::new();
    for e in log.events() {
        if let SpanKind::MsgSent { bytes, .. } = &e.kind {
            if let Some(flow) = cones.get(&e.id.as_raw()) {
                let t = traffic.entry(*flow).or_insert((0, 0));
                t.0 += 1;
                t.1 += *bytes;
            }
        }
    }
    let mut latencies: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut rows: HashMap<u64, CostRow> = HashMap::new();
    for f in flows {
        let Some(latency) = f.latency_ns() else {
            continue;
        };
        let row = rows.entry(f.kind.code()).or_insert(CostRow {
            kind: f.kind,
            flows: 0,
            aborted: 0,
            mean_ns: 0,
            median_ns: 0,
            p99_ns: 0,
            max_ns: 0,
            messages: 0,
            bytes: 0,
        });
        row.flows += 1;
        row.aborted += u64::from(f.aborted);
        row.max_ns = row.max_ns.max(latency);
        if let Some((messages, bytes)) = traffic.get(&f.flow) {
            row.messages += messages;
            row.bytes += bytes;
        }
        latencies.entry(f.kind.code()).or_default().push(latency);
    }
    for (code, lats) in &mut latencies {
        lats.sort_unstable();
        let row = rows.get_mut(code).expect("row exists");
        row.mean_ns = lats.iter().sum::<u64>() / lats.len() as u64;
        row.median_ns = nearest_rank(lats, 1, 2);
        row.p99_ns = nearest_rank(lats, 99, 100);
    }
    let mut out: Vec<CostRow> = rows.into_values().collect();
    out.sort_by_key(|r| r.kind.code());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdo_trace::{SendVerdict, NO_NODE};

    fn two_flow_log() -> TraceLog {
        let mut l = TraceLog::new();
        l.enable();
        let start = l.emit(
            100,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 1,
                object: 9,
                kind: FlowKind::Config,
            },
        );
        l.emit(100, 0, start, SpanKind::FlowStep { flow: 1, step: 1 });
        l.emit(
            150,
            0,
            start,
            SpanKind::MsgSent {
                src: 1,
                dst: 2,
                src_node: 0,
                dst_node: 1,
                verdict: SendVerdict::Sent,
                bytes: 200,
            },
        );
        l.emit(400, 0, start, SpanKind::FlowStep { flow: 1, step: 4 });
        l.emit(600, 0, start, SpanKind::FlowCompleted { flow: 1 });
        let s2 = l.emit(
            700,
            NO_NODE,
            None,
            SpanKind::FlowStarted {
                flow: 2,
                object: 9,
                kind: FlowKind::Config,
            },
        );
        l.emit(900, 0, s2, SpanKind::FlowAborted { flow: 2 });
        // An unterminated flow is excluded from latency stats.
        l.emit(
            950,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 3,
                object: 9,
                kind: FlowKind::Update,
            },
        );
        l
    }

    #[test]
    fn collect_reconstructs_flows_in_start_order() {
        let log = two_flow_log();
        let flows = collect_flows(&log);
        assert_eq!(flows.len(), 3);
        assert_eq!(flows[0].flow, 1);
        assert_eq!(flows[0].latency_ns(), Some(500));
        assert!(!flows[0].aborted);
        assert_eq!(flows[0].steps, vec![(1, 100), (4, 400)]);
        assert!(flows[1].aborted);
        assert_eq!(flows[2].latency_ns(), None);
    }

    #[test]
    fn segments_partition_the_flow_latency() {
        let log = two_flow_log();
        let flows = collect_flows(&log);
        let segs = flows[0].segments();
        assert_eq!(
            segs,
            vec![(STEP_INIT, 100, 100), (1, 100, 400), (4, 400, 600)]
        );
        let total: u64 = segs.iter().map(|(_, a, b)| b - a).sum();
        assert_eq!(Some(total), flows[0].latency_ns());
    }

    #[test]
    fn step_breakdown_aggregates_per_kind_and_step() {
        let log = two_flow_log();
        let flows = collect_flows(&log);
        let steps = step_breakdown(&flows);
        // Config flow 1 contributes init/1/4; flow 2 contributes init only.
        let step1 = steps
            .iter()
            .find(|s| s.kind == FlowKind::Config && s.step == 1)
            .expect("step 1 cell");
        assert_eq!(
            (step1.count, step1.total_ns, step1.mean_ns()),
            (1, 300, 300)
        );
        let init = steps
            .iter()
            .find(|s| s.kind == FlowKind::Config && s.step == STEP_INIT)
            .expect("init cell");
        assert_eq!(init.count, 2);
        assert_eq!(init.total_ns, 200); // flow 2: 700 → 900 with no steps
    }

    #[test]
    fn cost_table_rows_cover_latency_and_wire_cost() {
        let log = two_flow_log();
        let flows = collect_flows(&log);
        let table = cost_table(&log, &flows);
        assert_eq!(table.len(), 1, "only config flows terminated");
        let row = &table[0];
        assert_eq!(row.kind, FlowKind::Config);
        assert_eq!(row.flows, 2);
        assert_eq!(row.aborted, 1);
        assert_eq!(row.mean_ns, (500 + 200) / 2);
        assert_eq!(row.median_ns, 200);
        assert_eq!(row.p99_ns, 500);
        assert_eq!(row.max_ns, 500);
        assert_eq!((row.messages, row.bytes), (1, 200));
    }

    #[test]
    fn step_names_are_stable() {
        assert_eq!(step_name(FlowKind::Config, 0), "descriptor");
        assert_eq!(step_name(FlowKind::Config, 6), "apply");
        assert_eq!(step_name(FlowKind::Update, 5), "apply");
        assert_eq!(step_name(FlowKind::Recover, 8), "load_vault");
        assert_eq!(step_name(FlowKind::Create, STEP_INIT), "init");
    }
}

//! VM cost aggregation from `VmCost` spans.

use std::collections::HashMap;

use dcdo_trace::{fn_hash, SpanKind, TraceLog};

/// The out-of-band hash → name table for [`SpanKind::VmCost`]'s
/// `function` field (the inverse of [`fn_hash`]).
///
/// The trace is integer-only; layers that know the function names register
/// them here so reports can print names instead of hashes.
#[derive(Debug, Clone, Default)]
pub struct FnNames {
    map: HashMap<u64, String>,
}

impl FnNames {
    /// Creates an empty table.
    pub fn new() -> Self {
        FnNames::default()
    }

    /// Registers a function name under its [`fn_hash`].
    pub fn insert(&mut self, name: &str) -> &mut Self {
        self.map.insert(fn_hash(name), name.to_string());
        self
    }

    /// Looks a hash up.
    pub fn name(&self, hash: u64) -> Option<&str> {
        self.map.get(&hash).map(String::as_str)
    }
}

/// Aggregated VM cost of one function across every profiled thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmFnCost {
    /// [`fn_hash`] of the function name.
    pub function: u64,
    /// The resolved name, when the caller's [`FnNames`] table knows it.
    pub name: Option<String>,
    /// Finished threads that touched the function.
    pub threads: u64,
    /// Times the function was entered.
    pub calls: u64,
    /// Instructions retired inside it (equal to the fuel it consumed).
    pub instructions: u64,
    /// Simulated nanoseconds its `Work` instructions charged.
    pub work_nanos: u64,
}

/// Aggregates every `VmCost` span in the log into a per-function hot list,
/// sorted by `work_nanos` descending (ties: instructions, then hash — fully
/// deterministic).
pub fn vm_costs(log: &TraceLog, names: &FnNames) -> Vec<VmFnCost> {
    vm_costs_between(log, names, 0, u64::MAX)
}

/// Like [`vm_costs`] but restricted to spans with
/// `start_ns <= at_ns < end_ns` — the tool behind pre/post-reconfiguration
/// cost deltas: split the log at the reconfiguration's generation stamp and
/// compare the two windows.
pub fn vm_costs_between(
    log: &TraceLog,
    names: &FnNames,
    start_ns: u64,
    end_ns: u64,
) -> Vec<VmFnCost> {
    let mut by_fn: HashMap<u64, VmFnCost> = HashMap::new();
    for e in log.events() {
        if e.at_ns < start_ns || e.at_ns >= end_ns {
            continue;
        }
        if let SpanKind::VmCost {
            function,
            calls,
            instructions,
            work_nanos,
            ..
        } = &e.kind
        {
            let cost = by_fn.entry(*function).or_insert_with(|| VmFnCost {
                function: *function,
                name: names.name(*function).map(str::to_string),
                threads: 0,
                calls: 0,
                instructions: 0,
                work_nanos: 0,
            });
            cost.threads += 1;
            cost.calls += *calls;
            cost.instructions += *instructions;
            cost.work_nanos += *work_nanos;
        }
    }
    let mut out: Vec<VmFnCost> = by_fn.into_values().collect();
    out.sort_by(|a, b| {
        b.work_nanos
            .cmp(&a.work_nanos)
            .then(b.instructions.cmp(&a.instructions))
            .then(a.function.cmp(&b.function))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(function: u64, calls: u64, instructions: u64, work: u64) -> SpanKind {
        SpanKind::VmCost {
            object: 1,
            call: 2,
            function,
            calls,
            instructions,
            work_nanos: work,
        }
    }

    #[test]
    fn aggregates_and_sorts_hot_functions() {
        let mut names = FnNames::new();
        names.insert("step").insert("get");
        let step = fn_hash("step");
        let get = fn_hash("get");
        let mut l = TraceLog::new();
        l.enable();
        l.emit(10, 0, None, cost(step, 1, 40, 1_000));
        l.emit(20, 0, None, cost(get, 2, 10, 50_000));
        l.emit(30, 0, None, cost(step, 1, 40, 1_000));
        let costs = vm_costs(&l, &names);
        assert_eq!(costs.len(), 2);
        assert_eq!(costs[0].name.as_deref(), Some("get"), "hottest first");
        assert_eq!(costs[1].threads, 2);
        assert_eq!(costs[1].calls, 2);
        assert_eq!(costs[1].instructions, 80);
        assert_eq!(costs[1].work_nanos, 2_000);
    }

    #[test]
    fn windows_split_pre_and_post() {
        let step = fn_hash("step");
        let mut l = TraceLog::new();
        l.enable();
        l.emit(10, 0, None, cost(step, 1, 5, 100));
        l.emit(90, 0, None, cost(step, 1, 50, 9_000));
        let names = FnNames::new();
        let pre = vm_costs_between(&l, &names, 0, 50);
        let post = vm_costs_between(&l, &names, 50, u64::MAX);
        assert_eq!(pre[0].instructions, 5);
        assert_eq!(post[0].instructions, 50);
        assert_eq!(pre[0].name, None, "unregistered hash stays a hash");
    }
}

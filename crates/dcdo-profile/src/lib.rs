//! Trace-driven profiler for the DCDO testbed.
//!
//! Consumes a finished [`TraceLog`](dcdo_trace::TraceLog) and produces the
//! typed reports behind `dcdo-inspect` and `BENCH_profile.json`:
//!
//! - [`collect_flows`] / [`step_breakdown`] — per-flow latency split across
//!   the layers' stable `FlowStep` codes (manager lifecycle steps and
//!   object-local `Config` steps);
//! - [`critical_path`] — the causal chain from a flow's terminal event back
//!   to its start, with every nanosecond attributed to a [`Layer`]
//!   (network, manager, vault, VM, …) via a caller-supplied [`LayerMap`];
//!   the per-layer sums equal the end-to-end latency by construction;
//! - [`cost_table`] — the reconfiguration-cost table keyed by flow kind,
//!   mirroring the paper's §5 tables (latency stats plus message count and
//!   wire bytes per operation kind);
//! - [`rpc_amplification`] — attempts/retries per logical call;
//! - [`vm_costs`] — per-function VM cost aggregated from `VmCost` spans,
//!   resolved back to names through a [`FnNames`] table
//!   (hash → name, the inverse of [`dcdo_trace::fn_hash`]);
//! - [`ProfileReport`] — all of the above in one struct with deterministic
//!   JSON and Prometheus text renderings (integer nanoseconds only, so the
//!   output is byte-identical across debug/release builds and machines);
//! - [`metrics_to_json`] / [`metrics_to_prometheus`] — exporters for the
//!   simulator's [`Metrics`](dcdo_sim::Metrics) registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod flow;
mod json;
mod layer;
mod path;
mod report;
mod rpc;
mod vm;

pub use export::{metrics_to_json, metrics_to_prometheus};
pub use flow::{
    collect_flows, cost_table, step_breakdown, step_name, CostRow, FlowRecord, StepStat, STEP_INIT,
};
pub use layer::{Layer, LayerMap};
pub use path::{critical_path, CriticalPath, PathSegment};
pub use report::ProfileReport;
pub use rpc::{rpc_amplification, RpcAmplification};
pub use vm::{vm_costs, vm_costs_between, FnNames, VmFnCost};

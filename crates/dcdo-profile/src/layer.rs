//! System layers and the actor/node → layer classification map.

use std::collections::HashMap;

use dcdo_trace::{SpanEvent, SpanKind};

/// The system layer a slice of critical-path time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Wire time: serialization, propagation, and egress contention.
    Network,
    /// Manager-side flow orchestration.
    Manager,
    /// Vault capture/restore work.
    Vault,
    /// VM compute inside a served object (deferred-reply timers).
    Vm,
    /// Host services: component cache, spawning, class management.
    Host,
    /// Client-side think/driver time.
    Client,
    /// Anything not classified by the caller's map.
    Other,
}

/// All layers in stable report order.
pub const LAYERS: [Layer; 7] = [
    Layer::Network,
    Layer::Manager,
    Layer::Vault,
    Layer::Vm,
    Layer::Host,
    Layer::Client,
    Layer::Other,
];

impl Layer {
    /// A stable short name (report keys).
    pub const fn name(self) -> &'static str {
        match self {
            Layer::Network => "network",
            Layer::Manager => "manager",
            Layer::Vault => "vault",
            Layer::Vm => "vm",
            Layer::Host => "host",
            Layer::Client => "client",
            Layer::Other => "other",
        }
    }
}

/// Maps engine-level identities onto [`Layer`]s.
///
/// The trace itself only carries raw actor and node ids; the caller — who
/// built the testbed and knows which actor is the manager, which the vault,
/// and so on — populates this map so the profiler can attribute time.
/// Actor entries take precedence; node entries catch events that only carry
/// a node (a whole node dedicated to one role).
#[derive(Debug, Clone, Default)]
pub struct LayerMap {
    actors: HashMap<u32, Layer>,
    nodes: HashMap<u32, Layer>,
}

impl LayerMap {
    /// Creates an empty map (everything classifies as [`Layer::Other`]).
    pub fn new() -> Self {
        LayerMap::default()
    }

    /// Assigns an actor to a layer.
    pub fn set_actor(&mut self, actor: u32, layer: Layer) -> &mut Self {
        self.actors.insert(actor, layer);
        self
    }

    /// Assigns every actor on a node to a layer (unless individually mapped).
    pub fn set_node(&mut self, node: u32, layer: Layer) -> &mut Self {
        self.nodes.insert(node, layer);
        self
    }

    /// The layer of `actor`, falling back to its `node`, then `Other`.
    pub fn actor(&self, actor: u32, node: u32) -> Layer {
        self.actors
            .get(&actor)
            .or_else(|| self.nodes.get(&node))
            .copied()
            .unwrap_or(Layer::Other)
    }

    /// The layer of a bare node.
    pub fn node(&self, node: u32) -> Layer {
        self.nodes.get(&node).copied().unwrap_or(Layer::Other)
    }

    /// Attributes one critical-path event to a layer:
    ///
    /// - a delivery (or dead-letter) ends a wire segment → [`Layer::Network`];
    /// - a timer firing ends a compute segment owned by the timer's actor
    ///   (VM compute surfaces as deferred-action timers on the object);
    /// - a send ends a compute segment owned by the sender;
    /// - anything else is attributed to the node it happened on.
    pub fn classify(&self, event: &SpanEvent) -> Layer {
        match &event.kind {
            SpanKind::MsgDelivered { .. } | SpanKind::MsgDeadLetter { .. } => Layer::Network,
            SpanKind::TimerFired { actor, .. } => self.actor(*actor, event.node),
            SpanKind::MsgSent { src, .. } => self.actor(*src, event.node),
            _ => self.node(event.node),
        }
    }
}

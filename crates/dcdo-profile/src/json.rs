//! Minimal deterministic JSON rendering helpers.
//!
//! Reports are rendered by hand so the byte output is fully under our
//! control: keys appear in a fixed order, integers never pass through
//! floating point, and the same report renders identically on every build
//! profile and machine.

/// Escapes a string for inclusion in a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` deterministically (shortest round-trip form, same
/// algorithm on every platform), mapping non-finite values to `null`.
pub(crate) fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_is_null() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}

//! Deterministic exporters for the simulator's [`Metrics`] registry:
//! Prometheus text exposition and a JSON snapshot.
//!
//! Both renderings iterate the registry's already-sorted (BTree-backed)
//! name order, so two exports of the same registry are byte-identical —
//! including across debug/release builds.

use dcdo_sim::{Histogram, Metrics};

use crate::json::{esc, num};

/// Rewrites a metric name into the Prometheus identifier charset
/// (`[a-zA-Z0-9_]`, non-digit first).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() && !(i == 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a sample value for Prometheus exposition.
fn prom_value(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "NaN".to_string()
    }
}

fn quantiles(h: &Histogram) -> [(f64, Option<f64>); 3] {
    // `quantile` sorts lazily and needs `&mut`; work on a scratch copy so
    // the exporter can take the registry by shared reference.
    let mut scratch = h.clone();
    [
        (0.5, scratch.quantile(0.5)),
        (0.99, scratch.quantile(0.99)),
        (1.0, scratch.quantile(1.0)),
    ]
}

/// Renders the registry in the Prometheus text exposition format:
/// counters as `counter`, histograms as `summary` (p50/p99/max quantiles,
/// `_sum`, `_count`). Deterministic: sorted name order, stable float
/// formatting.
pub fn metrics_to_prometheus(metrics: &Metrics) -> String {
    let mut out = String::new();
    for (name, value) in metrics.counters() {
        let name = prom_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, h) in metrics.histograms() {
        let name = prom_name(name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, v) in quantiles(h) {
            if let Some(v) = v {
                out.push_str(&format!("{name}{{quantile=\"{q:?}\"}} {}\n", prom_value(v)));
            }
        }
        let sum: f64 = h.samples().iter().sum();
        out.push_str(&format!("{name}_sum {}\n", prom_value(sum)));
        out.push_str(&format!("{name}_count {}\n", h.count()));
    }
    out
}

/// Renders the registry as a JSON snapshot:
/// `{"counters": {...}, "histograms": {name: {count, mean, min, max, p50,
/// p99}}}` with names in sorted order and deterministic float formatting.
pub fn metrics_to_json(metrics: &Metrics) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (name, value) in metrics.counters() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {value}", esc(name)));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"histograms\": {");
    let mut first = true;
    for (name, h) in metrics.histograms() {
        if !first {
            out.push(',');
        }
        first = false;
        let mut scratch = h.clone();
        let stat = |v: Option<f64>| v.map_or("null".to_string(), num);
        out.push_str(&format!(
            "\n    \"{}\": {{\"count\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}}}",
            esc(name),
            h.count(),
            stat(h.mean()),
            stat(h.min()),
            stat(h.max()),
            stat(scratch.quantile(0.5)),
            stat(scratch.quantile(0.99)),
        ));
    }
    out.push_str(if first { "}\n}\n" } else { "\n  }\n}\n" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics::new();
        m.add("beta.count", 2);
        m.incr("alpha.count");
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.sample("lat/ns", v);
        }
        m
    }

    #[test]
    fn prometheus_output_is_sorted_and_stable() {
        let m = sample_metrics();
        let a = metrics_to_prometheus(&m);
        let b = metrics_to_prometheus(&m);
        assert_eq!(a, b, "two exports are byte-identical");
        let alpha = a.find("alpha_count 1").expect("alpha present");
        let beta = a.find("beta_count 2").expect("beta present");
        assert!(alpha < beta, "counters in sorted name order");
        assert!(a.contains("# TYPE lat_ns summary"));
        assert!(a.contains("lat_ns{quantile=\"0.5\"} 2.0"));
        assert!(a.contains("lat_ns_sum 10.0"));
        assert!(a.contains("lat_ns_count 4"));
    }

    #[test]
    fn json_snapshot_has_sorted_keys_and_valid_shape() {
        let m = sample_metrics();
        let j = metrics_to_json(&m);
        assert_eq!(j, metrics_to_json(&m));
        assert!(j.contains("\"alpha.count\": 1"));
        assert!(j.contains("\"lat/ns\": {\"count\": 4, \"mean\": 2.5"));
        assert!(j.find("alpha.count").unwrap() < j.find("beta.count").unwrap());
    }

    #[test]
    fn empty_registry_renders_empty_objects() {
        let m = Metrics::new();
        assert_eq!(
            metrics_to_json(&m),
            "{\n  \"counters\": {},\n  \"histograms\": {}\n}\n"
        );
        assert_eq!(metrics_to_prometheus(&m), "");
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("dcdo.lazy_checks"), "dcdo_lazy_checks");
        assert_eq!(prom_name("9lives"), "_lives");
        assert_eq!(prom_name("a/b-c"), "a_b_c");
    }
}

//! Critical-path extraction through the causal parent graph.

use dcdo_trace::{FlowKind, SpanId, TraceLog};

use crate::flow::FlowRecord;
use crate::layer::{Layer, LayerMap, LAYERS};

/// One hop of a critical path: the time between two consecutive causal
/// events, attributed to a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// The event that *ends* the segment (whose cause the time was spent in).
    pub span: SpanId,
    /// Stable name of that event's kind.
    pub kind_name: &'static str,
    /// The layer the segment's time is attributed to.
    pub layer: Layer,
    /// Segment start (sim ns).
    pub start_ns: u64,
    /// Segment end (sim ns).
    pub end_ns: u64,
}

impl PathSegment {
    /// The segment's duration.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// The causal chain from a flow's terminal event back to its start, cut
/// into layer-attributed segments.
///
/// The segments partition `[start_ns, end_ns]` exactly, so
/// `by_layer` sums to `total_ns()` — the profiler's books always balance.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The flow id.
    pub flow: u64,
    /// The flow's semantic kind.
    pub kind: FlowKind,
    /// Flow start (sim ns).
    pub start_ns: u64,
    /// Flow end (sim ns).
    pub end_ns: u64,
    /// The chain's segments in chronological order.
    pub segments: Vec<PathSegment>,
    /// Time attributed to every layer, in [`LAYERS`] order (zeros included).
    pub by_layer: Vec<(Layer, u64)>,
}

impl CriticalPath {
    /// End-to-end latency.
    pub fn total_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Extracts the critical path of a terminated flow.
///
/// Walks the causal parent chain backwards from the terminal event,
/// truncating at events from before the flow started (the triggering
/// request's own history), then attributes each inter-event gap via
/// [`LayerMap::classify`] on the event that ends it. Returns `None` for
/// flows that never terminated.
pub fn critical_path(log: &TraceLog, flow: &FlowRecord, map: &LayerMap) -> Option<CriticalPath> {
    let end_span = flow.end_span?;
    let end_ns = flow.end_ns?;
    let mut chain = Vec::new();
    let mut cursor = Some(end_span);
    while let Some(id) = cursor {
        let Some(e) = log.get(id) else { break };
        if e.at_ns < flow.start_ns {
            break;
        }
        chain.push(e);
        if id == flow.start_span {
            break;
        }
        cursor = e.parent;
    }
    chain.reverse();
    let mut segments = Vec::with_capacity(chain.len());
    let mut sums = [0u64; LAYERS.len()];
    let mut prev_ns = flow.start_ns;
    for e in &chain {
        let at = e.at_ns.max(prev_ns);
        let layer = map.classify(e);
        segments.push(PathSegment {
            span: e.id,
            kind_name: e.kind.name(),
            layer,
            start_ns: prev_ns,
            end_ns: at,
        });
        let slot = LAYERS
            .iter()
            .position(|l| *l == layer)
            .expect("layer listed");
        sums[slot] += at - prev_ns;
        prev_ns = at;
    }
    // If the chain was cut short (a parent link left the flow window), the
    // remaining time up to the terminal still belongs to the path; it has
    // already been covered because the terminal event is in the chain.
    debug_assert_eq!(prev_ns, end_ns);
    let by_layer = LAYERS.iter().copied().zip(sums).collect();
    Some(CriticalPath {
        flow: flow.flow,
        kind: flow.kind,
        start_ns: flow.start_ns,
        end_ns,
        segments,
        by_layer,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::collect_flows;
    use dcdo_trace::{SendVerdict, SpanKind};

    #[test]
    fn layer_sums_equal_end_to_end_latency() {
        let mut l = TraceLog::new();
        l.enable();
        let start = l.emit(
            1_000,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 5,
                object: 1,
                kind: FlowKind::Migrate,
            },
        );
        let sent = l.emit(
            1_200,
            0,
            start,
            SpanKind::MsgSent {
                src: 10,
                dst: 20,
                src_node: 0,
                dst_node: 3,
                verdict: SendVerdict::Sent,
                bytes: 96,
            },
        );
        let delivered = l.emit(
            2_700,
            3,
            sent,
            SpanKind::MsgDelivered {
                src: 10,
                dst: 20,
                dst_node: 3,
            },
        );
        let timer = l.emit(
            4_000,
            3,
            delivered,
            SpanKind::TimerFired {
                actor: 20,
                token: 9,
            },
        );
        l.emit(4_500, 0, timer, SpanKind::FlowCompleted { flow: 5 });
        let flows = collect_flows(&l);
        let mut map = LayerMap::new();
        map.set_actor(10, Layer::Manager);
        map.set_actor(20, Layer::Vm);
        map.set_node(0, Layer::Manager);
        let path = critical_path(&l, &flows[0], &map).expect("terminated flow");

        assert_eq!(path.total_ns(), 3_500);
        let summed: u64 = path.by_layer.iter().map(|(_, ns)| ns).sum();
        assert_eq!(summed, path.total_ns(), "per-layer books balance");
        let of = |layer: Layer| {
            path.by_layer
                .iter()
                .find(|(l, _)| *l == layer)
                .map(|(_, ns)| *ns)
                .unwrap()
        };
        // start→sent: manager compute; sent→delivered: wire; delivered→timer:
        // VM compute; timer→completed: manager epilogue (node 0).
        assert_eq!(of(Layer::Manager), 200 + 500);
        assert_eq!(of(Layer::Network), 1_500);
        assert_eq!(of(Layer::Vm), 1_300);
        assert_eq!(of(Layer::Other), 0);
        assert_eq!(path.segments.len(), 5);
    }

    #[test]
    fn truncates_at_history_older_than_the_flow() {
        let mut l = TraceLog::new();
        l.enable();
        // A pre-flow cause (the client request that triggered everything).
        let cause = l.emit(10, 7, None, SpanKind::TimerFired { actor: 1, token: 0 });
        let start = l.emit(
            100,
            0,
            cause,
            SpanKind::FlowStarted {
                flow: 1,
                object: 2,
                kind: FlowKind::Create,
            },
        );
        l.emit(400, 0, start, SpanKind::FlowCompleted { flow: 1 });
        let flows = collect_flows(&l);
        let path = critical_path(&l, &flows[0], &LayerMap::new()).expect("path");
        assert_eq!(path.total_ns(), 300);
        // The pre-flow timer is not part of the path.
        assert!(path.segments.iter().all(|s| s.start_ns >= 100));
        let summed: u64 = path.by_layer.iter().map(|(_, ns)| ns).sum();
        assert_eq!(summed, 300);
    }

    #[test]
    fn unterminated_flow_has_no_path() {
        let mut l = TraceLog::new();
        l.enable();
        l.emit(
            0,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 1,
                object: 2,
                kind: FlowKind::Update,
            },
        );
        let flows = collect_flows(&l);
        assert!(critical_path(&l, &flows[0], &LayerMap::new()).is_none());
    }
}

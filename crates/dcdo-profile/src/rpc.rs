//! RPC amplification: physical attempts per logical call.

use std::collections::HashMap;

use dcdo_trace::{SpanKind, TraceLog};

/// Aggregate RPC retry-chain statistics for one log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RpcAmplification {
    /// Logical calls that put at least one attempt on the wire.
    pub calls: u64,
    /// Physical attempts across all calls.
    pub attempts: u64,
    /// Retries (attempts beyond each call's first).
    pub retries: u64,
    /// The worst chain's attempt count.
    pub max_attempts: u64,
    /// Completed chains per [`RpcOutcome`](dcdo_trace::RpcOutcome) code
    /// (ok, fault, unreachable, timeout).
    pub by_outcome: [u64; 4],
}

impl RpcAmplification {
    /// Attempts per call in parts-per-thousand (integer; 1000 = no retries).
    pub fn amplification_millis(&self) -> u64 {
        (self.attempts * 1000).checked_div(self.calls).unwrap_or(0)
    }
}

/// Computes attempt/retry amplification over every retry chain in the log.
pub fn rpc_amplification(log: &TraceLog) -> RpcAmplification {
    let mut attempts_by_call: HashMap<u64, u64> = HashMap::new();
    let mut amp = RpcAmplification::default();
    for e in log.events() {
        match &e.kind {
            SpanKind::RpcAttempt { call, .. } => {
                *attempts_by_call.entry(*call).or_insert(0) += 1;
            }
            SpanKind::RpcRetry { .. } => {
                amp.retries += 1;
            }
            SpanKind::RpcCompleted { outcome, .. } => {
                amp.by_outcome[outcome.code() as usize] += 1;
            }
            _ => {}
        }
    }
    amp.calls = attempts_by_call.len() as u64;
    amp.attempts = attempts_by_call.values().sum();
    amp.max_attempts = attempts_by_call.values().copied().max().unwrap_or(0);
    amp
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdo_trace::RpcOutcome;

    #[test]
    fn counts_attempts_retries_and_outcomes() {
        let mut l = TraceLog::new();
        l.enable();
        for (call, attempt) in [(1u64, 1u32), (2, 1), (2, 2), (2, 3)] {
            l.emit(
                0,
                0,
                None,
                SpanKind::RpcAttempt {
                    call,
                    object: 9,
                    attempt,
                    dst: 4,
                },
            );
        }
        l.emit(
            0,
            0,
            None,
            SpanKind::RpcRetry {
                call: 2,
                attempt: 1,
            },
        );
        l.emit(
            0,
            0,
            None,
            SpanKind::RpcRetry {
                call: 2,
                attempt: 2,
            },
        );
        l.emit(
            0,
            0,
            None,
            SpanKind::RpcCompleted {
                call: 1,
                outcome: RpcOutcome::Ok,
            },
        );
        l.emit(
            0,
            0,
            None,
            SpanKind::RpcCompleted {
                call: 2,
                outcome: RpcOutcome::Timeout,
            },
        );
        let amp = rpc_amplification(&l);
        assert_eq!(amp.calls, 2);
        assert_eq!(amp.attempts, 4);
        assert_eq!(amp.retries, 2);
        assert_eq!(amp.max_attempts, 3);
        assert_eq!(amp.by_outcome, [1, 0, 0, 1]);
        assert_eq!(amp.amplification_millis(), 2000);
    }

    #[test]
    fn empty_log_is_all_zero() {
        let amp = rpc_amplification(&TraceLog::new());
        assert_eq!(amp, RpcAmplification::default());
        assert_eq!(amp.amplification_millis(), 0);
    }
}

//! The combined profiler report and its deterministic renderings.

use dcdo_trace::TraceLog;

use crate::flow::{
    collect_flows, cost_table, step_breakdown, step_name, CostRow, FlowRecord, StepStat,
};
use crate::json::esc;
use crate::layer::LayerMap;
use crate::path::{critical_path, CriticalPath};
use crate::rpc::{rpc_amplification, RpcAmplification};
use crate::vm::{vm_costs, FnNames, VmFnCost};

/// Everything the profiler derives from one trace: flows, step breakdowns,
/// the reconfiguration-cost table, per-flow critical paths, RPC
/// amplification, and the VM hot-function list.
///
/// The JSON and Prometheus renderings are integer-first and key-ordered by
/// construction: the same trace renders to byte-identical output on every
/// build profile and machine (asserted in CI by diffing debug vs release).
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Every flow in the log, in start order.
    pub flows: Vec<FlowRecord>,
    /// Per-`(kind, step)` latency cells.
    pub steps: Vec<StepStat>,
    /// The per-kind reconfiguration-cost table.
    pub cost_table: Vec<CostRow>,
    /// Critical path of every terminated flow.
    pub paths: Vec<CriticalPath>,
    /// RPC attempt/retry amplification.
    pub rpc: RpcAmplification,
    /// VM cost per function, hottest first.
    pub vm: Vec<VmFnCost>,
}

impl ProfileReport {
    /// Runs every analysis over a finished log.
    ///
    /// `map` attributes critical-path time to layers (see [`LayerMap`]);
    /// `names` resolves `VmCost` function hashes back to names.
    pub fn analyze(log: &TraceLog, map: &LayerMap, names: &FnNames) -> Self {
        let flows = collect_flows(log);
        let steps = step_breakdown(&flows);
        let table = cost_table(log, &flows);
        let paths = flows
            .iter()
            .filter_map(|f| critical_path(log, f, map))
            .collect();
        ProfileReport {
            steps,
            cost_table: table,
            paths,
            rpc: rpc_amplification(log),
            vm: vm_costs(log, names),
            flows,
        }
    }

    /// Flows that terminated successfully.
    pub fn flows_completed(&self) -> u64 {
        self.flows
            .iter()
            .filter(|f| f.end_ns.is_some() && !f.aborted)
            .count() as u64
    }

    /// Flows that aborted.
    pub fn flows_aborted(&self) -> u64 {
        self.flows.iter().filter(|f| f.aborted).count() as u64
    }

    /// Renders the report as deterministic JSON (fixed key order, integers
    /// only, function hashes as zero-padded hex strings).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");

        out.push_str("  \"cost_table\": [");
        for (i, r) in self.cost_table.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"kind\": \"{}\", \"flows\": {}, \"aborted\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"messages\": {}, \"bytes\": {}}}",
                r.kind.name(), r.flows, r.aborted, r.mean_ns, r.median_ns, r.p99_ns, r.max_ns, r.messages, r.bytes
            ));
        }
        out.push_str(if self.cost_table.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str("  \"critical_paths\": [");
        for (i, p) in self.paths.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let layers: Vec<String> = p
                .by_layer
                .iter()
                .map(|(l, ns)| format!("\"{}\": {ns}", l.name()))
                .collect();
            out.push_str(&format!(
                "    {{\"flow\": {}, \"kind\": \"{}\", \"total_ns\": {}, \"hops\": {}, \"by_layer\": {{{}}}}}",
                p.flow,
                p.kind.name(),
                p.total_ns(),
                p.segments.len(),
                layers.join(", ")
            ));
        }
        out.push_str(if self.paths.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str("  \"flow_steps\": [");
        for (i, s) in self.steps.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"kind\": \"{}\", \"step\": \"{}\", \"count\": {}, \"total_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}}}",
                s.kind.name(),
                step_name(s.kind, s.step),
                s.count,
                s.total_ns,
                s.mean_ns(),
                s.max_ns
            ));
        }
        out.push_str(if self.steps.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        out.push_str(&format!(
            "  \"flows\": {{\"started\": {}, \"completed\": {}, \"aborted\": {}}},\n",
            self.flows.len(),
            self.flows_completed(),
            self.flows_aborted()
        ));

        out.push_str(&format!(
            "  \"rpc\": {{\"calls\": {}, \"attempts\": {}, \"retries\": {}, \"max_attempts\": {}, \"amplification_millis\": {}, \"outcomes\": {{\"ok\": {}, \"fault\": {}, \"unreachable\": {}, \"timeout\": {}}}}},\n",
            self.rpc.calls,
            self.rpc.attempts,
            self.rpc.retries,
            self.rpc.max_attempts,
            self.rpc.amplification_millis(),
            self.rpc.by_outcome[0],
            self.rpc.by_outcome[1],
            self.rpc.by_outcome[2],
            self.rpc.by_outcome[3],
        ));

        out.push_str("  \"vm_functions\": [");
        for (i, f) in self.vm.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let name = f
                .name
                .as_deref()
                .map_or("null".to_string(), |n| format!("\"{}\"", esc(n)));
            out.push_str(&format!(
                "    {{\"function\": \"0x{:016x}\", \"name\": {name}, \"threads\": {}, \"calls\": {}, \"instructions\": {}, \"work_nanos\": {}}}",
                f.function, f.threads, f.calls, f.instructions, f.work_nanos
            ));
        }
        out.push_str(if self.vm.is_empty() { "]\n" } else { "\n  ]\n" });

        out.push_str("}\n");
        out
    }

    /// Renders the report's aggregates in the Prometheus text exposition
    /// format (all gauges; per-flow detail is aggregated per kind).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# TYPE dcdo_profile_flow_latency_ns gauge\n");
        for r in &self.cost_table {
            for (stat, v) in [
                ("mean", r.mean_ns),
                ("median", r.median_ns),
                ("p99", r.p99_ns),
                ("max", r.max_ns),
            ] {
                out.push_str(&format!(
                    "dcdo_profile_flow_latency_ns{{kind=\"{}\",stat=\"{stat}\"}} {v}\n",
                    r.kind.name()
                ));
            }
        }
        out.push_str("# TYPE dcdo_profile_flow_messages gauge\n");
        for r in &self.cost_table {
            out.push_str(&format!(
                "dcdo_profile_flow_messages{{kind=\"{}\"}} {}\n",
                r.kind.name(),
                r.messages
            ));
        }
        out.push_str("# TYPE dcdo_profile_flow_step_total_ns gauge\n");
        for s in &self.steps {
            out.push_str(&format!(
                "dcdo_profile_flow_step_total_ns{{kind=\"{}\",step=\"{}\"}} {}\n",
                s.kind.name(),
                step_name(s.kind, s.step),
                s.total_ns
            ));
        }
        // Critical-path layer time, aggregated per flow kind.
        out.push_str("# TYPE dcdo_profile_critical_path_ns gauge\n");
        let mut agg: Vec<(u64, &'static str, &'static str, u64)> = Vec::new();
        for p in &self.paths {
            for (layer, ns) in &p.by_layer {
                let key = (p.kind.code(), p.kind.name(), layer.name());
                match agg
                    .iter_mut()
                    .find(|(c, _, l, _)| (*c, *l) == (key.0, key.2))
                {
                    Some(slot) => slot.3 += ns,
                    None => agg.push((key.0, key.1, key.2, *ns)),
                }
            }
        }
        agg.sort_by_key(|(code, _, layer, _)| (*code, *layer));
        for (_, kind, layer, ns) in agg {
            out.push_str(&format!(
                "dcdo_profile_critical_path_ns{{kind=\"{kind}\",layer=\"{layer}\"}} {ns}\n"
            ));
        }
        out.push_str(&format!(
            "# TYPE dcdo_profile_rpc_calls gauge\ndcdo_profile_rpc_calls {}\n\
             # TYPE dcdo_profile_rpc_attempts gauge\ndcdo_profile_rpc_attempts {}\n\
             # TYPE dcdo_profile_rpc_retries gauge\ndcdo_profile_rpc_retries {}\n",
            self.rpc.calls, self.rpc.attempts, self.rpc.retries
        ));
        out.push_str("# TYPE dcdo_profile_vm_work_nanos gauge\n");
        for f in &self.vm {
            let label = f
                .name
                .clone()
                .unwrap_or_else(|| format!("0x{:016x}", f.function));
            out.push_str(&format!(
                "dcdo_profile_vm_work_nanos{{function=\"{label}\"}} {}\n",
                f.work_nanos
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdo_trace::{fn_hash, FlowKind, SendVerdict, SpanKind};

    fn demo_log() -> TraceLog {
        let mut l = TraceLog::new();
        l.enable();
        let start = l.emit(
            0,
            0,
            None,
            SpanKind::FlowStarted {
                flow: 1,
                object: 4,
                kind: FlowKind::Update,
            },
        );
        l.emit(0, 0, start, SpanKind::FlowStep { flow: 1, step: 5 });
        let sent = l.emit(
            100,
            0,
            start,
            SpanKind::MsgSent {
                src: 1,
                dst: 2,
                src_node: 0,
                dst_node: 4,
                verdict: SendVerdict::Sent,
                bytes: 512,
            },
        );
        let del = l.emit(
            900,
            4,
            sent,
            SpanKind::MsgDelivered {
                src: 1,
                dst: 2,
                dst_node: 4,
            },
        );
        l.emit(
            950,
            4,
            del,
            SpanKind::VmCost {
                object: 4,
                call: 77,
                function: fn_hash("step"),
                calls: 1,
                instructions: 12,
                work_nanos: 40,
            },
        );
        l.emit(1_000, 0, del, SpanKind::FlowCompleted { flow: 1 });
        l
    }

    #[test]
    fn analyze_populates_every_section() {
        let log = demo_log();
        let mut names = FnNames::new();
        names.insert("step");
        let report = ProfileReport::analyze(&log, &LayerMap::new(), &names);
        assert_eq!(report.flows.len(), 1);
        assert_eq!(report.cost_table.len(), 1);
        assert_eq!(report.paths.len(), 1);
        assert_eq!(report.vm.len(), 1);
        assert_eq!(report.vm[0].name.as_deref(), Some("step"));
        assert_eq!(report.flows_completed(), 1);
        assert_eq!(report.flows_aborted(), 0);
    }

    #[test]
    fn json_rendering_is_deterministic_and_balanced() {
        let log = demo_log();
        let report = ProfileReport::analyze(&log, &LayerMap::new(), &FnNames::new());
        let a = report.to_json();
        let b = ProfileReport::analyze(&log, &LayerMap::new(), &FnNames::new()).to_json();
        assert_eq!(a, b, "same trace, same bytes");
        assert!(a.contains("\"cost_table\""));
        assert!(a.contains("\"kind\": \"update\""));
        assert!(a.contains("\"network\": 800"));
        // The hash renders as hex when no name table entry exists.
        assert!(a.contains(&format!("0x{:016x}", fn_hash("step"))));
    }

    #[test]
    fn prometheus_rendering_has_expected_series() {
        let log = demo_log();
        let report = ProfileReport::analyze(&log, &LayerMap::new(), &FnNames::new());
        let p = report.to_prometheus();
        assert!(p.contains("dcdo_profile_flow_latency_ns{kind=\"update\",stat=\"mean\"} 1000"));
        assert!(p.contains("dcdo_profile_critical_path_ns{kind=\"update\",layer=\"network\"} 800"));
        assert!(p.contains("dcdo_profile_rpc_calls 0"));
        assert!(p.contains("dcdo_profile_vm_work_nanos"));
    }

    #[test]
    fn empty_log_renders_empty_sections() {
        let report = ProfileReport::analyze(&TraceLog::new(), &LayerMap::new(), &FnNames::new());
        let j = report.to_json();
        assert!(j.contains("\"cost_table\": []"));
        assert!(j.contains("\"flows\": {\"started\": 0, \"completed\": 0, \"aborted\": 0}"));
    }
}

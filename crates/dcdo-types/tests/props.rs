//! Property-based tests for the shared vocabulary types.

use dcdo_types::{FunctionSignature, TypeTag, VersionId};
use proptest::prelude::*;

fn version_components() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(1u32..=1_000, 1..8)
}

proptest! {
    /// Display/parse round-trips for any valid version identifier.
    #[test]
    fn version_display_parse_round_trip(components in version_components()) {
        let v = VersionId::new(components).expect("valid components");
        let parsed: VersionId = v.to_string().parse().expect("round trip");
        prop_assert_eq!(parsed, v);
    }

    /// Every child is derived from its parent, and derivation is transitive
    /// along a chain of children.
    #[test]
    fn derivation_chain_is_transitive(
        components in version_components(),
        branches in prop::collection::vec(1u32..=50, 1..5),
    ) {
        let root = VersionId::new(components).expect("valid components");
        let mut chain = vec![root.clone()];
        for b in branches {
            let next = chain.last().expect("nonempty").child(b);
            chain.push(next);
        }
        for (i, ancestor) in chain.iter().enumerate() {
            for descendant in &chain[i + 1..] {
                prop_assert!(descendant.is_derived_from(ancestor));
                prop_assert!(!ancestor.is_derived_from(descendant));
            }
        }
    }

    /// parent() inverts child() for every branch number.
    #[test]
    fn parent_inverts_child(components in version_components(), branch in 1u32..=10_000) {
        let v = VersionId::new(components).expect("valid components");
        prop_assert_eq!(v.child(branch).parent(), Some(v));
    }

    /// Siblings are never derived from one another.
    #[test]
    fn siblings_are_unrelated(
        components in version_components(),
        a in 1u32..=100,
        b in 1u32..=100,
    ) {
        prop_assume!(a != b);
        let parent = VersionId::new(components).expect("valid components");
        let left = parent.child(a);
        let right = parent.child(b);
        prop_assert!(!left.is_derived_from(&right));
        prop_assert!(!right.is_derived_from(&left));
        prop_assert_eq!(left.common_ancestor(&right), Some(parent));
    }

    /// common_ancestor is symmetric and yields an ancestor of both inputs.
    #[test]
    fn common_ancestor_is_symmetric_and_sound(
        a in version_components(),
        b in version_components(),
    ) {
        let va = VersionId::new(a).expect("valid");
        let vb = VersionId::new(b).expect("valid");
        let ab = va.common_ancestor(&vb);
        let ba = vb.common_ancestor(&va);
        prop_assert_eq!(ab.clone(), ba);
        if let Some(anc) = ab {
            prop_assert!(va.is_self_or_derived_from(&anc));
            prop_assert!(vb.is_self_or_derived_from(&anc));
        }
    }
}

fn type_tag() -> impl Strategy<Value = TypeTag> {
    prop_oneof![
        Just(TypeTag::Unit),
        Just(TypeTag::Int),
        Just(TypeTag::Bool),
        Just(TypeTag::Str),
        Just(TypeTag::List),
        Just(TypeTag::Any),
    ]
}

proptest! {
    /// Signature display/parse round-trips.
    #[test]
    fn signature_display_parse_round_trip(
        name in "[a-z][a-z0-9_]{0,12}",
        params in prop::collection::vec(type_tag(), 0..6),
        ret in type_tag(),
    ) {
        let sig = FunctionSignature::new(name.as_str(), params, ret);
        let parsed: FunctionSignature = sig.to_string().parse().expect("round trip");
        prop_assert_eq!(parsed, sig);
    }

    /// Signature compatibility is reflexive.
    #[test]
    fn signature_compatibility_reflexive(
        name in "[a-z][a-z0-9_]{0,12}",
        params in prop::collection::vec(type_tag(), 0..6),
        ret in type_tag(),
    ) {
        let sig = FunctionSignature::new(name.as_str(), params, ret);
        prop_assert!(sig.compatible_with(&sig));
    }
}

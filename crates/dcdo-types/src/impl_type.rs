//! Implementation types (§2.1 of the paper).
//!
//! Dynamic configurability allows functionally equivalent implementations of
//! the same version to coexist so compiled, architecture-specific code can be
//! used in a heterogeneous system while objects remain free to migrate. An
//! *implementation type* records the characteristics of one such kind of
//! implementation: the architecture it runs on, the object-code format, and
//! (when it matters) the source language.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Machine architecture an implementation component was built for.
///
/// The variants mirror the heterogeneity of late-1990s Legion deployments
/// (the Centurion testbed mixed x86 and Alpha nodes) plus a `Portable`
/// architecture for bytecode components that run anywhere — the common case
/// in this reproduction, where "object code" is the `dcdo-vm` bytecode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Intel x86 (e.g. the 400 MHz Pentium IIs of the Centurion testbed).
    X86,
    /// DEC Alpha.
    Alpha,
    /// Sun SPARC.
    Sparc,
    /// Architecture-neutral bytecode; runs on any host.
    Portable,
}

impl Architecture {
    /// Returns `true` if code built for `self` can execute on a host whose
    /// native architecture is `host`.
    pub fn runs_on(self, host: Architecture) -> bool {
        self == Architecture::Portable || self == host
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Architecture::X86 => "x86",
            Architecture::Alpha => "alpha",
            Architecture::Sparc => "sparc",
            Architecture::Portable => "portable",
        };
        f.write_str(s)
    }
}

/// Object-code format of an implementation component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectCodeFormat {
    /// ELF shared object (native components on Unix hosts).
    ElfSharedObject,
    /// The `dcdo-vm` serialized bytecode component format.
    DcdoBytecode,
}

impl fmt::Display for ObjectCodeFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectCodeFormat::ElfSharedObject => "elf-so",
            ObjectCodeFormat::DcdoBytecode => "dcdo-bytecode",
        };
        f.write_str(s)
    }
}

/// Source language of an implementation component, when relevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// C++ (the language of the original Legion implementation).
    Cpp,
    /// The `dcdo-vm` assembly used by this reproduction.
    VmAssembly,
    /// Language unknown or irrelevant.
    Unspecified,
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Language::Cpp => "c++",
            Language::VmAssembly => "vm-asm",
            Language::Unspecified => "unspecified",
        };
        f.write_str(s)
    }
}

/// The implementation type of a component: architecture, code format, and
/// language (§2.1).
///
/// Two components with the same [`ComponentId`](crate::ComponentId) but
/// different implementation types are interchangeable realizations of the
/// same logical component — e.g. an x86 build and an Alpha build.
///
/// # Examples
///
/// ```
/// use dcdo_types::{Architecture, ImplementationType};
///
/// let bytecode = ImplementationType::portable_bytecode();
/// assert!(bytecode.compatible_with_host(Architecture::X86));
/// assert!(bytecode.compatible_with_host(Architecture::Alpha));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ImplementationType {
    architecture: Architecture,
    format: ObjectCodeFormat,
    language: Language,
}

impl ImplementationType {
    /// Creates an implementation type from its three characteristics.
    pub fn new(architecture: Architecture, format: ObjectCodeFormat, language: Language) -> Self {
        ImplementationType {
            architecture,
            format,
            language,
        }
    }

    /// The implementation type of `dcdo-vm` bytecode components: portable
    /// architecture, bytecode format, VM assembly language.
    pub fn portable_bytecode() -> Self {
        ImplementationType::new(
            Architecture::Portable,
            ObjectCodeFormat::DcdoBytecode,
            Language::VmAssembly,
        )
    }

    /// A native implementation type for the given architecture, in ELF
    /// shared-object format with C++ as the source language.
    pub fn native(architecture: Architecture) -> Self {
        ImplementationType::new(
            architecture,
            ObjectCodeFormat::ElfSharedObject,
            Language::Cpp,
        )
    }

    /// Returns the architecture characteristic.
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// Returns the object-code format characteristic.
    pub fn format(&self) -> ObjectCodeFormat {
        self.format
    }

    /// Returns the language characteristic.
    pub fn language(&self) -> Language {
        self.language
    }

    /// Returns `true` if an implementation of this type can run on a host
    /// with the given native architecture.
    pub fn compatible_with_host(&self, host: Architecture) -> bool {
        self.architecture.runs_on(host)
    }
}

impl Default for ImplementationType {
    fn default() -> Self {
        ImplementationType::portable_bytecode()
    }
}

impl fmt::Display for ImplementationType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.architecture, self.format, self.language)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_runs_everywhere() {
        for host in [Architecture::X86, Architecture::Alpha, Architecture::Sparc] {
            assert!(Architecture::Portable.runs_on(host));
            assert!(ImplementationType::portable_bytecode().compatible_with_host(host));
        }
    }

    #[test]
    fn native_only_runs_on_matching_architecture() {
        let x86 = ImplementationType::native(Architecture::X86);
        assert!(x86.compatible_with_host(Architecture::X86));
        assert!(!x86.compatible_with_host(Architecture::Alpha));
    }

    #[test]
    fn display_is_informative() {
        let t = ImplementationType::native(Architecture::Alpha);
        assert_eq!(t.to_string(), "alpha/elf-so/c++");
        assert_eq!(
            ImplementationType::portable_bytecode().to_string(),
            "portable/dcdo-bytecode/vm-asm"
        );
    }

    #[test]
    fn accessors_return_characteristics() {
        let t = ImplementationType::new(
            Architecture::Sparc,
            ObjectCodeFormat::ElfSharedObject,
            Language::Cpp,
        );
        assert_eq!(t.architecture(), Architecture::Sparc);
        assert_eq!(t.format(), ObjectCodeFormat::ElfSharedObject);
        assert_eq!(t.language(), Language::Cpp);
    }
}

//! Function dependencies (§3.2 of the paper).
//!
//! Programmers (or static analysis, for structural dependencies) can declare
//! that dynamic functions depend on other functions in an interface or
//! implementation. A *structural* dependency requires that **some**
//! implementation of the target remain enabled; a *behavioral* dependency
//! requires a **specific** implementation (in a named component) to remain
//! enabled. Both the source and the target side can be pinned to a component
//! or left open, giving the four types of the paper:
//!
//! | Type | Form                 | Kind        |
//! |------|----------------------|-------------|
//! | A    | `[F1, C1] -> [F2]`   | structural  |
//! | B    | `[F1, C1] -> [F2, C2]` | behavioral |
//! | C    | `[F1] -> [F2, C2]`   | behavioral  |
//! | D    | `[F1] -> [F2]`       | structural  |

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ComponentId, FunctionName};

/// One side of a dependency: a function, optionally pinned to the
/// implementation found in a specific component.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DependencyEnd {
    function: FunctionName,
    component: Option<ComponentId>,
}

impl DependencyEnd {
    /// An end matching *any* implementation of `function`.
    pub fn any_impl(function: impl Into<FunctionName>) -> Self {
        DependencyEnd {
            function: function.into(),
            component: None,
        }
    }

    /// An end matching specifically the implementation of `function` found
    /// in `component`.
    pub fn in_component(function: impl Into<FunctionName>, component: ComponentId) -> Self {
        DependencyEnd {
            function: function.into(),
            component: Some(component),
        }
    }

    /// The function this end names.
    pub fn function(&self) -> &FunctionName {
        &self.function
    }

    /// The pinned component, if this end is implementation-specific.
    pub fn component(&self) -> Option<ComponentId> {
        self.component
    }

    /// Returns `true` if this end is pinned to a specific component.
    pub fn is_pinned(&self) -> bool {
        self.component.is_some()
    }

    /// Returns `true` if this end matches the implementation of `function`
    /// residing in `component`.
    pub fn matches(&self, function: &FunctionName, component: ComponentId) -> bool {
        &self.function == function && self.component.is_none_or(|c| c == component)
    }
}

impl fmt::Display for DependencyEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.component {
            Some(c) => write!(f, "[{}, {}]", self.function, c),
            None => write!(f, "[{}]", self.function),
        }
    }
}

/// The letter classification of a dependency (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DependencyType {
    /// `[F1, C1] -> [F2]`: structural, source pinned.
    A,
    /// `[F1, C1] -> [F2, C2]`: behavioral, both pinned.
    B,
    /// `[F1] -> [F2, C2]`: behavioral, target pinned.
    C,
    /// `[F1] -> [F2]`: structural, neither pinned.
    D,
}

impl fmt::Display for DependencyType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DependencyType::A => "A",
            DependencyType::B => "B",
            DependencyType::C => "C",
            DependencyType::D => "D",
        })
    }
}

/// A declared dependency between dynamic functions (§3.2).
///
/// The dependency constrains the *target*: as long as the source end is
/// enabled, the target end must remain enabled. It never restricts the
/// evolution of the source function itself.
///
/// # Examples
///
/// ```
/// use dcdo_types::{ComponentId, Dependency, DependencyType};
///
/// let c1 = ComponentId::from_raw(1);
/// let c2 = ComponentId::from_raw(2);
/// // sort's implementation in c1 must not outlive every compare:
/// let a = Dependency::type_a("sort", c1, "compare");
/// assert_eq!(a.dependency_type(), DependencyType::A);
/// assert!(a.is_structural());
/// // sort (any implementation) requires compare's implementation in c2:
/// let c = Dependency::type_c("sort", "compare", c2);
/// assert!(c.is_behavioral());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dependency {
    source: DependencyEnd,
    target: DependencyEnd,
}

impl Dependency {
    /// Creates a dependency from explicit ends.
    pub fn new(source: DependencyEnd, target: DependencyEnd) -> Self {
        Dependency { source, target }
    }

    /// Type A: `[f1, c1] -> [f2]` — the implementation of `f1` in `c1`
    /// structurally depends on some implementation of `f2`.
    pub fn type_a(
        f1: impl Into<FunctionName>,
        c1: ComponentId,
        f2: impl Into<FunctionName>,
    ) -> Self {
        Dependency::new(
            DependencyEnd::in_component(f1, c1),
            DependencyEnd::any_impl(f2),
        )
    }

    /// Type B: `[f1, c1] -> [f2, c2]` — the implementation of `f1` in `c1`
    /// behaviorally depends on the implementation of `f2` in `c2`.
    pub fn type_b(
        f1: impl Into<FunctionName>,
        c1: ComponentId,
        f2: impl Into<FunctionName>,
        c2: ComponentId,
    ) -> Self {
        Dependency::new(
            DependencyEnd::in_component(f1, c1),
            DependencyEnd::in_component(f2, c2),
        )
    }

    /// Type C: `[f1] -> [f2, c2]` — any implementation of `f1` behaviorally
    /// depends on the implementation of `f2` in `c2`.
    pub fn type_c(
        f1: impl Into<FunctionName>,
        f2: impl Into<FunctionName>,
        c2: ComponentId,
    ) -> Self {
        Dependency::new(
            DependencyEnd::any_impl(f1),
            DependencyEnd::in_component(f2, c2),
        )
    }

    /// Type D: `[f1] -> [f2]` — any implementation of `f1` structurally
    /// depends on some implementation of `f2`.
    pub fn type_d(f1: impl Into<FunctionName>, f2: impl Into<FunctionName>) -> Self {
        Dependency::new(DependencyEnd::any_impl(f1), DependencyEnd::any_impl(f2))
    }

    /// The source end (the depending function).
    pub fn source(&self) -> &DependencyEnd {
        &self.source
    }

    /// The target end (the function being depended on).
    pub fn target(&self) -> &DependencyEnd {
        &self.target
    }

    /// Returns the letter classification of this dependency.
    pub fn dependency_type(&self) -> DependencyType {
        match (self.source.is_pinned(), self.target.is_pinned()) {
            (true, false) => DependencyType::A,
            (true, true) => DependencyType::B,
            (false, true) => DependencyType::C,
            (false, false) => DependencyType::D,
        }
    }

    /// Returns `true` if the target side is open (structural: *some*
    /// implementation of the target suffices).
    pub fn is_structural(&self) -> bool {
        !self.target.is_pinned()
    }

    /// Returns `true` if the target side is pinned (behavioral: a *specific*
    /// implementation is required).
    pub fn is_behavioral(&self) -> bool {
        self.target.is_pinned()
    }

    /// Returns `true` if this dependency is a self-dependency — the paper's
    /// idiom for protecting recursive functions from being changed while
    /// they execute.
    pub fn is_self_dependency(&self) -> bool {
        self.source.function() == self.target.function()
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} (type {})",
            self.source,
            self.target,
            self.dependency_type()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> ComponentId {
        ComponentId::from_raw(n)
    }

    #[test]
    fn four_types_classify_correctly() {
        assert_eq!(
            Dependency::type_a("f1", c(1), "f2").dependency_type(),
            DependencyType::A
        );
        assert_eq!(
            Dependency::type_b("f1", c(1), "f2", c(2)).dependency_type(),
            DependencyType::B
        );
        assert_eq!(
            Dependency::type_c("f1", "f2", c(2)).dependency_type(),
            DependencyType::C
        );
        assert_eq!(
            Dependency::type_d("f1", "f2").dependency_type(),
            DependencyType::D
        );
    }

    #[test]
    fn structural_vs_behavioral() {
        assert!(Dependency::type_a("f1", c(1), "f2").is_structural());
        assert!(Dependency::type_d("f1", "f2").is_structural());
        assert!(Dependency::type_b("f1", c(1), "f2", c(2)).is_behavioral());
        assert!(Dependency::type_c("f1", "f2", c(2)).is_behavioral());
    }

    #[test]
    fn end_matching() {
        let open = DependencyEnd::any_impl("f");
        assert!(open.matches(&"f".into(), c(1)));
        assert!(open.matches(&"f".into(), c(2)));
        assert!(!open.matches(&"g".into(), c(1)));

        let pinned = DependencyEnd::in_component("f", c(1));
        assert!(pinned.matches(&"f".into(), c(1)));
        assert!(!pinned.matches(&"f".into(), c(2)));
    }

    #[test]
    fn self_dependency_detects_recursion_guard() {
        assert!(Dependency::type_d("fib", "fib").is_self_dependency());
        assert!(!Dependency::type_d("fib", "add").is_self_dependency());
    }

    #[test]
    fn display_formats_like_the_paper() {
        let d = Dependency::type_b("f1", c(1), "f2", c(2));
        assert_eq!(d.to_string(), "[f1, comp:1] -> [f2, comp:2] (type B)");
        let d = Dependency::type_d("f1", "f2");
        assert_eq!(d.to_string(), "[f1] -> [f2] (type D)");
    }
}

//! Dynamic-function identity and classification (§2, §2.2, §3.2).
//!
//! A dynamic function is identified by name, carries a signature, is either
//! *exported* (callable from other objects) or *internal* (callable only from
//! within the object), is *enabled* or *disabled* at any moment, and may be
//! protected as *mandatory* or *permanent* to restrict evolution.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The name of a dynamic function, e.g. `"sort"`.
///
/// Names are the unit of identity in a DFM: all implementations of the same
/// logical function (possibly in different components) share one name.
/// Cheap to clone (`Arc`-backed).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FunctionName(Arc<str>);

impl FunctionName {
    /// Creates a function name.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        FunctionName(name.into())
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// An identity key for this name's shared allocation.
    ///
    /// Clones of one `FunctionName` share it; equal names created
    /// independently do not. Suitable only as a per-call-site cache key
    /// (two sites sharing a key is required for correctness-by-identity;
    /// two equal names with different keys merely miss the cache), and only
    /// while a clone of the name is alive — a freed allocation's address
    /// can be reused.
    pub fn identity_key(&self) -> usize {
        Arc::as_ptr(&self.0) as *const u8 as usize
    }
}

impl fmt::Display for FunctionName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for FunctionName {
    fn from(s: &str) -> Self {
        FunctionName::new(s)
    }
}

impl From<String> for FunctionName {
    fn from(s: String) -> Self {
        FunctionName::new(s)
    }
}

impl AsRef<str> for FunctionName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A value type in a dynamic-function signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeTag {
    /// The unit (void) type.
    Unit,
    /// A 64-bit signed integer.
    Int,
    /// A boolean.
    Bool,
    /// A string.
    Str,
    /// A heterogeneous list of values.
    List,
    /// A reference to another distributed object (for outcalls).
    ObjRef,
    /// Any value; disables type checking for that position.
    Any,
}

impl TypeTag {
    /// Returns `true` if a value of type `actual` is acceptable where `self`
    /// is expected.
    pub fn accepts(self, actual: TypeTag) -> bool {
        self == TypeTag::Any || actual == TypeTag::Any || self == actual
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TypeTag::Unit => "unit",
            TypeTag::Int => "int",
            TypeTag::Bool => "bool",
            TypeTag::Str => "str",
            TypeTag::List => "list",
            TypeTag::ObjRef => "objref",
            TypeTag::Any => "any",
        };
        f.write_str(s)
    }
}

impl FromStr for TypeTag {
    type Err = ParseSignatureError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "unit" => Ok(TypeTag::Unit),
            "int" => Ok(TypeTag::Int),
            "bool" => Ok(TypeTag::Bool),
            "str" => Ok(TypeTag::Str),
            "list" => Ok(TypeTag::List),
            "objref" => Ok(TypeTag::ObjRef),
            "any" => Ok(TypeTag::Any),
            _ => Err(ParseSignatureError {
                input: s.to_owned(),
            }),
        }
    }
}

/// The signature of a dynamic function: name, parameter types, return type.
///
/// Replacing a function's implementation while keeping the signature the same
/// never causes the disappearing-function failures of §3.1; signature
/// equality is therefore what DFM descriptors check when one implementation
/// is swapped for another.
///
/// # Examples
///
/// ```
/// use dcdo_types::{FunctionSignature, TypeTag};
///
/// let sig: FunctionSignature = "sort(list) -> list".parse()?;
/// assert_eq!(sig.name().as_str(), "sort");
/// assert_eq!(sig.params(), &[TypeTag::List]);
/// assert_eq!(sig.ret(), TypeTag::List);
/// # Ok::<(), dcdo_types::ParseSignatureError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FunctionSignature {
    name: FunctionName,
    params: Vec<TypeTag>,
    ret: TypeTag,
}

impl FunctionSignature {
    /// Creates a signature from parts.
    pub fn new(name: impl Into<FunctionName>, params: Vec<TypeTag>, ret: TypeTag) -> Self {
        FunctionSignature {
            name: name.into(),
            params,
            ret,
        }
    }

    /// Returns the function name.
    pub fn name(&self) -> &FunctionName {
        &self.name
    }

    /// Returns the parameter types.
    pub fn params(&self) -> &[TypeTag] {
        &self.params
    }

    /// Returns the return type.
    pub fn ret(&self) -> TypeTag {
        self.ret
    }

    /// Returns `true` if `other` can replace `self` without breaking callers:
    /// same name, same arity, pairwise-compatible parameter and return types.
    pub fn compatible_with(&self, other: &FunctionSignature) -> bool {
        self.name == other.name
            && self.params.len() == other.params.len()
            && self
                .params
                .iter()
                .zip(other.params.iter())
                .all(|(a, b)| a.accepts(*b))
            && self.ret.accepts(other.ret)
    }
}

impl fmt::Display for FunctionSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> {}", self.ret)
    }
}

/// Error returned when parsing a [`FunctionSignature`] or [`TypeTag`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSignatureError {
    input: String,
}

impl fmt::Display for ParseSignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid signature {:?}: expected `name(type, ...) -> type`",
            self.input
        )
    }
}

impl std::error::Error for ParseSignatureError {}

impl FromStr for FunctionSignature {
    type Err = ParseSignatureError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSignatureError {
            input: s.to_owned(),
        };
        let (head, ret) = match s.split_once("->") {
            Some((head, ret)) => (head.trim(), ret.trim().parse::<TypeTag>()?),
            None => (s.trim(), TypeTag::Unit),
        };
        let open = head.find('(').ok_or_else(err)?;
        if !head.ends_with(')') {
            return Err(err());
        }
        let name = head[..open].trim();
        if name.is_empty() {
            return Err(err());
        }
        let inner = head[open + 1..head.len() - 1].trim();
        let params = if inner.is_empty() {
            Vec::new()
        } else {
            inner
                .split(',')
                .map(|p| p.trim().parse::<TypeTag>())
                .collect::<Result<_, _>>()?
        };
        Ok(FunctionSignature::new(name, params, ret))
    }
}

/// Whether a dynamic function may be invoked from outside the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Visibility {
    /// Part of the object's public interface; invokable from other objects.
    Exported,
    /// Callable only from within the object in which it resides.
    Internal,
}

impl Visibility {
    /// Returns `true` for [`Visibility::Exported`].
    pub fn is_exported(self) -> bool {
        self == Visibility::Exported
    }
}

impl fmt::Display for Visibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Visibility::Exported => "exported",
            Visibility::Internal => "internal",
        })
    }
}

/// Whether calls to a dynamic function are currently allowed (§2).
///
/// Disabling a function does not evict threads already executing inside it —
/// only *future* calls are disallowed by the DFM (§3.2, thread activity
/// monitoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FunctionState {
    /// Some thread's flow of control may enter the function.
    Enabled,
    /// The object disallows all (new) calls to the function.
    Disabled,
}

impl FunctionState {
    /// Returns `true` for [`FunctionState::Enabled`].
    pub fn is_enabled(self) -> bool {
        self == FunctionState::Enabled
    }
}

impl fmt::Display for FunctionState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FunctionState::Enabled => "enabled",
            FunctionState::Disabled => "disabled",
        })
    }
}

/// Evolution protection of a dynamic function (§3.2).
///
/// Protections are ordered by strictness: `FullyDynamic < Mandatory <
/// Permanent`, and a derived version may strengthen but never weaken a
/// protection inherited from its parent.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Protection {
    /// No restriction; the function can be replaced, disabled, and removed.
    #[default]
    FullyDynamic,
    /// Some enabled implementation of the function must always be present in
    /// every instantiable version derived from the version that marked it.
    Mandatory,
    /// The specific implementation is frozen: it can be neither replaced nor
    /// disabled in any derived version.
    Permanent,
}

impl Protection {
    /// Returns `true` if the protection requires *some* implementation to
    /// remain enabled (both `Mandatory` and `Permanent` do).
    pub fn requires_presence(self) -> bool {
        self >= Protection::Mandatory
    }

    /// Returns `true` if the protection freezes the specific implementation.
    pub fn freezes_implementation(self) -> bool {
        self == Protection::Permanent
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Protection::FullyDynamic => "fully-dynamic",
            Protection::Mandatory => "mandatory",
            Protection::Permanent => "permanent",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_name_round_trips() {
        let f = FunctionName::new("compare");
        assert_eq!(f.as_str(), "compare");
        assert_eq!(f.to_string(), "compare");
        assert_eq!(FunctionName::from("compare"), f);
        assert_eq!(f.as_ref(), "compare");
    }

    #[test]
    fn signature_parses_the_paper_example() {
        // §3.2: "Integer[] sort(Integer[])" and "Integer compare(Integer, Integer)".
        let sort: FunctionSignature = "sort(list) -> list".parse().unwrap();
        assert_eq!(sort.to_string(), "sort(list) -> list");
        let compare: FunctionSignature = "compare(int, int) -> int".parse().unwrap();
        assert_eq!(compare.params().len(), 2);
        assert_eq!(compare.ret(), TypeTag::Int);
    }

    #[test]
    fn signature_defaults_to_unit_return() {
        let sig: FunctionSignature = "ping()".parse().unwrap();
        assert_eq!(sig.ret(), TypeTag::Unit);
        assert!(sig.params().is_empty());
    }

    #[test]
    fn signature_parse_rejects_malformed() {
        for bad in ["", "noparens", "(int)", "f(int", "f(wibble)", "f() -> wat"] {
            assert!(bad.parse::<FunctionSignature>().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn compatible_same_signature() {
        let a: FunctionSignature = "compare(int, int) -> int".parse().unwrap();
        let b: FunctionSignature = "compare(int, int) -> int".parse().unwrap();
        assert!(a.compatible_with(&b));
    }

    #[test]
    fn incompatible_on_name_arity_or_types() {
        let a: FunctionSignature = "compare(int, int) -> int".parse().unwrap();
        let renamed: FunctionSignature = "cmp(int, int) -> int".parse().unwrap();
        let arity: FunctionSignature = "compare(int) -> int".parse().unwrap();
        let types: FunctionSignature = "compare(str, int) -> int".parse().unwrap();
        assert!(!a.compatible_with(&renamed));
        assert!(!a.compatible_with(&arity));
        assert!(!a.compatible_with(&types));
    }

    #[test]
    fn any_accepts_everything() {
        assert!(TypeTag::Any.accepts(TypeTag::Int));
        assert!(TypeTag::Int.accepts(TypeTag::Any));
        assert!(!TypeTag::Int.accepts(TypeTag::Str));
        let generic: FunctionSignature = "apply(any) -> any".parse().unwrap();
        let concrete: FunctionSignature = "apply(int) -> str".parse().unwrap();
        assert!(generic.compatible_with(&concrete));
    }

    #[test]
    fn protection_ordering_matches_strictness() {
        assert!(Protection::FullyDynamic < Protection::Mandatory);
        assert!(Protection::Mandatory < Protection::Permanent);
        assert!(!Protection::FullyDynamic.requires_presence());
        assert!(Protection::Mandatory.requires_presence());
        assert!(Protection::Permanent.requires_presence());
        assert!(Protection::Permanent.freezes_implementation());
        assert!(!Protection::Mandatory.freezes_implementation());
        assert_eq!(Protection::default(), Protection::FullyDynamic);
    }

    #[test]
    fn visibility_and_state_helpers() {
        assert!(Visibility::Exported.is_exported());
        assert!(!Visibility::Internal.is_exported());
        assert!(FunctionState::Enabled.is_enabled());
        assert!(!FunctionState::Disabled.is_enabled());
        assert_eq!(Visibility::Internal.to_string(), "internal");
        assert_eq!(FunctionState::Disabled.to_string(), "disabled");
    }
}

//! Shared vocabulary types for the DCDO reproduction.
//!
//! This crate defines the identifiers, version identifiers, implementation
//! types, and dynamic-function interface descriptions that every other crate
//! in the workspace speaks. It corresponds to the "common object model"
//! vocabulary of the paper: Legion object identifiers, DCDO version
//! identifiers (§2.1), implementation types (§2.1), and the
//! exported/internal, enabled/disabled, mandatory/permanent classification of
//! dynamic functions (§2.2, §3.2).
//!
//! # Examples
//!
//! ```
//! use dcdo_types::{VersionId, FunctionName, Visibility};
//!
//! let root = VersionId::root();
//! let child = root.child(2);
//! assert!(child.is_derived_from(&root));
//! assert_eq!(child.to_string(), "1.2");
//!
//! let f = FunctionName::new("sort");
//! assert_eq!(f.as_str(), "sort");
//! assert_eq!(Visibility::Exported.is_exported(), true);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dependency;
mod function;
mod ids;
mod impl_type;
mod intern;
mod version;

pub use dependency::{Dependency, DependencyEnd, DependencyType};
pub use function::{
    FunctionName, FunctionSignature, FunctionState, ParseSignatureError, Protection, TypeTag,
    Visibility,
};
pub use ids::{CallId, ClassId, ComponentId, HostId, ObjectId};
pub use impl_type::{Architecture, ImplementationType, Language, ObjectCodeFormat};
pub use intern::{FunctionId, FunctionInterner};
pub use version::{ParseVersionError, VersionId};

//! Opaque identifiers for the entities of the system.
//!
//! Legion names everything in a single global object namespace with LOIDs
//! (Legion object identifiers). We model LOIDs as opaque 64-bit identifiers
//! minted by the simulation kernel; the textual rendering mimics the dotted
//! LOID style only for readability.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from a raw value.
            ///
            /// Raw values are minted by whatever allocator owns the namespace
            /// (typically the simulation kernel); this constructor performs no
            /// uniqueness checking.
            pub const fn from_raw(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw value underlying this identifier.
            pub const fn as_raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// A Legion object identifier (LOID): names any active object in the
    /// global namespace — DCDOs, ICOs, managers, class objects, hosts, and
    /// vaults all live in this single namespace.
    ObjectId,
    "loid:"
);

id_type!(
    /// Identifies an object *type* (a Legion class). Every DCDO Manager and
    /// every Legion class object manages exactly one class.
    ClassId,
    "class:"
);

id_type!(
    /// Identifies a physical host (a node of the simulated testbed).
    HostId,
    "host:"
);

id_type!(
    /// Identifies an implementation component, unique within one object type.
    ///
    /// Components are *maintained* inside implementation component objects
    /// (ICOs), which carry an [`ObjectId`]; the `ComponentId` is the stable
    /// logical identity a DFM descriptor refers to, so the same component can
    /// be re-hosted in a different ICO without invalidating descriptors.
    ComponentId,
    "comp:"
);

id_type!(
    /// Correlates an RPC request with its reply.
    CallId,
    "call:"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        let id = ObjectId::from_raw(42);
        assert_eq!(id.as_raw(), 42);
        assert_eq!(u64::from(id), 42);
    }

    #[test]
    fn display_is_prefixed_and_nonempty() {
        assert_eq!(ObjectId::from_raw(7).to_string(), "loid:7");
        assert_eq!(ClassId::from_raw(1).to_string(), "class:1");
        assert_eq!(HostId::from_raw(3).to_string(), "host:3");
        assert_eq!(ComponentId::from_raw(9).to_string(), "comp:9");
        assert_eq!(CallId::from_raw(0).to_string(), "call:0");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(ObjectId::from_raw(1) < ObjectId::from_raw(2));
        let mut v = vec![HostId::from_raw(5), HostId::from_raw(1)];
        v.sort();
        assert_eq!(v, vec![HostId::from_raw(1), HostId::from_raw(5)]);
    }

    #[test]
    fn distinct_id_types_do_not_unify() {
        // Compile-time property: this test documents that the newtypes are
        // distinct; equality across types does not type-check.
        fn takes_object(_: ObjectId) {}
        takes_object(ObjectId::from_raw(1));
    }
}

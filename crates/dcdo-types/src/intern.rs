//! Function-name interning for the dispatch hot path.
//!
//! Every resolver that serves calls by [`FunctionName`] pays a string hash
//! (or worse, an ordered-map walk) per call. Interning maps each distinct
//! name to a small dense [`FunctionId`] once, so per-call records can live
//! in a flat `Vec` indexed by slot instead of a keyed map.
//!
//! The interner is **append-only**: a name's id never changes and ids are
//! never reused, even if the function later disappears from the
//! configuration. That stability is what lets call sites cache a slot
//! across reconfigurations — a configuration change invalidates the cached
//! *generation*, never the slot numbering.

use std::collections::HashMap;

use crate::function::FunctionName;

/// A dense interned identifier for one [`FunctionName`].
///
/// Valid only for the [`FunctionInterner`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunctionId(u32);

impl FunctionId {
    /// The id as a flat-table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a flat-table index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn from_index(index: usize) -> Self {
        FunctionId(u32::try_from(index).expect("function id overflow"))
    }

    /// The raw id value.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for FunctionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An append-only map from [`FunctionName`] to dense [`FunctionId`].
#[derive(Debug, Clone, Default)]
pub struct FunctionInterner {
    ids: HashMap<FunctionName, FunctionId>,
    names: Vec<FunctionName>,
}

impl FunctionInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        FunctionInterner::default()
    }

    /// Returns the id for `name`, allocating the next id on first sight.
    pub fn intern(&mut self, name: &FunctionName) -> FunctionId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = FunctionId::from_index(self.names.len());
        self.names.push(name.clone());
        self.ids.insert(name.clone(), id);
        id
    }

    /// Returns the id for `name` if it has been interned.
    pub fn get(&self, name: &FunctionName) -> Option<FunctionId> {
        self.ids.get(name).copied()
    }

    /// Returns the name behind `id`, if `id` came from this interner.
    pub fn name(&self, id: FunctionId) -> Option<&FunctionName> {
        self.names.get(id.index())
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut interner = FunctionInterner::new();
        let a = interner.intern(&"alpha".into());
        let b = interner.intern(&"beta".into());
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        // Re-interning returns the same id.
        assert_eq!(interner.intern(&"alpha".into()), a);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get(&"beta".into()), Some(b));
        assert_eq!(interner.get(&"gamma".into()), None);
        assert_eq!(interner.name(a).map(|n| n.as_str()), Some("alpha"));
        assert_eq!(interner.name(FunctionId::from_index(9)), None);
    }

    #[test]
    fn distinct_name_objects_with_equal_text_share_an_id() {
        let mut interner = FunctionInterner::new();
        let first = FunctionName::new("sort");
        let second = FunctionName::new(String::from("sort"));
        assert_eq!(interner.intern(&first), interner.intern(&second));
        assert_eq!(interner.len(), 1);
    }
}

//! Version identifiers (§2.1 of the paper).
//!
//! A version identifier is an array of positive integers that identifies some
//! version of an object type's implementation. Identifiers are unique only
//! within one object type. Versions form a tree: `1.2.3` is derived
//! (transitively) from `1.2` and `1`, and the *increasing version number*
//! evolution policy only permits evolution to descendants.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A version identifier: a non-empty array of positive integers, e.g. `1.2.3`.
///
/// Within one object type, two DCDOs carrying the same `VersionId` have
/// functionally equivalent implementations: the same components incorporated
/// and functionally equivalent DFMs (§2.1).
///
/// # Examples
///
/// ```
/// use dcdo_types::VersionId;
///
/// let v: VersionId = "1.2.3".parse()?;
/// assert!(v.is_derived_from(&"1.2".parse()?));
/// assert!(!v.is_derived_from(&"1.3".parse()?));
/// assert_eq!(v.parent(), Some("1.2".parse()?));
/// # Ok::<(), dcdo_types::ParseVersionError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VersionId(Vec<u32>);

impl VersionId {
    /// The root version, `1`, from which every version tree grows.
    pub fn root() -> Self {
        VersionId(vec![1])
    }

    /// Creates a version identifier from components.
    ///
    /// Returns `None` if `components` is empty or contains a zero (the paper
    /// requires positive integers).
    pub fn new<I>(components: I) -> Option<Self>
    where
        I: IntoIterator<Item = u32>,
    {
        let v: Vec<u32> = components.into_iter().collect();
        if v.is_empty() || v.contains(&0) {
            None
        } else {
            Some(VersionId(v))
        }
    }

    /// Returns the components of this identifier.
    pub fn components(&self) -> &[u32] {
        &self.0
    }

    /// Returns the number of components (the depth in the version tree).
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Derives the child version obtained by appending `branch`.
    ///
    /// # Panics
    ///
    /// Panics if `branch` is zero; version components are positive.
    pub fn child(&self, branch: u32) -> Self {
        assert!(branch > 0, "version components are positive integers");
        let mut v = self.0.clone();
        v.push(branch);
        VersionId(v)
    }

    /// Returns the parent version, or `None` for a depth-1 version.
    pub fn parent(&self) -> Option<Self> {
        if self.0.len() <= 1 {
            None
        } else {
            Some(VersionId(self.0[..self.0.len() - 1].to_vec()))
        }
    }

    /// Returns `true` if `self` is (transitively) derived from `ancestor`.
    ///
    /// A version is *not* considered derived from itself; use
    /// [`VersionId::is_self_or_derived_from`] for the reflexive relation.
    pub fn is_derived_from(&self, ancestor: &VersionId) -> bool {
        self.0.len() > ancestor.0.len() && self.0.starts_with(&ancestor.0)
    }

    /// Returns `true` if `self` equals `ancestor` or is derived from it.
    pub fn is_self_or_derived_from(&self, ancestor: &VersionId) -> bool {
        self == ancestor || self.is_derived_from(ancestor)
    }

    /// Returns the nearest common ancestor of two versions in the tree, if
    /// they share one (they do whenever their first components agree).
    pub fn common_ancestor(&self, other: &VersionId) -> Option<VersionId> {
        let shared: Vec<u32> = self
            .0
            .iter()
            .zip(other.0.iter())
            .take_while(|(a, b)| a == b)
            .map(|(a, _)| *a)
            .collect();
        if shared.is_empty() {
            None
        } else {
            Some(VersionId(shared))
        }
    }
}

impl Default for VersionId {
    fn default() -> Self {
        VersionId::root()
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.0 {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`VersionId`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVersionError {
    input: String,
}

impl fmt::Display for ParseVersionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid version identifier {:?}: expected dot-separated positive integers",
            self.input
        )
    }
}

impl std::error::Error for ParseVersionError {}

impl FromStr for VersionId {
    type Err = ParseVersionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseVersionError {
            input: s.to_owned(),
        };
        let components: Vec<u32> = s
            .split('.')
            .map(|part| part.parse::<u32>().map_err(|_| err()))
            .collect::<Result<_, _>>()?;
        VersionId::new(components).ok_or_else(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_one() {
        assert_eq!(VersionId::root().to_string(), "1");
        assert_eq!(VersionId::default(), VersionId::root());
    }

    #[test]
    fn new_rejects_empty_and_zero() {
        assert!(VersionId::new([]).is_none());
        assert!(VersionId::new([1, 0, 3]).is_none());
        assert!(VersionId::new([1, 2, 3]).is_some());
    }

    #[test]
    fn parse_and_display_round_trip() {
        // The paper defines version components as *positive* integers
        // (§2.1), so the informal "3.2.0.4" example from §3.4 is rejected.
        let err = "3.2.0.4".parse::<VersionId>().unwrap_err().to_string();
        assert!(err.contains("3.2.0.4"));
        let v: VersionId = "1.2.3".parse().unwrap();
        assert_eq!(v.to_string(), "1.2.3");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<VersionId>().is_err());
        assert!("1..2".parse::<VersionId>().is_err());
        assert!("a.b".parse::<VersionId>().is_err());
        assert!("1.2.".parse::<VersionId>().is_err());
        assert!("-1.2".parse::<VersionId>().is_err());
    }

    #[test]
    fn derivation_follows_the_paper_example() {
        // §3.5: a version 3.2 DCDO can evolve to 3.2.1, but not to 3.3.
        let v32: VersionId = "3.2".parse().unwrap();
        let v321: VersionId = "3.2.1".parse().unwrap();
        let v33: VersionId = "3.3".parse().unwrap();
        assert!(v321.is_derived_from(&v32));
        assert!(!v33.is_derived_from(&v32));
        assert!(!v32.is_derived_from(&v32));
        assert!(v32.is_self_or_derived_from(&v32));
    }

    #[test]
    fn child_and_parent_invert() {
        let v = VersionId::root().child(4).child(2);
        assert_eq!(v.to_string(), "1.4.2");
        assert_eq!(v.parent().unwrap().to_string(), "1.4");
        assert_eq!(VersionId::root().parent(), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn child_zero_panics() {
        let _ = VersionId::root().child(0);
    }

    #[test]
    fn common_ancestor() {
        let a: VersionId = "1.2.3".parse().unwrap();
        let b: VersionId = "1.2.5.1".parse().unwrap();
        assert_eq!(a.common_ancestor(&b).unwrap().to_string(), "1.2");
        let c: VersionId = "2.1".parse().unwrap();
        assert_eq!(a.common_ancestor(&c), None);
        assert_eq!(a.common_ancestor(&a).unwrap(), a);
    }

    #[test]
    fn ordering_is_lexicographic_on_components() {
        let a: VersionId = "1.2".parse().unwrap();
        let b: VersionId = "1.2.1".parse().unwrap();
        let c: VersionId = "1.3".parse().unwrap();
        assert!(a < b && b < c);
    }
}

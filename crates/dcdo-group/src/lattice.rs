//! The configuration join-semilattice.
//!
//! A group's next configuration is negotiated as a [`ConfigDelta`]: a
//! joinable description of *what should change*. Deltas form a
//! join-semilattice — [`ConfigDelta::join`] is commutative, associative,
//! and idempotent by construction (a product of max- and union-lattices) —
//! so concurrent proposals merge instead of aborting, the central idea of
//! reconfigurable lattice agreement. Whatever order proposals arrive in,
//! one epoch round joins them to the same delta, and applying the joined
//! delta to the previous [`GroupConfig`] yields the same next config on
//! every replica. The property suite in `tests/lattice_props.rs` is the
//! oracle for all three laws plus permutation-invariance of the digest.

use std::collections::{BTreeMap, BTreeSet};

/// A joinable description of a configuration change.
///
/// Each field is itself a join-semilattice: optional version tags merge by
/// max, member sets by union, and parameters by per-key max. Upgrade and
/// downgrade mark which members should run the new (resp. previous)
/// implementation version; at [`GroupConfig::apply`] time downgrade wins
/// over upgrade and removal wins over addition, which keeps apply a pure
/// function of the joined delta.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfigDelta {
    /// Target implementation version (max-merge; `None` means unchanged).
    pub version: Option<u32>,
    /// Members to add to the group (union).
    pub add_members: BTreeSet<u32>,
    /// Members to remove from the group (union; wins over add at apply).
    pub remove_members: BTreeSet<u32>,
    /// Members to move to the target version (union).
    pub upgrade: BTreeSet<u32>,
    /// Members to move back to the base version (union; wins over upgrade
    /// at apply).
    pub downgrade: BTreeSet<u32>,
    /// Tunable parameters (per-key max-merge).
    pub params: BTreeMap<u32, u64>,
}

impl ConfigDelta {
    /// The empty delta (the lattice's bottom element).
    pub fn new() -> Self {
        ConfigDelta::default()
    }

    /// Sets the target version tag.
    pub fn with_version(mut self, version: u32) -> Self {
        self.version = Some(version);
        self
    }

    /// Marks `members` for upgrade to the target version.
    pub fn upgrading(mut self, members: impl IntoIterator<Item = u32>) -> Self {
        self.upgrade.extend(members);
        self
    }

    /// Marks `members` for downgrade back to the base version.
    pub fn downgrading(mut self, members: impl IntoIterator<Item = u32>) -> Self {
        self.downgrade.extend(members);
        self
    }

    /// Adds a member to the group.
    pub fn adding(mut self, member: u32) -> Self {
        self.add_members.insert(member);
        self
    }

    /// Removes a member from the group.
    pub fn removing(mut self, member: u32) -> Self {
        self.remove_members.insert(member);
        self
    }

    /// Sets parameter `key` to at least `value`.
    pub fn with_param(mut self, key: u32, value: u64) -> Self {
        let slot = self.params.entry(key).or_insert(value);
        *slot = (*slot).max(value);
        self
    }

    /// `true` if this is the empty delta (joining it changes nothing).
    pub fn is_empty(&self) -> bool {
        self == &ConfigDelta::default()
    }

    /// The least upper bound of two deltas.
    pub fn join(&self, other: &ConfigDelta) -> ConfigDelta {
        let version = match (self.version, other.version) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let mut params = self.params.clone();
        for (&k, &v) in &other.params {
            let slot = params.entry(k).or_insert(v);
            *slot = (*slot).max(v);
        }
        ConfigDelta {
            version,
            add_members: self
                .add_members
                .union(&other.add_members)
                .copied()
                .collect(),
            remove_members: self
                .remove_members
                .union(&other.remove_members)
                .copied()
                .collect(),
            upgrade: self.upgrade.union(&other.upgrade).copied().collect(),
            downgrade: self.downgrade.union(&other.downgrade).copied().collect(),
            params,
        }
    }

    /// Joins `self` with `other` in place.
    pub fn join_in_place(&mut self, other: &ConfigDelta) {
        *self = self.join(other);
    }

    /// The join of an arbitrary collection of deltas (empty → bottom).
    pub fn join_all<'a>(deltas: impl IntoIterator<Item = &'a ConfigDelta>) -> ConfigDelta {
        deltas
            .into_iter()
            .fold(ConfigDelta::new(), |acc, d| acc.join(d))
    }

    /// Build-independent FNV-1a digest over the delta's integer content.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.tagged(1, self.version.map(|v| v as u64 + 1).unwrap_or(0));
        h.set(2, &self.add_members);
        h.set(3, &self.remove_members);
        h.set(4, &self.upgrade);
        h.set(5, &self.downgrade);
        for (&k, &v) in &self.params {
            h.tagged(6, k as u64);
            h.word(v);
        }
        h.finish()
    }
}

/// One committed configuration of a replica group.
///
/// `epoch` counts commits: the initial config is epoch 0 and every
/// committed round advances it by exactly one. All other fields are the
/// deterministic result of folding committed deltas over the initial
/// config with [`GroupConfig::apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupConfig {
    /// The epoch this configuration was committed at.
    pub epoch: u64,
    /// The implementation version the group is converging to.
    pub version: u32,
    /// Current membership.
    pub members: BTreeSet<u32>,
    /// Members currently running [`GroupConfig::version`] (the rest still
    /// run the previous version — mid-rollout states are first-class).
    pub upgraded: BTreeSet<u32>,
    /// Tunable parameters.
    pub params: BTreeMap<u32, u64>,
}

impl GroupConfig {
    /// The epoch-0 configuration: `members` all running `version`, nobody
    /// upgraded, no parameters.
    pub fn initial(members: impl IntoIterator<Item = u32>, version: u32) -> Self {
        GroupConfig {
            epoch: 0,
            version,
            members: members.into_iter().collect(),
            upgraded: BTreeSet::new(),
            params: BTreeMap::new(),
        }
    }

    /// Applies a joined delta, producing the next epoch's configuration.
    ///
    /// Deterministic in the joined delta alone: removal wins over addition
    /// and downgrade wins over upgrade, so every replica that applies the
    /// same delta to the same config reaches the same successor.
    pub fn apply(&self, delta: &ConfigDelta) -> GroupConfig {
        let mut members = self.members.clone();
        members.extend(&delta.add_members);
        for m in &delta.remove_members {
            members.remove(m);
        }
        let mut upgraded = self.upgraded.clone();
        upgraded.extend(&delta.upgrade);
        for m in &delta.downgrade {
            upgraded.remove(m);
        }
        upgraded.retain(|m| members.contains(m));
        let mut params = self.params.clone();
        for (&k, &v) in &delta.params {
            params.insert(k, v);
        }
        GroupConfig {
            epoch: self.epoch + 1,
            version: delta.version.unwrap_or(self.version),
            members,
            upgraded,
            params,
        }
    }

    /// Build-independent FNV-1a digest over the config's integer content.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.tagged(1, self.epoch);
        h.tagged(2, self.version as u64);
        h.set(3, &self.members);
        h.set(4, &self.upgraded);
        for (&k, &v) in &self.params {
            h.tagged(5, k as u64);
            h.word(v);
        }
        h.finish()
    }
}

/// Streaming FNV-1a over 64-bit words (little-endian bytes), matching the
/// digest style the trace layer uses.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn tagged(&mut self, tag: u64, w: u64) {
        self.word(tag);
        self.word(w);
    }

    fn set(&mut self, tag: u64, s: &BTreeSet<u32>) {
        self.word(tag);
        self.word(s.len() as u64);
        for &m in s {
            self.word(m as u64);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(a: u32) -> ConfigDelta {
        ConfigDelta::new()
            .with_version(a)
            .upgrading([a, a + 1])
            .with_param(1, a as u64 * 10)
    }

    #[test]
    fn join_is_commutative_associative_idempotent() {
        let (a, b, c) = (sample(1), sample(2).downgrading([3]), sample(3).removing(7));
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        assert_eq!(a.join(&a), a);
        assert_eq!(a.join(&ConfigDelta::new()), a);
    }

    #[test]
    fn apply_is_deterministic_and_biased_to_removal() {
        let base = GroupConfig::initial(0..4, 1);
        let delta = ConfigDelta::new()
            .with_version(2)
            .upgrading([0, 1])
            .downgrading([1])
            .adding(9)
            .removing(9);
        let next = base.apply(&delta);
        assert_eq!(next.epoch, 1);
        assert_eq!(next.version, 2);
        // Downgrade wins over upgrade, removal wins over addition.
        assert!(next.upgraded.contains(&0) && !next.upgraded.contains(&1));
        assert!(!next.members.contains(&9));
        assert_eq!(base.apply(&delta), next);
    }

    #[test]
    fn digests_separate_distinct_content() {
        assert_ne!(sample(1).digest(), sample(2).digest());
        assert_ne!(
            ConfigDelta::new().upgrading([1]).digest(),
            ConfigDelta::new().downgrading([1]).digest()
        );
        let cfg = GroupConfig::initial(0..4, 1);
        assert_ne!(cfg.digest(), cfg.apply(&sample(1)).digest());
    }

    #[test]
    fn empty_delta_still_advances_the_epoch() {
        let base = GroupConfig::initial(0..3, 1);
        let next = base.apply(&ConfigDelta::new());
        assert_eq!(next.epoch, 1);
        assert_eq!(next.version, base.version);
        assert_eq!(next.members, base.members);
    }
}

//! The propose/commit epoch protocol over a replica set.
//!
//! A [`GroupCoordinator`] collects concurrent [`ProposeConfig`] deltas,
//! joins them (lattice agreement: joins commute, so arrival order is
//! irrelevant), and drives one *epoch round* at a time: an [`EpochPrepare`]
//! fences every replica, and once acknowledgements are in the coordinator
//! commits the joined configuration in a single handler — the
//! `EpochCommitted` span and the [`EpochCommit`] broadcast are atomic, so
//! a coordinator crash either commits a round fully-in-flight or not at
//! all. Fenced replicas refuse to serve (the stale-binding discipline from
//! the generation machinery, lifted to groups): that is what makes the
//! trace-level *no mixed-epoch serving* invariant hold with no grace
//! window. A replica whose coordinator dies mid-round unfences itself via
//! a one-shot fence timeout and reverts to the last committed epoch.
//!
//! Commit requires **every** live member's ack; only at the ack deadline
//! does the coordinator fall back to a majority quorum — by then the
//! silent members are presumed crashed, and crashed replicas cannot serve,
//! so the strict invariant survives the fallback.

use std::collections::{BTreeMap, BTreeSet};

use dcdo_sim::{
    Actor, ActorId, Ctx, FlowKind, NodeId, SimDuration, SimTime, Simulation, SpanKind, TimerId,
};
use dcdo_types::{CallId, ObjectId};
use dcdo_vm::Value;
use legion_substrate::{control_payload, Ack, ControlOp, InvocationFault, Msg};

use crate::lattice::{ConfigDelta, GroupConfig};

// ---- control payloads ---------------------------------------------------

/// Ask the coordinator to fold `delta` into the group's next epoch.
#[derive(Debug, Clone)]
pub struct ProposeConfig {
    /// The group being reconfigured.
    pub group: u64,
    /// The proposed change (joined with concurrent proposals).
    pub delta: ConfigDelta,
}

control_payload!(ProposeConfig, "propose-config");

/// The coordinator's answer to a [`ProposeConfig`], sent when the round
/// carrying the proposal resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposalResult {
    /// Whether the round committed (`false`: aborted at the deadline).
    pub committed: bool,
    /// The epoch the round targeted.
    pub epoch: u64,
    /// Digest of the committed configuration (last committed on abort).
    pub config_digest: u64,
}

control_payload!(ProposalResult, "proposal-result");

/// Fence a replica for an in-flight epoch round.
#[derive(Debug, Clone)]
pub struct EpochPrepare {
    /// The group.
    pub group: u64,
    /// The epoch being prepared.
    pub epoch: u64,
    /// Digest of the joined delta the round will apply.
    pub joined_digest: u64,
}

control_payload!(EpochPrepare, "epoch-prepare");

/// A replica's acknowledgement that it is fenced for `epoch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochPrepareAck {
    /// The acking member.
    pub member: u32,
    /// The epoch it is fenced for.
    pub epoch: u64,
    /// Echo of the joined-delta digest it fenced on.
    pub joined_digest: u64,
}

control_payload!(EpochPrepareAck, "epoch-prepare-ack");

/// Commit a round: the full next configuration, so stragglers catch up in
/// one hop and digest agreement is checkable byte-for-byte.
#[derive(Debug, Clone)]
pub struct EpochCommit {
    /// The committed configuration (carries its own epoch).
    pub config: GroupConfig,
}

control_payload!(EpochCommit, "epoch-commit");

/// Abort an in-flight round: fenced replicas revert to the last committed
/// epoch. Sent by the coordinator at a failed deadline, or by a rollout
/// driver cleaning up after a dead coordinator.
#[derive(Debug, Clone)]
pub struct EpochAbort {
    /// The group.
    pub group: u64,
    /// The epoch whose round is being abandoned.
    pub epoch: u64,
}

control_payload!(EpochAbort, "epoch-abort");

/// Ask a replica for its health and epoch position.
#[derive(Debug, Clone)]
pub struct ProbeReplica;

control_payload!(ProbeReplica, "probe-replica");

/// A replica's answer to a [`ProbeReplica`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// The member.
    pub member: u32,
    /// Its adopted epoch.
    pub epoch: u64,
    /// The implementation version it is running.
    pub version: u32,
    /// Whether its health probe passes (see
    /// [`GroupReplica::unhealthy_from_version`]).
    pub healthy: bool,
    /// Invocations served.
    pub served: u64,
    /// Invocations refused (fenced or stale).
    pub refused: u64,
    /// Digest of its adopted configuration.
    pub config_digest: u64,
}

control_payload!(ReplicaStatus, "replica-status");

// ---- replica ------------------------------------------------------------

/// Timer-token base for a replica's one-shot fence timeout; the pending
/// epoch is added so a stale timeout for an already-resolved round no-ops.
const FENCE_TOKEN_BASE: u64 = 1_000;

/// An in-flight fence on a replica.
#[derive(Debug)]
struct Fence {
    epoch: u64,
    timer: TimerId,
}

/// One group member: serves application `work` calls at its adopted epoch
/// and participates in prepare/commit rounds.
///
/// The replica's version of the running implementation is whatever its
/// adopted [`GroupConfig`] says: `config.version` if the member is in the
/// upgraded set, the base version otherwise.
pub struct GroupReplica {
    group: u64,
    member: u32,
    object: ObjectId,
    base_version: u32,
    config: GroupConfig,
    fence: Option<Fence>,
    /// How long a fence survives without a commit or abort before the
    /// replica reverts to serving the last committed epoch. Must exceed the
    /// coordinator's ack deadline plus a network delay so a commit always
    /// outruns the timeout.
    fence_timeout: SimDuration,
    served: u64,
    refused: u64,
    /// Fault-injection knob: report unhealthy to probes once this replica
    /// is upgraded to a version `>= v`. Drives the rollback scenarios.
    unhealthy_from_version: Option<u32>,
}

impl GroupReplica {
    /// A member of `group` with identity `object`, starting at `config`.
    pub fn new(group: u64, member: u32, object: ObjectId, config: GroupConfig) -> Self {
        GroupReplica {
            group,
            member,
            object,
            base_version: config.version,
            config,
            fence: None,
            fence_timeout: SimDuration::from_millis(400),
            served: 0,
            refused: 0,
            unhealthy_from_version: None,
        }
    }

    /// Overrides the fence timeout.
    pub fn with_fence_timeout(mut self, timeout: SimDuration) -> Self {
        self.fence_timeout = timeout;
        self
    }

    /// Plants the health fault: probes report unhealthy once this replica
    /// runs a version `>= version`.
    pub fn with_unhealthy_from_version(mut self, version: u32) -> Self {
        self.unhealthy_from_version = Some(version);
        self
    }

    /// The adopted configuration.
    pub fn config(&self) -> &GroupConfig {
        &self.config
    }

    /// The adopted epoch.
    pub fn epoch(&self) -> u64 {
        self.config.epoch
    }

    /// The implementation version this member is running.
    pub fn running_version(&self) -> u32 {
        if self.config.upgraded.contains(&self.member) {
            self.config.version
        } else {
            self.base_version
        }
    }

    /// Invocations served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Invocations refused while fenced or stale.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// `true` while an epoch round holds this replica fenced.
    pub fn is_fenced(&self) -> bool {
        self.fence.is_some()
    }

    fn healthy(&self) -> bool {
        match self.unhealthy_from_version {
            Some(v) => self.running_version() < v,
            None => true,
        }
    }

    fn adopt(&mut self, ctx: &mut Ctx<'_, Msg>, config: GroupConfig) {
        if let Some(fence) = self.fence.take() {
            ctx.cancel_timer(fence.timer);
        }
        if config.epoch <= self.config.epoch {
            // Duplicate or stale commit: adoption is idempotent.
            return;
        }
        self.config = config;
        ctx.emit_span(SpanKind::ReplicaEpoch {
            group: self.group,
            replica: self.member as u64,
            epoch: self.config.epoch,
        });
        // The group epoch rides the same generation discipline single
        // objects use: one stamp per adoption, monotone per object.
        ctx.emit_span(SpanKind::GenerationStamp {
            object: self.object.as_raw(),
            generation: self.config.epoch,
        });
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, call: CallId, op: ControlOp) {
        let result = if let Some(prep) = op.downcast_ref::<EpochPrepare>() {
            if prep.group != self.group || prep.epoch <= self.config.epoch {
                Err(InvocationFault::Refused(format!(
                    "stale prepare for epoch {} (at {})",
                    prep.epoch, self.config.epoch
                )))
            } else {
                if let Some(old) = self.fence.take() {
                    ctx.cancel_timer(old.timer);
                }
                let timer = ctx.schedule_timer(self.fence_timeout, FENCE_TOKEN_BASE + prep.epoch);
                self.fence = Some(Fence {
                    epoch: prep.epoch,
                    timer,
                });
                Ok(ControlOp::new(EpochPrepareAck {
                    member: self.member,
                    epoch: prep.epoch,
                    joined_digest: prep.joined_digest,
                }))
            }
        } else if let Some(commit) = op.downcast_ref::<EpochCommit>() {
            self.adopt(ctx, commit.config.clone());
            Ok(ControlOp::new(Ack))
        } else if let Some(abort) = op.downcast_ref::<EpochAbort>() {
            if let Some(fence) = self.fence.take() {
                if fence.epoch == abort.epoch && abort.group == self.group {
                    ctx.cancel_timer(fence.timer);
                } else {
                    self.fence = Some(fence);
                }
            }
            Ok(ControlOp::new(Ack))
        } else if op.downcast_ref::<ProbeReplica>().is_some() {
            Ok(ControlOp::new(ReplicaStatus {
                member: self.member,
                epoch: self.config.epoch,
                version: self.running_version(),
                healthy: self.healthy(),
                served: self.served,
                refused: self.refused,
                config_digest: self.config.digest(),
            }))
        } else {
            Err(InvocationFault::Refused(format!(
                "group replica does not handle {}",
                op.describe()
            )))
        };
        ctx.send(from, Msg::ControlReply { call, result });
    }
}

impl Actor<Msg> for GroupReplica {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Invoke { call, target, .. } => {
                let result = if target != self.object {
                    Err(InvocationFault::NoSuchObject(target))
                } else if self.fence.is_some() {
                    self.refused += 1;
                    Err(InvocationFault::Refused(format!(
                        "fenced for epoch {}",
                        self.fence.as_ref().map(|f| f.epoch).unwrap_or_default()
                    )))
                } else {
                    self.served += 1;
                    ctx.emit_span(SpanKind::EpochServed {
                        group: self.group,
                        replica: self.member as u64,
                        epoch: self.config.epoch,
                        call: call.as_raw(),
                    });
                    Ok(Value::Int(self.running_version() as i64))
                };
                ctx.send(from, Msg::Reply { call, result });
            }
            Msg::Control { call, target, op } => {
                if target != self.object {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Err(InvocationFault::NoSuchObject(target)),
                        },
                    );
                    return;
                }
                self.on_control(ctx, from, call, op);
            }
            // Replies to this replica's own (nonexistent) outcalls.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        // Fence timeout: the round died with its coordinator. Revert to the
        // last committed epoch and serve again.
        let _ = ctx;
        if let Some(fence) = self.fence.take() {
            if FENCE_TOKEN_BASE + fence.epoch != token {
                self.fence = Some(fence);
            }
        }
    }

    fn name(&self) -> &str {
        "group-replica"
    }
}

// ---- coordinator --------------------------------------------------------

/// Timer token for the proposal-batching round delay.
const ROUND_TOKEN: u64 = 1;
/// Timer-token base for a round's ack deadline (`+ epoch`).
const DEADLINE_TOKEN_BASE: u64 = 1_000;

/// An in-flight epoch round on the coordinator.
struct Round {
    epoch: u64,
    joined_digest: u64,
    next: GroupConfig,
    /// Members that must ack: the *previous* config's membership (they are
    /// the replicas that could otherwise serve stale).
    expected: BTreeSet<u32>,
    acks: BTreeSet<u32>,
    flow: u64,
    deadline: TimerId,
    /// Proposers to answer when the round resolves.
    proposers: Vec<(ActorId, CallId)>,
}

/// The epoch sequencer for one group.
///
/// Batches proposals arriving within `round_delay` of each other into one
/// joined round (the lattice makes the batch order-insensitive), then
/// drives prepare → ack → commit. One round is in flight at a time; commit
/// span and commit broadcast happen in a single handler.
pub struct GroupCoordinator {
    group: u64,
    object: ObjectId,
    config: GroupConfig,
    replicas: BTreeMap<u32, (ActorId, ObjectId)>,
    round_delay: SimDuration,
    ack_deadline: SimDuration,
    /// Joined delta of proposals waiting for the next round.
    inbox: ConfigDelta,
    inbox_proposers: Vec<(ActorId, CallId)>,
    round_scheduled: bool,
    round: Option<Round>,
    committed_rounds: u64,
    aborted_rounds: u64,
}

impl GroupCoordinator {
    /// A coordinator for `group` starting at `config`, sequencing the
    /// replicas in `replicas` (member id → actor + object identity).
    pub fn new(
        group: u64,
        object: ObjectId,
        config: GroupConfig,
        replicas: BTreeMap<u32, (ActorId, ObjectId)>,
    ) -> Self {
        GroupCoordinator {
            group,
            object,
            config,
            replicas,
            round_delay: SimDuration::from_millis(5),
            ack_deadline: SimDuration::from_millis(100),
            inbox: ConfigDelta::new(),
            inbox_proposers: Vec::new(),
            round_scheduled: false,
            round: None,
            committed_rounds: 0,
            aborted_rounds: 0,
        }
    }

    /// Overrides the proposal-batching delay.
    pub fn with_round_delay(mut self, delay: SimDuration) -> Self {
        self.round_delay = delay;
        self
    }

    /// Overrides the prepare-ack deadline.
    pub fn with_ack_deadline(mut self, deadline: SimDuration) -> Self {
        self.ack_deadline = deadline;
        self
    }

    /// Adjusts the proposal-batching delay on a live coordinator (tests
    /// widen it to force concurrent proposals into one round).
    pub fn set_round_delay(&mut self, delay: SimDuration) {
        self.round_delay = delay;
    }

    /// Adjusts the prepare-ack deadline on a live coordinator.
    pub fn set_ack_deadline(&mut self, deadline: SimDuration) {
        self.ack_deadline = deadline;
    }

    /// The committed configuration.
    pub fn config(&self) -> &GroupConfig {
        &self.config
    }

    /// Rounds committed.
    pub fn committed_rounds(&self) -> u64 {
        self.committed_rounds
    }

    /// Rounds aborted at the deadline.
    pub fn aborted_rounds(&self) -> u64 {
        self.aborted_rounds
    }

    fn start_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Keyed on pending proposers, not delta emptiness: an empty joined
        // delta is a legitimate round (the epoch still advances) and its
        // proposers are still owed a resolution.
        if self.round.is_some() || self.inbox_proposers.is_empty() {
            return;
        }
        let delta = std::mem::take(&mut self.inbox);
        let proposers = std::mem::take(&mut self.inbox_proposers);
        let next = self.config.apply(&delta);
        let epoch = next.epoch;
        let joined_digest = delta.digest();
        let flow = ctx.fresh_u64();
        ctx.emit_span(SpanKind::FlowStarted {
            flow,
            object: self.group,
            kind: FlowKind::Epoch,
        });
        ctx.emit_span(SpanKind::EpochProposed {
            group: self.group,
            epoch,
            config: joined_digest,
        });
        let expected: BTreeSet<u32> = self
            .config
            .members
            .iter()
            .copied()
            .filter(|m| self.replicas.contains_key(m))
            .collect();
        for &m in &expected {
            let (actor, object) = self.replicas[&m];
            let call = CallId::from_raw(ctx.fresh_u64());
            ctx.send(
                actor,
                Msg::Control {
                    call,
                    target: object,
                    op: ControlOp::new(EpochPrepare {
                        group: self.group,
                        epoch,
                        joined_digest,
                    }),
                },
            );
        }
        let deadline = ctx.schedule_timer(self.ack_deadline, DEADLINE_TOKEN_BASE + epoch);
        self.round = Some(Round {
            epoch,
            joined_digest,
            next,
            expected,
            acks: BTreeSet::new(),
            flow,
            deadline,
            proposers,
        });
    }

    /// Commits the in-flight round: span, config adoption, commit
    /// broadcast, and proposer replies all in this one handler — atomic
    /// under crash.
    fn commit_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(round) = self.round.take() else {
            return;
        };
        ctx.cancel_timer(round.deadline);
        self.config = round.next;
        self.committed_rounds += 1;
        ctx.emit_span(SpanKind::EpochCommitted {
            group: self.group,
            epoch: self.config.epoch,
            config: self.config.digest(),
        });
        ctx.emit_span(SpanKind::FlowCompleted { flow: round.flow });
        // Broadcast the full config to every known replica — including
        // members the new config dropped, so they learn they are out.
        for (&_m, &(actor, object)) in &self.replicas {
            let call = CallId::from_raw(ctx.fresh_u64());
            ctx.send(
                actor,
                Msg::Control {
                    call,
                    target: object,
                    op: ControlOp::new(EpochCommit {
                        config: self.config.clone(),
                    }),
                },
            );
        }
        let digest = self.config.digest();
        for (proposer, call) in round.proposers {
            ctx.send(
                proposer,
                Msg::ControlReply {
                    call,
                    result: Ok(ControlOp::new(ProposalResult {
                        committed: true,
                        epoch: self.config.epoch,
                        config_digest: digest,
                    })),
                },
            );
        }
        if !self.inbox_proposers.is_empty() && !self.round_scheduled {
            self.round_scheduled = true;
            ctx.schedule_timer(self.round_delay, ROUND_TOKEN);
        }
    }

    fn abort_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(round) = self.round.take() else {
            return;
        };
        self.aborted_rounds += 1;
        ctx.emit_span(SpanKind::FlowAborted { flow: round.flow });
        for &m in &round.expected {
            let (actor, object) = self.replicas[&m];
            let call = CallId::from_raw(ctx.fresh_u64());
            ctx.send(
                actor,
                Msg::Control {
                    call,
                    target: object,
                    op: ControlOp::new(EpochAbort {
                        group: self.group,
                        epoch: round.epoch,
                    }),
                },
            );
        }
        let digest = self.config.digest();
        for (proposer, call) in round.proposers {
            ctx.send(
                proposer,
                Msg::ControlReply {
                    call,
                    result: Ok(ControlOp::new(ProposalResult {
                        committed: false,
                        epoch: round.epoch,
                        config_digest: digest,
                    })),
                },
            );
        }
    }
}

impl Actor<Msg> for GroupCoordinator {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::Control { call, target, op } => {
                if target != self.object {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Err(InvocationFault::NoSuchObject(target)),
                        },
                    );
                    return;
                }
                if let Some(p) = op.downcast_ref::<ProposeConfig>() {
                    if p.group != self.group {
                        ctx.send(
                            from,
                            Msg::ControlReply {
                                call,
                                result: Err(InvocationFault::Refused(format!(
                                    "coordinator serves group {}, not {}",
                                    self.group, p.group
                                ))),
                            },
                        );
                        return;
                    }
                    // Accepted: the reply comes when the round resolves.
                    ctx.send(from, Msg::Progress { call });
                    self.inbox.join_in_place(&p.delta);
                    self.inbox_proposers.push((from, call));
                    if self.round.is_none() && !self.round_scheduled {
                        self.round_scheduled = true;
                        ctx.schedule_timer(self.round_delay, ROUND_TOKEN);
                    }
                } else {
                    ctx.send(
                        from,
                        Msg::ControlReply {
                            call,
                            result: Err(InvocationFault::Refused(format!(
                                "group coordinator does not handle {}",
                                op.describe()
                            ))),
                        },
                    );
                }
            }
            Msg::ControlReply { result, .. } => {
                // Prepare acks flow back here; commit/abort acks are Acks
                // and stale-prepare refusals are faults — both ignored.
                let Ok(op) = result else { return };
                let Some(ack) = op.downcast_ref::<EpochPrepareAck>() else {
                    return;
                };
                let Some(round) = self.round.as_mut() else {
                    return;
                };
                if ack.epoch != round.epoch || ack.joined_digest != round.joined_digest {
                    return;
                }
                if round.expected.contains(&ack.member) {
                    round.acks.insert(ack.member);
                }
                if round.acks.len() == round.expected.len() {
                    self.commit_round(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if token == ROUND_TOKEN {
            self.round_scheduled = false;
            self.start_round(ctx);
            return;
        }
        let Some(round) = self.round.as_ref() else {
            return;
        };
        if token != DEADLINE_TOKEN_BASE + round.epoch {
            return;
        }
        // Ack deadline: members still silent are presumed crashed. A
        // majority of the previous membership is enough to commit — the
        // silent minority cannot serve, so no mixed-epoch serving is
        // possible. Short of a majority, the round aborts.
        if round.acks.len() * 2 > round.expected.len() {
            self.commit_round(ctx);
        } else {
            self.abort_round(ctx);
        }
    }

    fn name(&self) -> &str {
        "group-coordinator"
    }
}

// ---- client -------------------------------------------------------------

/// Timer token for the client's send tick.
const TICK_TOKEN: u64 = 1;

/// Sustained open-loop traffic against a group: round-robin `work` invokes
/// across the replicas until `until`, counting served and refused replies.
pub struct GroupClient {
    replicas: Vec<(ActorId, ObjectId)>,
    period: SimDuration,
    until: SimDuration,
    next: usize,
    sent: u64,
    ok: u64,
    refused: u64,
    failed: u64,
}

impl GroupClient {
    /// A client ticking every `period` until simulated time `until`.
    pub fn new(
        replicas: Vec<(ActorId, ObjectId)>,
        period: SimDuration,
        until: SimDuration,
    ) -> Self {
        GroupClient {
            replicas,
            period,
            until,
            next: 0,
            sent: 0,
            ok: 0,
            refused: 0,
            failed: 0,
        }
    }

    /// Starts the tick loop (driver-side, via `with_actor`).
    pub fn start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.schedule_timer(self.period, TICK_TOKEN);
    }

    /// Invokes sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Invokes served.
    pub fn ok(&self) -> u64 {
        self.ok
    }

    /// Invokes refused by fenced or stale replicas.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Invokes that faulted for any other reason.
    pub fn failed(&self) -> u64 {
        self.failed
    }
}

impl Actor<Msg> for GroupClient {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
        if let Msg::Reply { result, .. } = msg {
            match result {
                Ok(_) => self.ok += 1,
                Err(InvocationFault::Refused(_)) => self.refused += 1,
                Err(_) => self.failed += 1,
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if token != TICK_TOKEN || self.replicas.is_empty() {
            return;
        }
        let (actor, object) = self.replicas[self.next % self.replicas.len()];
        self.next += 1;
        self.sent += 1;
        let call = CallId::from_raw(ctx.fresh_u64());
        ctx.send(
            actor,
            Msg::Invoke {
                call,
                target: object,
                function: "work".into(),
                args: vec![],
            },
        );
        if ctx.now() + self.period <= SimTime::ZERO + self.until {
            ctx.schedule_timer(self.period, TICK_TOKEN);
        }
    }

    fn name(&self) -> &str {
        "group-client"
    }
}

// ---- deployment ---------------------------------------------------------

/// One spawned replica.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaHandle {
    /// Member id within the group.
    pub member: u32,
    /// The replica's actor.
    pub actor: ActorId,
    /// The replica's object identity.
    pub object: ObjectId,
    /// Where it lives.
    pub node: NodeId,
}

/// A spawned group: coordinator plus replicas, ready for traffic and
/// reconfiguration.
#[derive(Debug, Clone)]
pub struct GroupDeployment {
    /// The group id.
    pub group: u64,
    /// The coordinator's actor.
    pub coordinator: ActorId,
    /// The coordinator's object identity.
    pub coordinator_object: ObjectId,
    /// The coordinator's node.
    pub coordinator_node: NodeId,
    /// The replicas, in member order.
    pub replicas: Vec<ReplicaHandle>,
}

impl GroupDeployment {
    /// Replica (actor, object) pairs in member order — the shape
    /// [`GroupClient`] and the rollout driver consume.
    pub fn replica_targets(&self) -> Vec<(ActorId, ObjectId)> {
        self.replicas.iter().map(|r| (r.actor, r.object)).collect()
    }
}

/// Spawns a coordinator on `coordinator_node` and one replica per entry of
/// `replica_nodes` (member `i` on `replica_nodes[i]`), all at version
/// `version`, epoch 0. Object ids are carved from `group * 1_000`:
/// coordinator at the base, member `m` at `base + 1 + m`.
pub fn deploy_group(
    sim: &mut Simulation<Msg>,
    group: u64,
    coordinator_node: NodeId,
    replica_nodes: &[NodeId],
    version: u32,
) -> GroupDeployment {
    deploy_group_with(sim, group, coordinator_node, replica_nodes, version, |r| r)
}

/// [`deploy_group`] with a per-replica customization hook (fence timeouts,
/// planted health faults, …).
pub fn deploy_group_with(
    sim: &mut Simulation<Msg>,
    group: u64,
    coordinator_node: NodeId,
    replica_nodes: &[NodeId],
    version: u32,
    mut tweak: impl FnMut(GroupReplica) -> GroupReplica,
) -> GroupDeployment {
    let base = group * 1_000;
    let members: Vec<u32> = (0..replica_nodes.len() as u32).collect();
    let config = GroupConfig::initial(members.iter().copied(), version);
    let mut replicas = Vec::new();
    let mut directory = BTreeMap::new();
    for (&member, &node) in members.iter().zip(replica_nodes) {
        let object = ObjectId::from_raw(base + 1 + member as u64);
        let replica = tweak(GroupReplica::new(group, member, object, config.clone()));
        let actor = sim.spawn(node, replica);
        replicas.push(ReplicaHandle {
            member,
            actor,
            object,
            node,
        });
        directory.insert(member, (actor, object));
    }
    let coordinator_object = ObjectId::from_raw(base);
    let coordinator = sim.spawn(
        coordinator_node,
        GroupCoordinator::new(group, coordinator_object, config, directory),
    );
    GroupDeployment {
        group,
        coordinator,
        coordinator_object,
        coordinator_node,
        replicas,
    }
}

//! The epoch timeline: a per-group table of proposals, commits, and
//! replica adoptions reconstructed from a span log — the view
//! `dcdo-inspect epochs` renders.

use dcdo_sim::{SpanEvent, SpanKind};

/// What happened at one point of a group's epoch history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochEventKind {
    /// A round was proposed (value = joined-delta digest).
    Proposed,
    /// A round committed (value = config digest).
    Committed,
    /// A replica adopted the epoch (value = replica id).
    Adopted,
}

/// One row of the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochEvent {
    /// Nanoseconds since simulation start.
    pub at_ns: u64,
    /// The group.
    pub group: u64,
    /// The epoch concerned.
    pub epoch: u64,
    /// What happened.
    pub kind: EpochEventKind,
    /// Kind-specific value (see [`EpochEventKind`]).
    pub value: u64,
}

/// Extracts the epoch timeline from a span log, in log order (the log is
/// already deterministically ordered, so the table is replay-stable).
pub fn epoch_timeline(events: &[SpanEvent]) -> Vec<EpochEvent> {
    let mut out = Vec::new();
    for e in events {
        let (group, epoch, kind, value) = match e.kind {
            SpanKind::EpochProposed {
                group,
                epoch,
                config,
            } => (group, epoch, EpochEventKind::Proposed, config),
            SpanKind::EpochCommitted {
                group,
                epoch,
                config,
            } => (group, epoch, EpochEventKind::Committed, config),
            SpanKind::ReplicaEpoch {
                group,
                replica,
                epoch,
            } => (group, epoch, EpochEventKind::Adopted, replica),
            _ => continue,
        };
        out.push(EpochEvent {
            at_ns: e.at_ns,
            group,
            epoch,
            kind,
            value,
        });
    }
    out
}

/// Renders the timeline as a fixed-width table.
pub fn render_timeline(rows: &[EpochEvent]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:>14}  {:>6}  {:>6}  {:<10}  {}\n",
        "t (ns)", "group", "epoch", "event", "value"
    ));
    for r in rows {
        let (kind, value) = match r.kind {
            EpochEventKind::Proposed => ("proposed", format!("delta={:016x}", r.value)),
            EpochEventKind::Committed => ("committed", format!("config={:016x}", r.value)),
            EpochEventKind::Adopted => ("adopted", format!("replica={}", r.value)),
        };
        s.push_str(&format!(
            "{:>14}  {:>6}  {:>6}  {:<10}  {}\n",
            r.at_ns, r.group, r.epoch, kind, value
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcdo_sim::TraceLog;

    #[test]
    fn timeline_extracts_epoch_events_in_log_order() {
        let mut log = TraceLog::new();
        log.enable();
        log.emit(
            10,
            0,
            None,
            SpanKind::EpochProposed {
                group: 7,
                epoch: 1,
                config: 0xabc,
            },
        );
        log.emit(
            20,
            0,
            None,
            SpanKind::EpochCommitted {
                group: 7,
                epoch: 1,
                config: 0xdef,
            },
        );
        log.emit(
            30,
            1,
            None,
            SpanKind::ReplicaEpoch {
                group: 7,
                replica: 2,
                epoch: 1,
            },
        );
        log.emit(35, 1, None, SpanKind::NodeCrashed { node: 3 });
        let rows = epoch_timeline(log.events());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].kind, EpochEventKind::Proposed);
        assert_eq!(rows[1].kind, EpochEventKind::Committed);
        assert_eq!(rows[2].kind, EpochEventKind::Adopted);
        assert_eq!(rows[2].value, 2);
        let table = render_timeline(&rows);
        assert!(table.contains("committed"));
        assert!(table.contains("replica=2"));
    }
}

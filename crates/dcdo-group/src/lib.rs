//! Epoch-based group reconfiguration for fleets of DCDOs.
//!
//! The paper reconfigures one object at a time; this crate reconfigures
//! *groups* of replicas, grounding the protocol in reconfigurable lattice
//! agreement: configuration changes are joinable deltas
//! ([`ConfigDelta`]), so concurrent proposals merge instead of aborting,
//! and every replica that applies the same joined delta reaches the same
//! next [`GroupConfig`] — byte-checkably, via digests.
//!
//! The pieces:
//!
//! - [`lattice`] — the [`ConfigDelta`] join-semilattice and the
//!   [`GroupConfig`] it folds into.
//! - [`protocol`] — the propose/prepare/commit epoch round: a
//!   [`GroupCoordinator`] fencing [`GroupReplica`]s, with strict
//!   no-mixed-epoch-serving guaranteed by the fence (checked by trace
//!   invariant classes 6 and 7 in `dcdo-trace`).
//! - [`rollout`] — rolling-upgrade orchestration: canary → percentage
//!   waves, health probes, abort-and-roll-back.
//! - [`timeline`] — the epoch timeline table `dcdo-inspect epochs`
//!   renders from a span log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lattice;
pub mod protocol;
pub mod rollout;
pub mod timeline;

pub use lattice::{ConfigDelta, GroupConfig};
pub use protocol::{
    deploy_group, deploy_group_with, EpochAbort, EpochCommit, EpochPrepare, EpochPrepareAck,
    GroupClient, GroupCoordinator, GroupDeployment, GroupReplica, ProbeReplica, ProposalResult,
    ProposeConfig, ReplicaHandle, ReplicaStatus,
};
pub use rollout::{RolloutDriver, RolloutPlan, RolloutState, Wave, WaveTarget};
pub use timeline::{epoch_timeline, render_timeline, EpochEvent, EpochEventKind};

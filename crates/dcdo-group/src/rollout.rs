//! Rolling-upgrade orchestration: canary → percentage waves → done, with
//! abort-and-roll-back when a post-wave health probe trips.
//!
//! The [`RolloutDriver`] is a timer-driven actor (installed like a chaos
//! controller, on a node the fault plan never crashes) that turns a
//! declarative [`RolloutPlan`] into a sequence of epoch proposals against
//! the group coordinator. Each wave proposes upgrading a cumulative prefix
//! of the membership; after a committed wave it probes every replica, and
//! any unhealthy report triggers a *rollback epoch* — a later epoch whose
//! delta downgrades everything and re-pins the base version (you cannot
//! un-join a lattice, so rollback is a new join, not an erase).
//!
//! If the coordinator dies mid-proposal the deadline fires, the driver
//! broadcasts [`EpochAbort`] so fenced replicas revert promptly (their own
//! fence timeout is the backstop), and the rollout ends in
//! [`RolloutState::RolledBack`]: the wave never committed, the group
//! serves the last committed configuration — the only sound outcome the
//! epoch model permits without a sequencer.

use std::collections::BTreeSet;

use dcdo_sim::{Actor, ActorId, Ctx, NodeId, SimDuration, Simulation, TimerId};
use dcdo_types::CallId;
use legion_substrate::{ControlOp, Msg};

use crate::lattice::ConfigDelta;
use crate::protocol::{
    EpochAbort, GroupDeployment, ProbeReplica, ProposalResult, ProposeConfig, ReplicaStatus,
};

/// How many replicas a wave upgrades, cumulatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveTarget {
    /// Upgrade up to this many members in total.
    Count(u32),
    /// Upgrade up to this percentage of the membership (rounded up, so
    /// any nonzero percentage upgrades at least one member).
    Percent(u32),
}

impl WaveTarget {
    /// The cumulative member count this target means for a group of
    /// `members` replicas.
    pub fn cumulative(self, members: u32) -> u32 {
        match self {
            WaveTarget::Count(n) => n.min(members),
            WaveTarget::Percent(p) => (members * p.min(100)).div_ceil(100),
        }
    }
}

/// One wave of a rolling upgrade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wave {
    /// When the wave's proposal is issued (offset from driver install).
    pub at: SimDuration,
    /// How far the upgrade has reached after this wave.
    pub target: WaveTarget,
}

/// A declarative rolling-upgrade schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutPlan {
    /// Version the group starts at (rollback re-pins this).
    pub from_version: u32,
    /// Version the waves converge to.
    pub to_version: u32,
    /// The waves, in schedule order.
    pub waves: Vec<Wave>,
    /// How long after a committed wave the health probes fire.
    pub probe_delay: SimDuration,
    /// How long the driver waits for a proposal to resolve before treating
    /// the coordinator as dead.
    pub proposal_deadline: SimDuration,
}

impl RolloutPlan {
    /// A canary → 25% → 100% default shape: canary at `start`, each later
    /// wave `spacing` after the previous.
    pub fn canary_then_waves(
        from_version: u32,
        to_version: u32,
        start: SimDuration,
        spacing: SimDuration,
    ) -> Self {
        RolloutPlan {
            from_version,
            to_version,
            waves: vec![
                Wave {
                    at: start,
                    target: WaveTarget::Count(1),
                },
                Wave {
                    at: start + spacing,
                    target: WaveTarget::Percent(25),
                },
                Wave {
                    at: start + spacing * 2,
                    target: WaveTarget::Percent(100),
                },
            ],
            probe_delay: SimDuration::from_millis(50),
            proposal_deadline: SimDuration::from_millis(250),
        }
    }

    /// The offset by which the schedule is fully resolved: the last wave's
    /// proposal, its deadline, and its probe. `None` for an empty plan.
    /// Scenario validation requires the run window to reach past this.
    pub fn last_at(&self) -> Option<SimDuration> {
        self.waves
            .iter()
            .map(|w| w.at + self.proposal_deadline + self.probe_delay)
            .max()
    }
}

/// Where a rollout ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutState {
    /// No wave has fired yet.
    Idle,
    /// Waves are in flight.
    Upgrading,
    /// Every wave committed and the final probes passed.
    Completed,
    /// A probe tripped (rollback epoch committed) or a mid-wave proposal
    /// died with its coordinator (wave aborted): the group serves a fully
    /// consistent pre-wave configuration.
    RolledBack,
    /// The rollback epoch itself could not commit — the group is stuck at
    /// its last committed epoch and needs operator attention.
    Failed,
}

impl RolloutState {
    /// A stable numeric code for reports and gauges.
    pub fn code(self) -> u64 {
        match self {
            RolloutState::Idle => 0,
            RolloutState::Upgrading => 1,
            RolloutState::Completed => 2,
            RolloutState::RolledBack => 3,
            RolloutState::Failed => 4,
        }
    }
}

/// Timer-token bases: wave `i` fires at `WAVE_BASE + i`, its proposal
/// deadline at `DEADLINE_BASE + i`, its probe at `PROBE_BASE + i`. The
/// rollback proposal uses wave index `ROLLBACK_WAVE`.
const WAVE_BASE: u64 = 1_000;
const DEADLINE_BASE: u64 = 2_000;
const PROBE_BASE: u64 = 3_000;
const ROLLBACK_WAVE: usize = 900;

/// An in-flight proposal (wave or rollback).
struct InFlight {
    call: CallId,
    wave: usize,
    deadline: TimerId,
}

/// The wave orchestrator.
pub struct RolloutDriver {
    deployment: GroupDeployment,
    plan: RolloutPlan,
    state: RolloutState,
    in_flight: Option<InFlight>,
    /// Probe replies still expected for the current probe round, and
    /// whether any reply so far was unhealthy.
    probes_pending: BTreeSet<u32>,
    probe_unhealthy: bool,
    probe_wave: usize,
    waves_committed: u32,
    observed_epoch: u64,
    observed_digest: u64,
}

impl RolloutDriver {
    /// Installs a driver on `node`: spawns the actor and schedules every
    /// wave timer up front, so the schedule survives even if individual
    /// waves fail.
    pub fn install(
        sim: &mut Simulation<Msg>,
        node: NodeId,
        deployment: GroupDeployment,
        plan: RolloutPlan,
    ) -> ActorId {
        let waves: Vec<SimDuration> = plan.waves.iter().map(|w| w.at).collect();
        let driver = RolloutDriver {
            deployment,
            plan,
            state: RolloutState::Idle,
            in_flight: None,
            probes_pending: BTreeSet::new(),
            probe_unhealthy: false,
            probe_wave: 0,
            waves_committed: 0,
            observed_epoch: 0,
            observed_digest: 0,
        };
        let actor = sim.spawn(node, driver);
        for (i, at) in waves.into_iter().enumerate() {
            sim.schedule_timer_for(actor, at, WAVE_BASE + i as u64);
        }
        actor
    }

    /// Where the rollout ended up.
    pub fn state(&self) -> RolloutState {
        self.state
    }

    /// Waves whose proposals committed.
    pub fn waves_committed(&self) -> u32 {
        self.waves_committed
    }

    /// The highest epoch the driver saw commit (via proposal results).
    pub fn observed_epoch(&self) -> u64 {
        self.observed_epoch
    }

    /// Digest of the configuration behind [`RolloutDriver::observed_epoch`].
    pub fn observed_digest(&self) -> u64 {
        self.observed_digest
    }

    fn members(&self) -> Vec<u32> {
        self.deployment.replicas.iter().map(|r| r.member).collect()
    }

    fn propose(&mut self, ctx: &mut Ctx<'_, Msg>, wave: usize, delta: ConfigDelta) {
        let call = CallId::from_raw(ctx.fresh_u64());
        ctx.send(
            self.deployment.coordinator,
            Msg::Control {
                call,
                target: self.deployment.coordinator_object,
                op: ControlOp::new(ProposeConfig {
                    group: self.deployment.group,
                    delta,
                }),
            },
        );
        let deadline = ctx.schedule_timer(self.plan.proposal_deadline, DEADLINE_BASE + wave as u64);
        self.in_flight = Some(InFlight {
            call,
            wave,
            deadline,
        });
    }

    fn start_wave(&mut self, ctx: &mut Ctx<'_, Msg>, wave: usize) {
        if self.in_flight.is_some()
            || !matches!(self.state, RolloutState::Idle | RolloutState::Upgrading)
        {
            // A previous wave already ended the rollout (or is still in
            // flight past its own schedule slot); skip.
            return;
        }
        self.state = RolloutState::Upgrading;
        let members = self.members();
        let cumulative = self.plan.waves[wave]
            .target
            .cumulative(members.len() as u32) as usize;
        let upgrade: Vec<u32> = members.into_iter().take(cumulative).collect();
        let delta = ConfigDelta::new()
            .with_version(self.plan.to_version)
            .upgrading(upgrade);
        self.propose(ctx, wave, delta);
    }

    fn start_rollback(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let delta = ConfigDelta::new()
            .with_version(self.plan.from_version)
            .downgrading(self.members());
        self.propose(ctx, ROLLBACK_WAVE, delta);
    }

    fn probe_all(&mut self, ctx: &mut Ctx<'_, Msg>, wave: usize) {
        self.probes_pending = self.members().into_iter().collect();
        self.probe_unhealthy = false;
        self.probe_wave = wave;
        for r in self.deployment.replicas.clone() {
            let call = CallId::from_raw(ctx.fresh_u64());
            ctx.send(
                r.actor,
                Msg::Control {
                    call,
                    target: r.object,
                    op: ControlOp::new(ProbeReplica),
                },
            );
        }
    }

    fn on_proposal_result(&mut self, ctx: &mut Ctx<'_, Msg>, result: &ProposalResult) {
        let Some(inflight) = self.in_flight.take() else {
            return;
        };
        ctx.cancel_timer(inflight.deadline);
        self.observed_epoch = self.observed_epoch.max(result.epoch);
        if result.committed {
            self.observed_digest = result.config_digest;
        }
        if inflight.wave == ROLLBACK_WAVE {
            self.state = if result.committed {
                RolloutState::RolledBack
            } else {
                RolloutState::Failed
            };
            return;
        }
        if result.committed {
            self.waves_committed += 1;
            ctx.schedule_timer(self.plan.probe_delay, PROBE_BASE + inflight.wave as u64);
        } else {
            // The coordinator aborted the wave (quorum lost). The group
            // still serves the pre-wave config; nothing to undo.
            self.state = RolloutState::RolledBack;
        }
    }

    fn on_probe_reply(&mut self, ctx: &mut Ctx<'_, Msg>, status: &ReplicaStatus) {
        if !self.probes_pending.remove(&status.member) {
            return;
        }
        self.probe_unhealthy |= !status.healthy;
        if !self.probes_pending.is_empty() {
            return;
        }
        // Probe round complete.
        if self.probe_unhealthy {
            self.start_rollback(ctx);
        } else if self.probe_wave + 1 == self.plan.waves.len() {
            self.state = RolloutState::Completed;
        }
        // Otherwise stay Upgrading; the next wave timer is already set.
    }
}

impl Actor<Msg> for RolloutDriver {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
        // Anything other than a control reply just confirms the
        // coordinator is alive; the deadline still guards the round.
        let Msg::ControlReply { call, result } = msg else {
            return;
        };
        match result {
            Ok(op) => {
                if let Some(r) = op.downcast_ref::<ProposalResult>() {
                    if self.in_flight.as_ref().is_some_and(|f| f.call == call) {
                        self.on_proposal_result(ctx, &r.clone());
                    }
                } else if let Some(s) = op.downcast_ref::<ReplicaStatus>() {
                    self.on_probe_reply(ctx, &s.clone());
                }
            }
            Err(_) => {
                // A refused proposal resolves the wave as not committed.
                if self.in_flight.as_ref().is_some_and(|f| f.call == call) {
                    let epoch = self.observed_epoch;
                    let digest = self.observed_digest;
                    self.on_proposal_result(
                        ctx,
                        &ProposalResult {
                            committed: false,
                            epoch,
                            config_digest: digest,
                        },
                    );
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        if (WAVE_BASE..WAVE_BASE + self.plan.waves.len() as u64).contains(&token) {
            self.start_wave(ctx, (token - WAVE_BASE) as usize);
            return;
        }
        if (PROBE_BASE..PROBE_BASE + self.plan.waves.len() as u64).contains(&token) {
            self.probe_all(ctx, (token - PROBE_BASE) as usize);
            return;
        }
        if !(DEADLINE_BASE..DEADLINE_BASE + 1_000).contains(&token) {
            return;
        }
        // Proposal deadline: the coordinator never resolved the round —
        // it is dead (or unreachable, which for the rollout is the same).
        let wave = (token - DEADLINE_BASE) as usize;
        let Some(inflight) = self.in_flight.take() else {
            return;
        };
        if inflight.wave != wave {
            self.in_flight = Some(inflight);
            return;
        }
        // Unfence promptly: the commit-or-nothing atomicity on the
        // coordinator means an unresolved round never half-committed, so
        // telling replicas to abandon the epoch is always safe. Their own
        // fence timeout would get there anyway; this shortens the outage.
        let epoch = self.observed_epoch + 1;
        for r in self.deployment.replicas.clone() {
            let call = CallId::from_raw(ctx.fresh_u64());
            ctx.send(
                r.actor,
                Msg::Control {
                    call,
                    target: r.object,
                    op: ControlOp::new(EpochAbort {
                        group: self.deployment.group,
                        epoch,
                    }),
                },
            );
        }
        self.state = if wave == ROLLBACK_WAVE {
            RolloutState::Failed
        } else {
            RolloutState::RolledBack
        };
    }

    fn name(&self) -> &str {
        "rollout-driver"
    }
}
